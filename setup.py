"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 517
editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) uses this shim instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
