#!/usr/bin/env python
"""Tour of the Section-II data augmentation pipeline.

Shows each stage's inputs and outputs on a handful of designs — what the
paper's Fig. 2 (I) looks like when you can print every intermediate:

- Stage 1: filtering, syntax checking, failure analyses (Verilog-PT);
- Stage 2: SVA synthesis + hallucination filtering, bug injection +
  compile filtering, BMC-validated SVA-Bug / Verilog-Bug split;
- split: the 90/10 module-name split within length bins;
- Stage 3: CoT generation and validation against golden solutions.

Run:  python examples/data_augmentation_tour.py
"""

import random

from repro.corpus.generator import CorpusGenerator
from repro.datagen.split import split_by_module_name
from repro.datagen.stage1 import run_stage1
from repro.datagen.stage2 import run_stage2
from repro.datagen.stage3 import run_stage3


def main():
    generator = CorpusGenerator(seed=21)
    seeds = generator.generate(20)
    print(f"corpus: {len(seeds)} golden designs "
          f"({min(s.line_count for s in seeds)}-"
          f"{max(s.line_count for s in seeds)} lines)\n")

    # ---- Stage 1 ---------------------------------------------------------
    stage1 = run_stage1(seeds, random.Random(1), break_rate=0.4)
    print(f"Stage 1: filtered {stage1.filtered_count} junk samples, "
          f"{stage1.failed_compile_count} failed compilation, "
          f"{len(stage1.compiled)} compiled, "
          f"{len(stage1.pt_entries)} Verilog-PT entries")
    failing = next(e for e in stage1.pt_entries if not e.compiles)
    print("\n--- one Verilog-PT failure analysis ---")
    print(failing.analysis)

    # ---- Stage 2 ---------------------------------------------------------
    stage2 = run_stage2(stage1.compiled, seed=2, bugs_per_design=3,
                        hallucination_rate=0.3)
    print(f"\nStage 2: {stage2.accepted_svas} SVAs validated, "
          f"{stage2.rejected_svas} hallucinations rejected; "
          f"{len(stage2.sva_bug_entries)} bugs fired assertions "
          f"(SVA-Bug), {len(stage2.verilog_bug_entries)} stayed silent "
          f"(Verilog-Bug)")
    entry = stage2.sva_bug_entries[0]
    print("\n--- one SVA-Bug case ---")
    print(f"design: {entry.record.design_name}  "
          f"[{entry.relation.value}/{entry.record.kind.value}/"
          f"{entry.record.conditionality.value}]")
    print(f"logs:   {entry.logs.splitlines()[0]}")
    print(f"buggy line {entry.record.line}: {entry.record.buggy_line}")
    print(f"golden fix:             {entry.record.fixed_line}")

    # ---- split ------------------------------------------------------------
    train, test = split_by_module_name(stage2.sva_bug_entries,
                                       random.Random(3))
    print(f"\nsplit: {len(train)} train / {len(test)} eval "
          f"(module-name disjoint, paper's 90/10 recipe)")

    # ---- Stage 3 ----------------------------------------------------------
    stage3 = run_stage3(train, seed=4)
    print(f"\nStage 3: {stage3.validated}/{stage3.generated} CoTs validated "
          f"({stage3.validity_rate:.1%}; paper: 74.55%)")
    with_cot = next(e for e in stage3.entries if e.cot)
    print("\n--- one validated chain-of-thought ---")
    print(with_cot.cot)
    print("\n--- the corresponding question (excerpt) ---")
    question = with_cot.question_text()
    print("\n".join(question.splitlines()[:3]))
    print("...")
    print(question.splitlines()[-1])


if __name__ == "__main__":
    main()
