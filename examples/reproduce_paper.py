#!/usr/bin/env python
"""Full paper reproduction: every table and figure, one command.

Runs the complete pipeline (corpus -> augmentation -> PT/SFT/DPO training
-> SVA-Eval benchmark -> all baselines) and prints Tables I-IV plus Figs
3-5 with the paper's published numbers alongside ours.

Scale with --designs (default 80; larger is slower but statistically
smoother).

Run:  python examples/reproduce_paper.py [--designs N]
"""

import argparse
import time

from repro.core.api import AssertSolverPipeline, PipelineConfig


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=80,
                        help="corpus size (paper: 108,971 raw samples)")
    parser.add_argument("--seed", type=int, default=2025)
    args = parser.parse_args()

    started = time.time()
    pipeline = AssertSolverPipeline(PipelineConfig(
        n_designs=args.designs, seed=args.seed))
    report = pipeline.report()
    print(report)
    print(f"\ntotal wall time: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
