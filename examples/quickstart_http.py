#!/usr/bin/env python
"""Quickstart: the assertion service as a live HTTP endpoint.

``examples/quickstart_serve.py`` drives the in-process serving API;
this walkthrough puts the network edge in front of it — start a real
localhost server, round-trip a design through ``POST /v1/solve`` with
the stdlib client, cancel a request mid-flight, and read the operator
endpoints (``/healthz``, ``/statsz``) — then shut down gracefully.

Everything is standard library: the same requests work from ``curl``::

    curl -s localhost:<port>/v1/solve -d '{"design_source": "..."}'
    curl -s localhost:<port>/statsz

Run:  PYTHONPATH=src python examples/quickstart_http.py
"""

from repro import PipelineConfig
from repro.serve import (
    AssertClient,
    SolveOptions,
    SolveRequest,
    WorkloadSpec,
    build_workload,
)

RAW_DESIGN = """
module byte_gate (
  input clk,
  input rst_n,
  input [7:0] data,
  input en,
  output wire [7:0] gated,
  output wire any_bit
);
  assign gated = en ? data : 8'd0;
  assign any_bit = |gated;
endmodule
"""


def main() -> None:
    # 1. One line from a batch reproduction setup to a network service:
    #    port=0 binds an ephemeral port, read it off the server.
    server = PipelineConfig(n_workers=4).serve_http(port=0, max_batch=16)
    with server:
        client = AssertClient.for_server(server)
        print(f"serving on {server.url}")
        print(f"healthz: {client.healthz()}")

        # 2. A full round trip: the response body on the wire is
        #    byte-identical to the in-process SolveResponse.to_json().
        response = client.solve(SolveRequest(RAW_DESIGN, SolveOptions()))
        print("\nscored proposals over HTTP:")
        for proposal in response.proposals:
            print(f"  {proposal.score:5.2f}  {proposal.name}  "
                  f"[{proposal.origin}]")

        # 3. Real traffic: a deterministic request stream with repeats,
        #    submitted concurrently through background handles — plus
        #    one more request queued behind them that we abandon.
        requests = build_workload(WorkloadSpec(n_requests=12,
                                               unique_designs=3, seed=7))
        handles = [client.submit(request) for request in requests]

        # 4. Client-initiated cancellation: while the service chews on
        #    the burst, DELETE /v1/solve/{id} drops the straggler from
        #    the queue; its pending POST resolves to 409/cancelled.
        doomed = client.submit(SolveRequest(
            RAW_DESIGN.replace("byte_gate", "byte_gate_v2"),
            SolveOptions()))
        while client.statsz()["service"]["submitted"] < 14:
            pass  # wait for the straggler's POST to land server-side
        cancelled = doomed.cancel()

        statuses = [handle.result(timeout=120).status for handle in handles]
        print(f"\n{len(statuses)} concurrent requests: "
              f"{statuses.count('ok')} ok")
        print(f"cancel() matched {cancelled} pending request(s); "
              f"status={doomed.result(timeout=10).status!r}")

        # 5. Malformed input maps to structured HTTP errors, not crashes:
        #    bad Verilog -> 422 with compiler diagnostics in the body.
        broken = client.solve("module oops (")
        print(f"malformed design -> status={broken.status!r}")

        # 6. The operator's view: saturation gauges (queue depth,
        #    inflight) next to the batching/cache/cancellation counters.
        stats = client.statsz()["service"]
        print(f"\n/statsz: {stats['submitted']} submitted, "
              f"{stats['solved']} solved, {stats['deduped']} deduped, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['cancelled']} cancelled, "
              f"inflight {stats['inflight']}, "
              f"queue {stats['queue_depth']}/{stats['queue_capacity']}")
    # 7. close() drained gracefully: accepted requests were answered
    #    before the socket was released.
    print("\nserver drained and closed ✓")


if __name__ == "__main__":
    main()
