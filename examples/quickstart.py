#!/usr/bin/env python
"""Quickstart: solve the paper's Fig. 1 assertion failure.

The scenario is exactly the paper's running example: an accumulator whose
valid_out logic has an inverted condition, protected by the SVA

    end_cnt |-> ##1 valid_out == 1

We (1) detect the failure with the bounded model checker, (2) train a small
AssertSolver from scratch, and (3) ask it for the buggy line and fix.

Run:  python examples/quickstart.py
"""

from repro.core.api import AssertSolverPipeline, PipelineConfig
from repro.model.assertsolver import Problem
from repro.oracles.spec import write_spec
from repro.sva.bmc import BmcConfig, bounded_check
from repro.verilog.compile import compile_source
from repro.verilog.writer import write_module

BUGGY_ACCU = """
module accu (
  input clk,
  input rst_n,
  input [7:0] data_in,
  input valid_in,
  output reg valid_out,
  output reg [9:0] data_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = valid_in && (cnt == 2'd3);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= end_cnt ? 2'd0 : cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 1'b0;
    else if (!end_cnt) valid_out <= 1'b1;   // the paper's Fig. 1 bug
    else valid_out <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) data_out <= 10'd0;
    else if (valid_in) data_out <= end_cnt ? {2'b00, data_in} : data_out + data_in;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out not high");
endmodule
"""


def main():
    # --- 0. pick corpus scenario families -------------------------------
    # The corpus samples from 30+ registered template families; selecting
    # a subset (and biasing the mix with weights) focuses the generated
    # training data on specific design scenarios.  Unknown names raise —
    # the same validation guards DatagenConfig/PipelineConfig, e.g.
    # PipelineConfig(template_families=("sync_fifo", ...)).
    from repro.corpus import CorpusGenerator

    scenario_gen = CorpusGenerator(
        seed=7,
        families=["moore_handshake", "sync_fifo", "round_robin_arbiter"],
        weights={"sync_fifo": 2.0})
    print("=== corpus scenario sampling (control-heavy families) ===")
    for design in scenario_gen.generate(4):
        print(f"  {design.name:<28} [{design.meta.family}] "
              f"{design.line_count} lines")
    print()

    # --- 1. compile and reproduce the assertion failure -----------------
    result = compile_source(BUGGY_ACCU)
    assert result.ok, result.failure_summary()
    canonical = write_module(result.module)

    # sim_mode picks the execution tier: "compiled" (default) lowers the
    # design once into a closure program — several times faster on the
    # solve hot path — while "interp" walks the AST per cycle.  Both are
    # byte-identical (traces, verdicts, fingerprints, responses), so the
    # knob exists on BmcConfig/PipelineConfig/ServeConfig purely for
    # execution control and A/B timing (benchmarks/bench_solve.py).
    check = bounded_check(result.design, BmcConfig(depth=10, random_trials=32))
    assert check.failed, "the bug should trigger the assertion"
    logs = check.log_text()
    print("=== simulation / formal logs ===")
    print(logs)
    print()
    print("=== counterexample waveform (excerpt) ===")
    print(check.trace.to_table(["valid_in", "cnt", "end_cnt", "valid_out"],
                               first=2, last=8))
    print()

    # --- 2. train AssertSolver from scratch (small scale) ---------------
    # n_workers fans the datagen stage graph and the evaluation out over
    # a process pool (backend="auto" clamps to the CPUs available); the
    # produced datasets are byte-identical to a serial run.
    print("training AssertSolver (PT -> SFT -> DPO) at small scale ...")
    pipeline = AssertSolverPipeline(PipelineConfig(
        n_designs=70, bugs_per_design=4, seed=11, include_human=False,
        include_baselines=False, n_workers=4))
    solver = pipeline.train()
    print(f"  SFT train accuracy: "
          f"{solver.sft_stats.final_train_accuracy:.1%}; "
          f"challenging cases mined for DPO: {solver.n_challenging}")
    print()

    # --- 3. solve: sample n responses, re-verify each suggestion ----------
    # (the paper samples n = 20 and scores by text; we additionally patch
    # the design and re-run the bounded checker, so a wrong-but-plausible
    # sample is rejected mechanically)
    spec = write_spec(canonical, None, "accu")
    problem = Problem(spec, canonical, logs)
    responses = solver.generate(problem, n=40, temperature=1.5)
    print("=== greedy response (JSON) ===")
    print(solver.solve(problem).to_json())
    print()

    import types

    from repro.eval.runner import semantic_check

    shim = types.SimpleNamespace(
        entry=types.SimpleNamespace(buggy_source_with_sva=canonical))
    verified = None
    seen = set()
    for response in responses:
        key = (response.line, response.fix)
        if key in seen:
            continue
        seen.add(key)
        ok = semantic_check(response, shim,
                            BmcConfig(depth=10, random_trials=32))
        print(f"  line {response.line}: {response.fix}  "
              f"[{'VERIFIED' if ok else 'rejected'} by re-check]")
        if ok and verified is None:
            verified = response
    print()
    assert verified is not None, "no sampled repair re-verified"
    print(f"accepted repair -> line {verified.line}: {verified.fix}")
    expected = "valid_out <= 1'b1"
    verdict = ("matches the paper's human deduction"
               if "end_cnt" in verified.buggy_line or expected in verified.fix
               else "(alternative repair)")
    print(f"paper's human deduction: 'else if (!end_cnt)' -> "
          f"'else if (end_cnt)'  => {verdict}")


if __name__ == "__main__":
    main()
