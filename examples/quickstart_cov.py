#!/usr/bin/env python
"""Quickstart: coverage & assertion-quality telemetry via ``/covz``.

``examples/quickstart_obs.py`` shows *where requests spend time*; this
walkthrough shows *what the stimulus actually exercised* and whether
the passing assertions mean anything.  With ``coverage=True`` both
simulator tiers emit identical telemetry from the solves the service
already runs — per-bit toggle coverage, per-block execution counts,
and per-assertion quality counters that split passes into real vs
vacuous (antecedent never held) — with zero extra simulation.  The
same endpoints work with ``curl``::

    curl -s localhost:<port>/covz?limit=4   # retained per-design reports
    curl -s localhost:<port>/metricsz       # incl. repro_coverage_* totals

Coverage is a pure execution knob: it never enters content keys, and
with ``coverage=False`` (the default) response bytes are identical to
a build without the subsystem.

Run:  PYTHONPATH=src python examples/quickstart_cov.py
"""

from repro import PipelineConfig
from repro.obs import metrics as obs_metrics
from repro.serve import AssertClient, WorkloadSpec, build_workload


def main() -> None:
    # 1. A two-backend fleet with coverage collection on.  Each backend
    #    retains what *it* solved; the router's /covz merges the fleet.
    router = PipelineConfig().serve_fleet(n_backends=2, max_batch=8,
                                          coverage=True)
    with router:
        client = AssertClient.for_server(router)
        print(f"fleet routing on {router.url} (coverage on)")

        # 2. A burst of traffic to have something worth measuring.
        requests = build_workload(WorkloadSpec(n_requests=12,
                                               unique_designs=6, seed=13))
        handles = [client.submit(request) for request in requests]
        responses = [handle.result(timeout=300) for handle in handles]
        solved = [r for r in responses if r.status == "ok"]
        print(f"{len(responses)} requests served ({len(solved)} ok)\n")

        # 3. Every solved response carries the merged report from its
        #    own validating checks, plus vacuity-penalized scores: the
        #    structural score scaled by real/(real+vacuous) passes, so
        #    an assertion that only ever passed because its antecedent
        #    never fired ranks below one that was genuinely exercised.
        response = next(r for r in solved if r.coverage)
        report = response.coverage["report"]
        print(f"one solve ({report['design']}): "
              f"{100 * report['toggle_pct']:.1f}% toggle, "
              f"{100 * report['block_pct']:.1f}% block coverage over "
              f"{report['cycles']} cycles / {report['runs']} runs")
        print(f"{'assertion':<32}{'activ':>6}{'real':>6}"
              f"{'vacuous':>8}{'fails':>6}")
        for label, q in sorted(report["assertions"].items()):
            print(f"{label:<32}{q['activations']:>6}{q['real_passes']:>6}"
                  f"{q['vacuous']:>8}{q['fails']:>6}")
        penalized = response.coverage["scores"]
        structural = {p.name: p.score for p in response.proposals}
        for name in sorted(penalized):
            print(f"  {name}: structural {structural[name]:.3f} "
                  f"-> penalized {penalized[name]:.3f}")

        # 4. /covz: the fleet's retained per-design reports, merged by
        #    the router with every report counted exactly once.
        covz = client.covz(limit=4)
        print(f"\nfleet /covz: {covz['recorded']} reports recorded, "
              f"{covz['retained']} designs retained "
              f"(showing {len(covz['designs'])}):")
        for entry in covz["designs"]:
            print(f"  {entry['design']:<24} "
                  f"toggle {100 * entry['toggle_pct']:5.1f}%  "
                  f"block {100 * entry['block_pct']:5.1f}%  "
                  f"runs {entry['runs']}")

        # 5. /metricsz: the coverage provider rides the engine's
        #    counter-delta protocol, so fleet totals land next to the
        #    serving metrics in the same Prometheus exposition.
        parsed = obs_metrics.parse_prometheus_text(client.metricsz())
        print(f"\nfleet /metricsz: "
              f"{parsed.value('repro_coverage_toggles_total'):.0f} toggles, "
              f"{parsed.value('repro_coverage_cycles_total'):.0f} cycles, "
              f"{parsed.value('repro_coverage_vacuous_total'):.0f} "
              f"vacuous passes")
    print("\nfleet drained and closed ✓")


if __name__ == "__main__":
    main()
