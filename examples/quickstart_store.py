#!/usr/bin/env python
"""Quickstart: the persistent artifact store and incremental re-runs.

Every cache in the system is in-memory by default — fast within one
process, gone when it exits.  Pointing a :class:`repro.StoreConfig` at a
directory adds the durable tier underneath: compile artifacts, serving
responses, and whole stage-unit results become content-addressed disk
blobs that survive across runs.  This walkthrough runs the same datagen
config twice against one store: the second run skips every stage unit
and reproduces the first run's bundle byte for byte.

Run:  PYTHONPATH=src python examples/quickstart_store.py
"""

import tempfile
import time

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.store import StoreConfig
from repro.verilog.compile import default_compile_cache


def main() -> None:
    # 1. Any directory works; a real deployment would point every
    #    pipeline run, CI job, and service instance at one shared path.
    store_dir = tempfile.mkdtemp(prefix="repro_store_")
    config = dict(n_designs=16, bugs_per_design=3, seed=42,
                  store=StoreConfig(path=store_dir))

    # 2. Cold run: the store is empty, so every corpus/stage1/2/3 unit
    #    computes — and is written through as it completes.
    started = time.perf_counter()
    cold = run_pipeline(DatagenConfig(**config))
    cold_seconds = time.perf_counter() - started
    cold_store = cold.stats["store"]
    print(f"cold run: {cold_seconds:6.2f}s  "
          f"({cold_store['stage_memo_misses']} units computed, "
          f"{cold_store['counters']['writes']} artifacts stored)")

    # 3. Warm run, same semantic config.  Clearing the in-memory compile
    #    cache simulates a brand-new process: the speedup below is the
    #    *store's*, not a process-local leftover.
    default_compile_cache().clear()
    started = time.perf_counter()
    warm = run_pipeline(DatagenConfig(**config))
    warm_seconds = time.perf_counter() - started
    warm_store = warm.stats["store"]
    print(f"warm run: {warm_seconds:6.2f}s  "
          f"({warm_store['stage_memo_hits']} units served from the store, "
          f"{warm_store['stage_memo_misses']} recomputed)")
    print(f"speedup:  {cold_seconds / warm_seconds:6.1f}x")

    # 4. The whole point: incremental execution never changes results.
    assert warm.fingerprint() == cold.fingerprint(), \
        "warm re-run must be byte-identical to the cold run"
    print(f"\nfingerprints identical ✓  ({cold.fingerprint()[:32]}…)")

    # 5. The operator's view of the store itself.
    counters = warm_store["counters"]
    print(f"store counters (warm run): {counters['hits']} hits, "
          f"{counters['misses']} misses, {counters['evictions']} evictions")
    back = counters.get("back")
    if back is not None:
        print(f"disk tier: {back['total_bytes']} bytes at {store_dir}")

    # 6. A *semantically* different config (new seed) shares nothing —
    #    memo keys include the config digest, so stale reuse is
    #    impossible by construction.
    changed = run_pipeline(DatagenConfig(**{**config, "seed": 43}))
    print(f"\nchanged seed: {changed.stats['store']['stage_memo_hits']} "
          f"store hits (expected 0) — different config, different keys")


if __name__ == "__main__":
    main()
