#!/usr/bin/env python
"""Quickstart: pass@k evaluation as a memoized, serveable workload.

Evaluation used to be a batch-only affair: ``evaluate_model(model,
cases, n=..., seed=...)`` scored everything from scratch, every time.
This walkthrough shows the redesigned surface —

- :class:`repro.eval.EvalConfig` holds the validated knobs;
- :func:`repro.eval.run_eval` returns an :class:`EvalReport` whose
  ``to_json()`` is canonical (byte-stable across runs and transports);
- per-case outcomes memoize into an artifact store, so re-runs only
  score what changed — new cases, new model, new scoring knobs;
- the same workload runs over the wire: ``POST /v1/eval`` against a
  live server answers with the *same bytes* as the in-process call.

Run:  PYTHONPATH=src python examples/quickstart_eval.py
"""

import tempfile

from repro.baselines.engine import make_baseline
from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.eval import EvalConfig, run_eval
from repro.eval.benchmark import build_benchmark
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    EvalRequest,
    HttpConfig,
    ServeConfig,
)
from repro.store import StoreConfig


def main() -> None:
    # 1. A benchmark (machine + human splits) and a model to grade.
    bundle = run_pipeline(DatagenConfig(n_designs=24, bugs_per_design=3,
                                        seed=42))
    cases = build_benchmark(bundle, include_human=True).cases
    model = make_baseline("GPT-4", seed=0)
    print(f"benchmark: {len(cases)} cases")

    # 2. The knob block.  n_samples/seed change per-case results;
    #    k_values only changes how outcomes aggregate into the report.
    config = EvalConfig(n_samples=40, seed=43, k_values=(1, 5))

    # 3. Cold run against a fresh store: every case is scored and its
    #    (n, c) outcome written through under the eval/v1 namespace.
    store_dir = tempfile.mkdtemp(prefix="repro_eval_")
    store = StoreConfig(path=store_dir).make_store()
    cold = run_eval(model, cases, config=config, store=store)
    print(f"cold: pass@1={cold.pass_at(1):.3f}  stats={cold.stats}")

    # 4. Warm run: zero recomputes, byte-identical report.
    warm = run_eval(model, cases, config=config, store=store)
    assert warm.stats["computed"] == 0
    assert warm.to_json() == cold.to_json()
    print(f"warm: {warm.stats['memo_hits']} outcomes from the store, "
          f"report byte-identical ✓")

    # 5. Changing only the k-vector is pure aggregation — still zero
    #    recomputes, because stored outcomes are k-independent.
    rescored = run_eval(model, cases,
                        config=EvalConfig(n_samples=40, seed=43,
                                          k_values=(1, 2, 5, 10)),
                        store=store)
    assert rescored.stats["computed"] == 0
    print(f"k-vector change: pass@10={rescored.pass_at(10):.3f}, "
          f"0 cases rescored")

    # 6. The same workload over the wire.  The server's service points
    #    at the same store, so the eval is served from the memo — and
    #    the wire body is the in-process serialization, byte for byte.
    service = AssertService(ServeConfig(store=StoreConfig(path=store_dir)))
    service.register_model("GPT-4", model)
    server = AssertHttpServer(service, HttpConfig(port=0))
    server.start()
    try:
        client = AssertClient.for_server(server)
        wired = client.eval(EvalRequest("GPT-4", cases, config=config))
        assert wired.to_json() == cold.to_json()
        stats = service.stats().to_dict()
        print(f"POST /v1/eval: {stats['eval_memo_hits']} memo hits, "
              f"wire bytes == in-process bytes ✓")
    finally:
        server.close()


if __name__ == "__main__":
    main()
