#!/usr/bin/env python
"""Quickstart: serving assertion generation as an online service.

The batch pipeline (see ``examples/quickstart.py``) regenerates whole
datasets; this walkthrough drives the *serving* layer instead — submit
concurrent designs, read scored SVA proposals back, and inspect the
``ServiceStats`` counters that show micro-batching and result caching
at work.

Run:  PYTHONPATH=src python examples/quickstart_serve.py
"""

from repro.serve import (
    AssertService,
    ServeConfig,
    SolveOptions,
    SolveRequest,
    WorkloadSpec,
    build_workload,
)

# A raw design with no metadata: the service mines candidate invariants
# from its structure and validates them with the bounded checker.
HINTLESS_DESIGN = """
module byte_gate (
  input clk,
  input rst_n,
  input [7:0] data,
  input en,
  output wire [7:0] gated,
  output wire any_bit
);
  assign gated = en ? data : 8'd0;
  assign any_bit = |gated;
endmodule
"""


def main() -> None:
    # 1. A deterministic stream of 16 requests over 4 unique corpus
    #    designs — repeats included, the shape real traffic has.  Each
    #    request carries the design's template hints for the oracle.
    requests = build_workload(WorkloadSpec(n_requests=16, unique_designs=4,
                                           seed=7))

    config = ServeConfig(
        n_workers=4,          # engine worker pool ("auto" clamps to CPUs)
        max_queue=64,         # beyond this, submit() raises ServiceOverloaded
        max_batch=16,         # flush when a window gathers this many
        batch_window_ms=10,   # ...or when the oldest waits this long
        result_cache=True)    # content-hash LRU over finished responses

    with AssertService(config) as service:
        # 2. Submit everything up front: in-flight requests coalesce
        #    into batches, duplicates are solved once per batch, and
        #    repeats of finished work come straight from the cache.
        futures = [service.submit(request) for request in requests]
        responses = [future.result(timeout=120) for future in futures]

        print("first response's scored proposals:")
        for proposal in responses[0].proposals:
            print(f"  {proposal.score:5.2f}  {proposal.name}  "
                  f"[{proposal.origin}]")

        # 3. A hint-less raw design: proposals are mined structurally,
        #    then validated exactly like oracle output.
        mined = service.solve(SolveRequest(HINTLESS_DESIGN, SolveOptions()))
        print("\nmined proposals for the raw design:")
        for proposal in mined.proposals:
            print(f"  {proposal.score:5.2f}  {proposal.name}  "
                  f"[{proposal.origin}]")

        # 4. Malformed input is a structured response, not a crash.
        broken = service.solve("module oops (")
        print(f"\nmalformed request -> status={broken.status!r}")

        # 5. The operator's view: queue, batches, dedup and cache wins.
        stats = service.stats()
        print(f"\nServiceStats: {stats.submitted} submitted, "
              f"{stats.solved} actually solved, "
              f"{stats.deduped} deduped in-batch, "
              f"{stats.cache_hits} cache hits "
              f"({stats.cache_hit_rate:.0%} hit rate), "
              f"mean batch {stats.mean_batch:.1f} "
              f"(size flushes: {stats.flush_size}, "
              f"timeout flushes: {stats.flush_timeout})")

    # 6. Identical requests produce byte-identical responses — that is
    #    what makes the result cache sound.
    repeat_key = requests[0].cache_key()
    twins = [r for req, r in zip(requests, responses)
             if req.cache_key() == repeat_key]
    assert all(t.to_json() == twins[0].to_json() for t in twins)
    print("\ndeterminism check: all repeat responses byte-identical ✓")


if __name__ == "__main__":
    main()
