#!/usr/bin/env python
"""Quickstart: watch a fleet through ``/tracez`` and ``/metricsz``.

``examples/quickstart_fleet.py`` shows a fleet serving traffic; this
walkthrough shows *observing* one.  Every request through the stack is
one trace — the router's ``fleet.route`` span, the backend's
``http.server`` span, the service's queue/batch waits, and the solve's
compile/simulate/BMC phases all share a deterministic trace id,
stitched across the wire by the ``X-Repro-Trace-Id`` header.  The same
endpoints work with ``curl``::

    curl -s localhost:<port>/tracez    # recent + slowest traces, JSON
    curl -s localhost:<port>/metricsz  # fleet-wide Prometheus text

Both take ``?limit=N`` (and ``/tracez`` also ``?slowest=N``) to bound
the payload.  For *coverage* telemetry — toggle/block coverage and
assertion vacuity behind ``GET /covz`` — see
``examples/quickstart_cov.py``.

Run:  PYTHONPATH=src python examples/quickstart_obs.py
"""

from repro import PipelineConfig
from repro.obs import metrics as obs_metrics
from repro.serve import AssertClient, WorkloadSpec, build_workload


def main() -> None:
    # 1. A two-backend fleet; the router serves the observability
    #    endpoints for the whole fleet (backend payloads are fetched
    #    and merged on demand).
    router = PipelineConfig().serve_fleet(n_backends=2, max_batch=8)
    with router:
        client = AssertClient.for_server(router)
        print(f"fleet routing on {router.url}")

        # 2. A burst of traffic to have something worth looking at.
        requests = build_workload(WorkloadSpec(n_requests=16,
                                               unique_designs=8, seed=11))
        handles = [client.submit(request) for request in requests]
        statuses = [handle.result(timeout=300).status for handle in handles]
        print(f"{len(statuses)} requests served "
              f"({statuses.count('ok')} ok)\n")

        # 3. /tracez: where did the slowest request spend its time?
        #    Spans are offset-sorted; the indent below follows the
        #    parent chain (root -> forward -> backend -> solve phases).
        #    Prefer a trace that carries a solve span: a repeat rider's
        #    trace ends at batch.wait — its solve ran under the first
        #    waiter's trace (that is the dedup win, made visible).
        tracez = client.tracez()
        slowest = next(
            (record for record in tracez["slowest"]
             if any(span["name"] == "solve" for span in record["spans"])),
            tracez["slowest"][0])
        print(f"slowest trace {slowest['trace_id'][:12]}… "
              f"({slowest['duration_ms']:.1f}ms over "
              f"{slowest['n_spans']} spans):")
        depth = {None: -1}
        for span in slowest["spans"]:
            depth[span["span_id"]] = depth.get(span["parent_id"], 0) + 1
            indent = "  " * (depth[span["span_id"]] + 1)
            print(f"{indent}{span['name']:<20} "
                  f"+{span['offset_ms']:7.1f}ms  "
                  f"{span['duration_ms']:7.1f}ms")

        # 4. /metricsz: one Prometheus exposition for the fleet —
        #    backend samples summed name{labels}-for-name{labels}, so
        #    histogram buckets aggregate and quantiles stay derivable.
        parsed = obs_metrics.parse_prometheus_text(client.metricsz())
        solved = parsed.value("repro_service_solved_total")
        routed = parsed.value("repro_router_routed_total")
        count = parsed.value("repro_service_request_seconds_count")
        total = parsed.value("repro_service_request_seconds_sum")
        print(f"\nfleet /metricsz: {routed:.0f} routed, "
              f"{solved:.0f} solved, "
              f"mean request {1000 * total / count:.1f}ms over "
              f"{count:.0f} requests")
        under = next(
            (bound for bound, value in sorted(
                (float(labels[0][1]), value)
                for (name, labels), value in parsed.samples.items()
                if name == "repro_service_request_seconds_bucket"
                and labels[0][1] != "+Inf")
             if value >= 0.95 * count), None)
        print(f"~p95 request latency <= {1000 * under:.0f}ms "
              f"(from the cumulative buckets)")
    print("\nfleet drained and closed ✓")


if __name__ == "__main__":
    main()
