#!/usr/bin/env python
"""Quickstart: scale the HTTP service out to a routed fleet.

``examples/quickstart_http.py`` runs one live server; this walkthrough
runs three behind a :class:`repro.serve.FleetRouter` — one ``with``
block brings up the whole fleet, a burst of repeat-heavy traffic shows
consistent-hash cache affinity at work (fleet-wide, each unique design
is solved about once), and the drain propagates router -> backends.

The router speaks the exact single-instance wire protocol, so the same
client — or ``curl`` — talks to a fleet without knowing it is one::

    curl -s localhost:<port>/v1/solve -d '{"design_source": "..."}'
    curl -s localhost:<port>/statsz        # fleet-wide aggregate

Run:  PYTHONPATH=src python examples/quickstart_fleet.py
"""

from repro import PipelineConfig
from repro.serve import AssertClient, WorkloadSpec, build_workload


def main() -> None:
    # 1. One line from a single server to a fleet: three identical
    #    backends (stable ring names backend-0..2, each on an ephemeral
    #    port) behind one router socket.
    router = PipelineConfig().serve_fleet(n_backends=3, max_batch=8)
    with router:
        client = AssertClient.for_server(router)
        print(f"fleet routing on {router.url}")
        print(f"healthz: {client.healthz()}")

        # 2. A repeat-heavy burst, submitted concurrently.  The ring
        #    hashes each request's content key, so every repeat of a
        #    design lands on the backend whose cache already holds it.
        requests = build_workload(WorkloadSpec(n_requests=24,
                                               unique_designs=6, seed=11))
        handles = [client.submit(request) for request in requests]
        statuses = [handle.result(timeout=300).status for handle in handles]
        print(f"\n{len(statuses)} routed requests: "
              f"{statuses.count('ok')} ok")

        # 3. Cache affinity, per backend: each backend solves only its
        #    share of the 6 unique designs; repeats of those keys come
        #    home to it and are served without recomputing — from its
        #    result cache, or deduped onto a solve already in flight.
        agg = client.statsz()
        print("\nper-backend view:")
        for entry in agg["backends"]:
            service = (entry["statsz"] or {}).get("service", {})
            solved = service.get("solved", 0)
            reused = service.get("cache_hits", 0) + service.get("deduped", 0)
            total = solved + reused
            rate = reused / total if total else 0.0
            print(f"  {entry['node']} ({entry['address']}): "
                  f"{entry['forwarded']} requests, {solved} solved, "
                  f"{reused} served without recompute "
                  f"({rate:.0%} reuse rate)")

        # 4. The fleet-wide aggregate sums the numeric fields: ~6 solves
        #    for 24 requests is the aggregate-cache win — one instance
        #    with the same per-instance cache would recompute evictions.
        service = agg["service"]
        print(f"\nfleet /statsz: {service['submitted']} submitted, "
              f"{service['solved']} solved fleet-wide, "
              f"{service['cache_hits']} cache hits, "
              f"{service['deduped']} deduped in flight")
        print(f"router counters: {agg['router']['routed']} routed, "
              f"{agg['router']['spillovers']} spillovers, "
              f"{agg['router']['backends_healthy']}/"
              f"{agg['router']['backends_total']} healthy")
    # 5. close() drained in order: the router stopped accepting,
    #    finished in-flight forwards, then drained each backend.
    print("\nfleet drained and closed ✓")


if __name__ == "__main__":
    main()
