#!/usr/bin/env python
"""Domain scenario: debugging a FIFO occupancy tracker.

Walks the full verification loop a user would run on their own design:

1. write RTL + SVAs for a FIFO occupancy tracker,
2. inject a realistic bug (guard dropped on the pop path),
3. get the failure log + counterexample from the bounded checker,
4. enumerate the repair space and rank it with a trained AssertSolver,
5. semantically re-verify the top suggestion by patching and re-checking
   (an extension over the paper's text-match scoring).

Run:  python examples/debug_fifo.py
"""

from repro.core.api import AssertSolverPipeline, PipelineConfig
from repro.eval.runner import semantic_check
from repro.model.assertsolver import Problem
from repro.model.candidates import enumerate_repairs
from repro.oracles.spec import write_spec
from repro.sva.bmc import BmcConfig, bounded_check
from repro.verilog.compile import compile_source
from repro.verilog.writer import write_module

FIFO = """
module fifo_track (
  input clk,
  input rst_n,
  input push,
  input pop,
  output reg [3:0] count,
  output wire full,
  output wire empty
);
  assign full = count == 4'd8;
  assign empty = count == 4'd0;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 4'd0;
    else if (push && !pop && !full) count <= count + 4'd1;
    else if (pop && !push && !empty) count <= count + 4'd1;   // BUG: copy-paste '+' on the pop path
  end
  property count_bounded;
    @(posedge clk) disable iff (!rst_n) count <= 4'd8;
  endproperty
  count_bounded_assertion: assert property (count_bounded) else $error("occupancy exceeded depth");
  property pop_guarded;
    @(posedge clk) disable iff (!rst_n) pop && !push && empty |-> ##1 count == 4'd0;
  endproperty
  pop_guarded_assertion: assert property (pop_guarded) else $error("pop from empty underflowed");
endmodule
"""


def main():
    result = compile_source(FIFO)
    assert result.ok, result.failure_summary()
    canonical = write_module(result.module)

    check = bounded_check(result.design, BmcConfig(depth=16, random_trials=48))
    assert check.failed, "the copy-paste bug must overflow the FIFO"
    print("=== failure logs ===")
    print(check.log_text())
    print()

    # A verification engineer's view of the repair space.
    space = enumerate_repairs(canonical)
    print(f"repair-candidate space: {len(space)} single-line edits")
    print()

    pipeline = AssertSolverPipeline(PipelineConfig(
        n_designs=40, bugs_per_design=3, seed=13, include_human=False,
        include_baselines=False))
    solver = pipeline.train()

    spec = write_spec(canonical, None, "fifo_track")
    problem = Problem(spec, canonical, check.log_text())
    responses = solver.generate(problem, n=30, temperature=1.5)

    print("=== distinct suggestions (30 samples at T=1.5, each re-verified) ===")
    import types

    class _CaseShim:
        """Minimal case wrapper for semantic_check."""
        def __init__(self, source):
            self.entry = types.SimpleNamespace(buggy_source_with_sva=source)

    seen = set()
    for response in responses:
        key = (response.line, response.fix)
        if key in seen:
            continue
        seen.add(key)
        verified = semantic_check(response, _CaseShim(canonical),
                                  BmcConfig(depth=16, random_trials=48))
        tag = "VERIFIED by re-checking" if verified else "rejected by re-check"
        print(f"  line {response.line}: {response.fix}   [{tag}]")
    print()
    print("golden fix: 'count <= count - 4'd1;' on the pop path")


if __name__ == "__main__":
    main()
