#!/usr/bin/env python
"""Serving-layer benchmark: micro-batching and result-cache wins.

Replays one deterministic corpus-sampled request stream (see
:mod:`repro.serve.loadgen`) against four service settings on the same
host:

- **sequential** — one request at a time, result cache off: the
  no-serving-layer baseline (every request pays a full solve);
- **batched**    — the same stream with concurrent clients, result cache
  off: what micro-batching alone buys (in-batch dedup + worker fan-out);
- **cache_cold** — concurrent again with the result cache on, empty;
- **cache_warm** — the *same stream replayed* against the warm cache: a
  100%-repeat workload served from content-hash lookups.

The report asserts the serving layer's two contracts —
``batched_speedup >= --min-batched-speedup`` (default 2x) and
``cache_speedup >= --min-cache-speedup`` (default 5x) — plus response
determinism: every batched/cached response must be byte-identical to the
sequential one.  Results land in ``BENCH_serve.json`` (p50/p95 latency,
req/s, service counters) so the serving trajectory is tracked across PRs
like ``BENCH_pipeline.json`` tracks the batch pipeline.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engine import available_cpus
from repro.serve import (
    AssertService,
    ServeConfig,
    WorkloadSpec,
    build_workload,
    run_load,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _service(args, result_cache: bool, max_batch: int = None) -> AssertService:
    return AssertService(ServeConfig(
        n_workers=args.workers, backend="auto",
        max_queue=max(args.requests * 2, 64),
        max_batch=max_batch if max_batch is not None else args.max_batch,
        batch_window_ms=args.window_ms,
        result_cache=result_cache,
        seed=args.seed))


def _measure(args, requests, label: str, concurrency: int,
             result_cache: bool = False, service=None):
    """Run one load pass.  Pass *either* ``result_cache`` (a fresh
    service is built and torn down) *or* an existing ``service`` whose
    configuration already settles the caching question."""
    own = service is None
    if not own and result_cache:
        raise ValueError("pass result_cache only when _measure builds "
                         "the service itself")
    service = service or _service(args, result_cache)
    try:
        report = run_load(service, requests, concurrency=concurrency,
                          label=label)
        stats = service.stats()
    finally:
        if own:
            service.close()
    print(f"  {label:<10} {report.seconds:7.2f}s  "
          f"{report.req_per_sec:7.1f} req/s  p50 {report.p50_ms:7.1f}ms  "
          f"p95 {report.p95_ms:7.1f}ms  p99 {report.p99_ms:7.1f}ms  "
          f"solved {stats.solved}  "
          f"deduped {stats.deduped}  cache hits {stats.cache_hits}")
    return report, stats


def run_bench(args) -> dict:
    spec = WorkloadSpec(n_requests=args.requests,
                        unique_designs=args.unique,
                        seed=args.seed,
                        bmc_depth=args.bmc_depth,
                        bmc_random_trials=args.bmc_random_trials)
    requests = build_workload(spec)
    print(f"bench_serve: {args.requests} requests over {args.unique} unique "
          f"designs, concurrency={args.concurrency}, "
          f"workers={args.workers}, cpus={available_cpus()}")

    sequential, seq_stats = _measure(
        args, requests, "sequential", concurrency=1, result_cache=False)
    batched, batch_stats = _measure(
        args, requests, "batched", concurrency=args.concurrency,
        result_cache=False)

    # Cache passes share one service: cold populates, warm is 100% repeats.
    cache_service = _service(args, result_cache=True)
    try:
        cache_cold, _ = _measure(args, requests, "cache_cold",
                                 concurrency=args.concurrency,
                                 service=cache_service)
        cache_warm, warm_stats = _measure(args, requests, "cache_warm",
                                          concurrency=args.concurrency,
                                          service=cache_service)
    finally:
        cache_service.close()

    unique_keys = len({r.cache_key() for r in requests})
    responses_match = all(
        a is not None and b is not None and c is not None
        and a.to_json() == b.to_json() == c.to_json()
        for a, b, c in zip(sequential.responses, batched.responses,
                           cache_warm.responses))
    batched_speedup = round(
        batched.req_per_sec / sequential.req_per_sec, 3) \
        if sequential.req_per_sec else 0.0
    cache_speedup = round(
        cache_warm.req_per_sec / cache_cold.req_per_sec, 3) \
        if cache_cold.req_per_sec else 0.0

    report = {
        "benchmark": "serve",
        "n_requests": args.requests,
        "unique_designs": args.unique,
        "unique_request_keys": unique_keys,
        "concurrency": args.concurrency,
        "requested_workers": args.workers,
        "cpu_count": available_cpus(),
        "max_batch": args.max_batch,
        "batch_window_ms": args.window_ms,
        "sequential": sequential.to_dict(),
        "batched": batched.to_dict(),
        "cache_cold": cache_cold.to_dict(),
        "cache_warm": cache_warm.to_dict(),
        "batched_speedup": batched_speedup,
        "cache_speedup": cache_speedup,
        "min_batched_speedup": args.min_batched_speedup,
        "min_cache_speedup": args.min_cache_speedup,
        "batching_win": batched_speedup >= args.min_batched_speedup,
        "cache_win": cache_speedup >= args.min_cache_speedup,
        "responses_match": responses_match,
        "batched_stats": batch_stats.to_dict(),
        "cache_warm_stats": warm_stats.to_dict(),
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_serve.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  micro-batching speedup {batched_speedup}x "
          f"(floor {args.min_batched_speedup}x), "
          f"cache speedup {cache_speedup}x "
          f"(floor {args.min_cache_speedup}x), "
          f"responses match: {responses_match} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=10)
    parser.add_argument("--bmc-random-trials", type=int, default=24)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-batched-speedup", type=float, default=2.0,
                        help="required batched/sequential req/s ratio "
                             "(0 disables the gate)")
    parser.add_argument("--min-cache-speedup", type=float, default=5.0,
                        help="required warm/cold cache req/s ratio "
                             "(0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["responses_match"]:
        print("  FATAL: batched/cached responses diverge from sequential")
        sys.exit(1)
    if args.min_batched_speedup > 0 and not report["batching_win"]:
        print("  FATAL: micro-batching speedup below floor")
        sys.exit(2)
    if args.min_cache_speedup > 0 and not report["cache_win"]:
        print("  FATAL: result-cache speedup below floor")
        sys.exit(3)


if __name__ == "__main__":
    main()
