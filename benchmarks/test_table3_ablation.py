"""Table III — Base vs SFT vs AssertSolver pass@k (the RQ1 ablation).

Shape targets from the paper: Base << SFT on both metrics; DPO raises
pass@1 relative to SFT while pass@5 does not improve commensurately.
"""

from repro.eval.reporting import render_table3
from repro.model.assertsolver import Problem


def test_table3_ablation(benchmark, pipeline, results):
    table = render_table3(pipeline.table3_results())
    print("\n" + table)

    base = results["Base Model"]
    sft = results["SFT Model"]
    solver = results["AssertSolver"]

    def measure():
        case = pipeline.build_benchmark().machine[0]
        return pipeline.assertsolver.generate(
            Problem.from_entry(case.entry), n=20)

    benchmark(measure)

    machine = [o for o in sft.outcomes if o.case.origin == "machine"]
    assert base.pass_at(1) < 0.2
    assert sft.pass_at_origin(1, "machine") > base.pass_at(1) + 0.3
    assert solver.pass_at_origin(1, "machine") >= \
        sft.pass_at_origin(1, "machine") - 0.05
    assert len(machine) > 0
