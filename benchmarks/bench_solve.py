#!/usr/bin/env python
"""Solve-path throughput benchmark: compiled tier vs AST interpreter.

Times :func:`repro.serve.solve_task` over a fixed corpus workload twice —

- **interp**: ``sim_mode="interp"``, the AST-walking execution model
  (per-cycle ``Evaluator`` dispatch for RTL and property evaluation);
- **compiled**: ``sim_mode="compiled"``, the closure-program tier
  (:mod:`repro.sim.compiled`): the design is lowered once, simulation
  and SVA monitoring run dispatch-free.

Both tiers must produce **byte-identical** ``SolveResponse.to_json()``
bodies; the benchmark exits 1 the moment they diverge.  Compile and
program caches are warmed before timing so the measurement isolates the
execution tier, and each setting is run ``--repeats`` times with the
best time kept.

Writes ``BENCH_solve.json`` (wall seconds, designs/sec per mode,
speedup, per-phase profile deltas, byte-identity) so the perf
trajectory is tracked across PRs.

Gate: ``--min-speedup X`` fails (exit 2) unless compiled beats interp
by at least ``X`` in this same run on this same host — a relative,
hardware-portable measure, like ``bench_pipeline_speed``'s gate.  The
dev-host target is 3.0; CI uses 2.0 (shared runners are noisy).

Run:  PYTHONPATH=src python benchmarks/bench_solve.py --min-speedup 3.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.corpus.generator import CorpusGenerator
from repro.engine import metrics
from repro.serve import SolveOptions, solve_task
from repro.serve.service import SolveTask

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Phases charged by the solve hot path (``metrics.add_time``).
PHASES = ("compile_program", "simulate", "monitor", "bmc")


def build_tasks(n_designs: int, seed: int, mode: str,
                depth: int, trials: int) -> list:
    seeds = CorpusGenerator(seed=seed).generate(n_designs)
    return [SolveTask(f"bench_{index}", s.source,
                      SolveOptions.for_design(s, bmc_depth=depth,
                                              bmc_random_trials=trials),
                      seed, sim_mode=mode)
            for index, s in enumerate(seeds)]


def time_mode(label: str, tasks: list, repeats: int) -> dict:
    # Warm-up pass: populates the compile cache and (for the compiled
    # tier) the per-design program cache, and provides the reference
    # responses for the byte-identity check.
    reference = [solve_task(task).to_json() for task in tasks]
    before = metrics.profile_counters()
    best_seconds = None
    for _ in range(repeats):
        started = time.perf_counter()
        bodies = [solve_task(task).to_json() for task in tasks]
        elapsed = time.perf_counter() - started
        if bodies != reference:
            print(f"  FATAL: {label} responses changed between repeats")
            sys.exit(1)
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    after = metrics.profile_counters()
    profile = {key: after.get(key, 0) - before.get(key, 0)
               for key in (f"{phase}_us" for phase in PHASES)}
    rate = len(tasks) / best_seconds
    print(f"  {label:<9} {best_seconds:7.3f}s  {rate:7.1f} designs/s  "
          + "  ".join(f"{phase}={profile[f'{phase}_us'] / 1e6:.2f}s"
                      for phase in PHASES))
    return {
        "seconds": round(best_seconds, 4),
        "designs_per_sec": round(rate, 3),
        "profile_us": profile,
        "responses": reference,
    }


def run_bench(n_designs: int = 16, seed: int = 2025, repeats: int = 3,
              depth: int = 10, trials: int = 24,
              output: Path = None) -> dict:
    print(f"bench_solve: n_designs={n_designs}, bmc_depth={depth}, "
          f"bmc_random_trials={trials}, repeats={repeats}")
    interp = time_mode("interp", build_tasks(
        n_designs, seed, "interp", depth, trials), repeats)
    compiled = time_mode("compiled", build_tasks(
        n_designs, seed, "compiled", depth, trials), repeats)

    identical = interp.pop("responses") == compiled.pop("responses")
    report = {
        "benchmark": "solve_speed",
        "n_designs": n_designs,
        "bmc_depth": depth,
        "bmc_random_trials": trials,
        "repeats": repeats,
        "interp": interp,
        "compiled": compiled,
        "speedup": round(interp["seconds"] / compiled["seconds"], 3),
        "responses_identical": identical,
        "unix_time": int(time.time()),
    }
    output = output or REPO_ROOT / "BENCH_solve.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  speedup {report['speedup']}x, responses identical: "
          f"{identical} -> {output}")
    return report


def check_speedup(report: dict, min_speedup: float) -> bool:
    """Same-host relative gate: the compiled tier must beat the
    interpreter by ``min_speedup`` in this very run."""
    speedup = report["speedup"]
    verdict = "ok" if speedup >= min_speedup else "REGRESSION"
    print(f"  speedup gate: {speedup:.3f}x vs required "
          f"{min_speedup:.2f}x (same host, same run) -> {verdict}")
    return speedup >= min_speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--depth", type=int, default=10)
    parser.add_argument("--trials", type=int, default=24)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required compiled-vs-interp speedup measured "
                             "in this run (0 disables; CI uses 2.0)")
    args = parser.parse_args()
    report = run_bench(n_designs=args.designs, seed=args.seed,
                       repeats=args.repeats, depth=args.depth,
                       trials=args.trials, output=args.output)
    if not report["responses_identical"]:
        print("  FATAL: compiled and interp responses diverge")
        sys.exit(1)
    if args.min_speedup > 0 and not check_speedup(report, args.min_speedup):
        sys.exit(2)


if __name__ == "__main__":
    main()
