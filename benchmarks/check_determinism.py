#!/usr/bin/env python
"""CI determinism gate: ``n_workers=4`` must be byte-identical to
``n_workers=1``.

Builds the full dataset bundle twice — once serially, once over a
4-worker process pool — with every scenario family group enabled, and
fails (exit 1) when the :meth:`DatasetBundle.fingerprint` values differ.
This is the engine's core invariant: all randomness derives per
``(seed, stage, unit_id, label)``, so scheduling must never leak into
results.

Run:  PYTHONPATH=src python benchmarks/check_determinism.py
"""

from __future__ import annotations

import argparse
import sys

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.sim.compiled import SIM_MODES


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--sim-mode", choices=SIM_MODES, default="compiled",
                        help="execution tier for both runs; any choice must "
                             "yield the same fingerprint (the CI matrix "
                             "runs both)")
    args = parser.parse_args()

    common = dict(n_designs=args.designs, bugs_per_design=2, seed=args.seed,
                  bmc_depth=6, bmc_random_trials=8, sim_mode=args.sim_mode)
    serial = run_pipeline(DatagenConfig(n_workers=1, **common))
    parallel = run_pipeline(DatagenConfig(n_workers=args.workers,
                                          backend="process", **common))
    a, b = serial.fingerprint(), parallel.fingerprint()
    print(f"sim_mode: {args.sim_mode}")
    print(f"serial   (n_workers=1):           {a}")
    print(f"parallel (n_workers={args.workers}, process): {b}")
    print(f"corpus families: {serial.stats['corpus_families']}")
    if a != b:
        print("FATAL: fingerprints diverge — parallel execution changed "
              "the produced datasets")
        return 1
    print("ok: byte-identical bundles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
