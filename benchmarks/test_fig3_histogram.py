"""Fig. 3 — histogram of correct answers across 20 responses.

Shape target: the AssertSolver (DPO) histogram concentrates more mass at
the deterministic ends (c = 0 and c = 20) than the SFT model — the paper's
precision-for-diversity trade-off.
"""

from repro.eval.histogram import extremity_mass, histogram_series, render_histogram


def test_fig3_histogram(benchmark, pipeline, results):
    sft = results["SFT Model"]
    solver = results["AssertSolver"]

    def render():
        return render_histogram({"SFT Model": sft, "AssertSolver": solver},
                                n=pipeline.config.n_samples)

    figure = benchmark(render)
    print("\n" + figure)

    n = pipeline.config.n_samples
    sft_series = histogram_series(sft, n)
    solver_series = histogram_series(solver, n)
    assert sum(sft_series) == sum(solver_series) == len(sft.outcomes)

    assert extremity_mass(solver, n) >= extremity_mass(sft, n) - 0.05
