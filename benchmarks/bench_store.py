#!/usr/bin/env python
"""Store benchmark: cross-run incremental datagen must actually win.

Runs the Section-II datagen pipeline twice with an identical
configuration against one :class:`repro.store.DiskStore`:

- **cold** — empty store: every stage unit computes and is written
  through (the store's overhead is paid here, so this run also guards
  against the store slowing a first run down);
- **warm** — populated store: every stage unit is served from disk, so
  the run skips straight to stored results.

Gates (all fatal):

- ``warm_speedup >= --min-warm-speedup`` (default 5x): the acceptance
  criterion's performance half;
- ``fingerprints_match``: the warm bundle is byte-identical to the cold
  one (``DatasetBundle.fingerprint()``), the correctness half;
- ``warm_fully_memoized``: the warm run recomputed zero stage units —
  a miss would mean memo keys leak execution state.

The in-memory compile cache is cleared between runs so the warm win is
the *store's*, not a process-local artifact.  Results land in
``BENCH_store.json`` (CI uploads ``BENCH_store.ci.json``) so the
incremental-execution trajectory is tracked across PRs like the
pipeline and serve benches.

Run:  PYTHONPATH=src python benchmarks/bench_store.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine import available_cpus
from repro.store import StoreConfig
from repro.verilog.compile import default_compile_cache

REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_once(args, store_dir: Path, label: str):
    config = DatagenConfig(
        n_designs=args.designs, bugs_per_design=args.bugs,
        seed=args.seed, bmc_depth=args.bmc_depth,
        bmc_random_trials=args.bmc_random_trials,
        n_workers=args.workers, backend=args.backend,
        store=StoreConfig(path=store_dir))
    # A fresh process would start with an empty in-memory compile cache;
    # simulate that so the warm run's win is attributable to the store.
    default_compile_cache().clear()
    started = time.perf_counter()
    bundle = run_pipeline(config)
    seconds = time.perf_counter() - started
    store_stats = bundle.stats["store"]
    print(f"  {label:<5} {seconds:7.2f}s  "
          f"memo hits {store_stats['stage_memo_hits']:>4}  "
          f"misses {store_stats['stage_memo_misses']:>4}  "
          f"fingerprint {bundle.fingerprint()[:16]}")
    return bundle, seconds


def run_bench(args) -> dict:
    store_dir = Path(args.store_dir) if args.store_dir \
        else Path(tempfile.mkdtemp(prefix="bench_store_"))
    print(f"bench_store: {args.designs} designs, workers={args.workers}, "
          f"cpus={available_cpus()}, store={store_dir}")

    cold_bundle, cold_s = _run_once(args, store_dir, "cold")
    warm_bundle, warm_s = _run_once(args, store_dir, "warm")

    warm_speedup = round(cold_s / warm_s, 3) if warm_s else float("inf")
    fingerprints_match = cold_bundle.fingerprint() == warm_bundle.fingerprint()
    warm_store = warm_bundle.stats["store"]
    warm_fully_memoized = warm_store["stage_memo_misses"] == 0

    report = {
        "benchmark": "store",
        "n_designs": args.designs,
        "bugs_per_design": args.bugs,
        "seed": args.seed,
        "requested_workers": args.workers,
        "backend": args.backend,
        "cpu_count": available_cpus(),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": warm_speedup,
        "min_warm_speedup": args.min_warm_speedup,
        "warm_win": warm_speedup >= args.min_warm_speedup,
        "fingerprints_match": fingerprints_match,
        "cold_fingerprint": cold_bundle.fingerprint(),
        "warm_fingerprint": warm_bundle.fingerprint(),
        "warm_fully_memoized": warm_fully_memoized,
        "cold_store": cold_bundle.stats["store"],
        "warm_store": warm_store,
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_store.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  warm speedup {warm_speedup}x (floor {args.min_warm_speedup}x), "
          f"fingerprints match: {fingerprints_match}, "
          f"fully memoized: {warm_fully_memoized} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=24)
    parser.add_argument("--bugs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=10)
    parser.add_argument("--bmc-random-trials", type=int, default=24)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="store root (default: a fresh temp dir, so "
                             "the cold run is honestly cold)")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-warm-speedup", type=float, default=5.0,
                        help="required cold/warm wall-clock ratio "
                             "(0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["fingerprints_match"]:
        print("  FATAL: warm re-run changed the produced datasets")
        sys.exit(1)
    if not report["warm_fully_memoized"]:
        print("  FATAL: warm run recomputed stage units (memo misses > 0)")
        sys.exit(2)
    if args.min_warm_speedup > 0 and not report["warm_win"]:
        print("  FATAL: warm-run speedup below floor")
        sys.exit(3)


if __name__ == "__main__":
    main()
