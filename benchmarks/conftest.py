"""Benchmark fixtures.

One pipeline (datagen -> train -> benchmark -> evaluate all models) is
built per session and shared by every bench; each bench then regenerates
its table/figure from the cached results and prints it next to the paper's
numbers.  Scale via REPRO_BENCH_DESIGNS (default 80 designs).
"""

from __future__ import annotations

import os

import pytest

from repro.core.api import PipelineConfig, shared_pipeline

BENCH_DESIGNS = int(os.environ.get("REPRO_BENCH_DESIGNS", "80"))


@pytest.fixture(scope="session")
def pipeline():
    config = PipelineConfig(n_designs=BENCH_DESIGNS, bugs_per_design=4,
                            seed=2025, n_samples=20, include_human=True,
                            include_baselines=True)
    p = shared_pipeline(config)
    p.evaluate()
    return p


@pytest.fixture(scope="session")
def results(pipeline):
    return pipeline.evaluate()
