#!/usr/bin/env python
"""Eval benchmark: memoized pass@k re-runs must actually win.

Runs :func:`repro.eval.run_eval` twice over the Section-IV benchmark
(machine + human splits) with an identical :class:`EvalConfig` against
one :class:`repro.store.DiskStore`:

- **cold** — empty store: every case is scored and its ``(n, c)``
  outcome written through (the store's overhead is paid here);
- **warm** — populated store: every outcome is served from the
  ``eval/v1`` memo, so the run never touches the model.

Then a live-server leg: an :class:`AssertHttpServer` over a service
pointed at the *same* store answers ``POST /v1/eval`` for the same
request, which must (a) serve every case from the memo and (b) return a
body byte-identical to the in-process ``EvalReport.to_json()``.

Gates (all fatal):

- ``reports_match``: the warm report is byte-identical to the cold one
  — the correctness half of the acceptance criterion;
- ``warm_fully_memoized``: the warm run recomputed zero cases — a miss
  would mean memo keys leak execution state;
- ``warm_speedup >= --min-warm-speedup`` (default 5x, warm best-of-3
  because the warm side is tiny): the performance half;
- ``wire_matches_in_process``: the HTTP body equals the in-process
  serialization byte for byte — the transport must not fork
  determinism;
- ``server_fully_memoized``: the server-side eval hit the memo for
  every case, proving the store is the cross-process seam.

Results land in ``BENCH_eval.json`` (CI uploads ``BENCH_eval.ci.json``)
so the eval-workload trajectory is tracked across PRs like the other
benches.

Run:  PYTHONPATH=src python benchmarks/bench_eval.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.baselines.engine import make_baseline
from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine import available_cpus
from repro.eval import EvalConfig, run_eval
from repro.eval.benchmark import build_benchmark
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    EvalRequest,
    HttpConfig,
    ServeConfig,
)
from repro.store import StoreConfig

REPO_ROOT = Path(__file__).resolve().parents[1]


def _timed_eval(model, cases, config, store, label):
    started = time.perf_counter()
    report = run_eval(model, cases, config=config, store=store)
    seconds = time.perf_counter() - started
    print(f"  {label:<5} {seconds:7.4f}s  "
          f"memo hits {report.stats['memo_hits']:>4}  "
          f"computed {report.stats['computed']:>4}")
    return report, seconds


def _wire_leg(model_name, model, cases, config, store_dir):
    """POST the same eval to a live server sharing the store; return
    (wire bytes, server-side eval stats)."""
    service = AssertService(
        ServeConfig(store=StoreConfig(path=store_dir)))
    service.register_model(model_name, model)
    server = AssertHttpServer(service, HttpConfig(port=0))
    server.start()
    try:
        client = AssertClient.for_server(server)
        report = client.eval(EvalRequest(model_name, cases, config=config))
        stats = service.stats().to_dict()
    finally:
        server.close()
    return report.to_json(), {key: stats[key] for key in
                              ("evals", "eval_cases", "eval_memo_hits")}


def run_bench(args) -> dict:
    store_dir = Path(args.store_dir) if args.store_dir \
        else Path(tempfile.mkdtemp(prefix="bench_eval_"))
    bundle = run_pipeline(DatagenConfig(
        n_designs=args.designs, bugs_per_design=args.bugs, seed=args.seed,
        bmc_depth=args.bmc_depth, bmc_random_trials=args.bmc_random_trials))
    cases = build_benchmark(bundle, include_human=True).cases
    model = make_baseline(args.model, seed=0)
    config = EvalConfig(n_samples=args.n_samples, seed=args.seed + 1)
    print(f"bench_eval: {len(cases)} cases x {args.n_samples} samples, "
          f"model={args.model}, cpus={available_cpus()}, store={store_dir}")

    store = StoreConfig(path=store_dir).make_store()
    cold, cold_s = _timed_eval(model, cases, config, store, "cold")
    warm_runs = [_timed_eval(model, cases, config, store, "warm")
                 for _ in range(3)]
    warm, warm_s = min(warm_runs, key=lambda pair: pair[1])

    wire_body, server_stats = _wire_leg(args.model, model, cases, config,
                                        store_dir)

    warm_speedup = round(cold_s / warm_s, 3) if warm_s else float("inf")
    report = {
        "benchmark": "eval",
        "n_designs": args.designs,
        "bugs_per_design": args.bugs,
        "seed": args.seed,
        "model": args.model,
        "n_cases": len(cases),
        "n_samples": args.n_samples,
        "cpu_count": available_cpus(),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_speedup": warm_speedup,
        "min_warm_speedup": args.min_warm_speedup,
        "warm_win": warm_speedup >= args.min_warm_speedup,
        "reports_match": warm.to_json() == cold.to_json(),
        "cold_stats": cold.stats,
        "warm_stats": warm.stats,
        "warm_fully_memoized": warm.stats["computed"] == 0,
        "wire_matches_in_process": wire_body == cold.to_json(),
        "server_stats": server_stats,
        "server_fully_memoized":
            server_stats["eval_memo_hits"] == len(cases),
        "pass_at_1": cold.pass_at(1),
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_eval.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  warm speedup {warm_speedup}x (floor {args.min_warm_speedup}x), "
          f"reports match: {report['reports_match']}, "
          f"wire match: {report['wire_matches_in_process']} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=48)
    parser.add_argument("--bugs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=8)
    parser.add_argument("--bmc-random-trials", type=int, default=16)
    parser.add_argument("--model", default="GPT-4")
    parser.add_argument("--n-samples", type=int, default=400,
                        help="samples per case (large enough that the "
                             "cold run is honestly measurable)")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="store root (default: a fresh temp dir, so "
                             "the cold run is honestly cold)")
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-warm-speedup", type=float, default=5.0,
                        help="required cold/warm wall-clock ratio "
                             "(0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["reports_match"]:
        print("  FATAL: warm re-run changed the report bytes")
        sys.exit(1)
    if not report["warm_fully_memoized"]:
        print("  FATAL: warm run recomputed cases (memo misses > 0)")
        sys.exit(2)
    if args.min_warm_speedup > 0 and not report["warm_win"]:
        print("  FATAL: warm-run speedup below floor")
        sys.exit(3)
    if not report["wire_matches_in_process"]:
        print("  FATAL: HTTP body diverged from in-process serialization")
        sys.exit(4)
    if not report["server_fully_memoized"]:
        print("  FATAL: server-side eval missed the shared store memo")
        sys.exit(5)


if __name__ == "__main__":
    main()
