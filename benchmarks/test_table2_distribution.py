"""Table II — SVA-Bug / SVA-Eval distribution across length bins and bug
types, regenerated from the live pipeline and printed beside the paper's
counts (ratio shapes are asserted; absolute counts scale with config)."""

from repro.eval.reporting import render_table2


def test_table2_distribution(benchmark, pipeline):
    bundle = pipeline.run_datagen()

    def render():
        return render_table2(bundle.stats["sva_bug_distribution"],
                             bundle.stats["sva_eval_distribution"])

    table = benchmark(render)
    print("\n" + table)

    train = bundle.stats["sva_bug_distribution"]
    # Paper shape: Value-heavy kinds, Non_cond majority, short-code majority.
    assert train.get("Value", 0) > train.get("Var", 0)
    assert train.get("Non_cond", 0) > train.get("Cond", 0)
    assert train.get("(0, 50]", 0) >= train.get("(150, 200]", 0)


def test_table2_split_ratio(benchmark, pipeline):
    bundle = pipeline.run_datagen()

    def ratio():
        train = len(bundle.sva_bug_train)
        test = len(bundle.sva_eval_machine)
        return train / max(train + test, 1)

    value = benchmark(ratio)
    print(f"\ntrain fraction: {value:.2%} (paper: 90%)")
    assert 0.7 <= value <= 0.98
