#!/usr/bin/env python
"""Pipeline throughput benchmark: pre-engine baseline vs engine settings.

Times ``run_pipeline`` twice —

- **serial**: the pre-engine execution model — ``n_workers=1``, compile
  cache disabled, per-proposal SVA validation;
- **parallel**: the engine's parallel settings — ``backend="auto"``
  worker pool (clamped to the CPUs actually available), compile cache,
  batched SVA validation.  On a single-core host this measures the
  engine's redundancy elimination; on a multi-core host it additionally
  measures real multi-process speedup.

Both settings produce byte-identical datasets (``fingerprints_match``).

— and writes ``BENCH_pipeline.json`` (wall seconds, designs/sec,
compile-cache hit rate, speedup, fingerprint equality) so the perf
trajectory is tracked across PRs.  Each setting is run ``--repeats``
times from a cold cache and the best time kept.

Two regression gates are available:

- ``--min-speedup X`` (the CI gate): fail unless the parallel setting is
  at least ``X`` times faster than the serial one *measured in this same
  run on this same host*.  Serial and parallel share the host, the load
  and the scale, so the ratio is portable across runner hardware —
  unlike absolute designs/sec.
- ``--baseline <committed BENCH_pipeline.json>`` (local trend check):
  exit non-zero when the parallel setting's designs/sec falls more than
  ``--max-regression`` (default 30%) below the committed baseline's.
  Absolute rates vary across hosts, so only compare against a baseline
  recorded on comparable hardware.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline_speed.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine import available_cpus
from repro.verilog.compile import default_compile_cache

REPO_ROOT = Path(__file__).resolve().parents[1]


def time_setting(label: str, config: DatagenConfig, repeats: int) -> dict:
    best_seconds = None
    bundle = None
    for _ in range(repeats):
        default_compile_cache().clear()  # cold cache: no cross-run carryover
        started = time.perf_counter()
        bundle = run_pipeline(config)
        elapsed = time.perf_counter() - started
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    cache = bundle.stats["compile_cache"]
    engine = bundle.stats["engine"]
    print(f"  {label:<10} {best_seconds:7.2f}s  "
          f"{config.n_designs / best_seconds:6.1f} designs/s  "
          f"cache hit rate {cache['hit_rate']:.1%}  "
          f"backend={engine['backend']} x{engine['n_workers']}")
    return {
        "seconds": round(best_seconds, 3),
        "designs_per_sec": round(config.n_designs / best_seconds, 3),
        "compile_cache": cache,
        "backend": engine["backend"],
        "n_workers": engine["n_workers"],
        "fingerprint": bundle.fingerprint(),
    }


def run_bench(n_designs: int = 120, n_workers: int = 4, seed: int = 2025,
              repeats: int = 2, output: Path = None) -> dict:
    common = dict(n_designs=n_designs, seed=seed)
    print(f"bench_pipeline_speed: n_designs={n_designs}, "
          f"cpus={available_cpus()}, repeats={repeats}")
    serial = time_setting("serial", DatagenConfig(
        n_workers=1, compile_cache=False,
        sva_validation="per_proposal", **common), repeats)
    parallel = time_setting("parallel", DatagenConfig(
        n_workers=n_workers, backend="auto", **common), repeats)

    report = {
        "benchmark": "pipeline_speed",
        "n_designs": n_designs,
        "requested_workers": n_workers,
        "cpu_count": available_cpus(),
        "repeats": repeats,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["seconds"] / parallel["seconds"], 3),
        "fingerprints_match":
            serial["fingerprint"] == parallel["fingerprint"],
        "unix_time": int(time.time()),
    }
    output = output or REPO_ROOT / "BENCH_pipeline.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  speedup {report['speedup']}x, fingerprints match: "
          f"{report['fingerprints_match']} -> {output}")
    return report


def check_speedup(report: dict, min_speedup: float) -> bool:
    """Same-host relative gate: engine settings must beat the pre-engine
    serial model by ``min_speedup`` in this very run."""
    speedup = report["speedup"]
    verdict = "ok" if speedup >= min_speedup else "REGRESSION"
    print(f"  speedup gate: {speedup:.3f}x vs required "
          f"{min_speedup:.2f}x (same host, same run) -> {verdict}")
    return speedup >= min_speedup


def check_regression(report: dict, baseline_path: Path,
                     max_regression: float) -> bool:
    """Compare this run's parallel designs/sec against a committed
    baseline report.  Returns True when within the allowed regression."""
    baseline = json.loads(baseline_path.read_text())
    base_rate = baseline["parallel"]["designs_per_sec"]
    new_rate = report["parallel"]["designs_per_sec"]
    floor = base_rate * (1.0 - max_regression)
    verdict = "ok" if new_rate >= floor else "REGRESSION"
    print(f"  regression check: {new_rate:.3f} designs/s vs baseline "
          f"{base_rate:.3f} (floor {floor:.3f}, "
          f"allowed -{max_regression:.0%}) -> {verdict}")
    return new_rate >= floor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", type=int, default=120)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required parallel-vs-serial speedup measured "
                             "in this run (0 disables; the CI gate)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_pipeline.json to gate against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional designs/sec drop vs baseline")
    args = parser.parse_args()
    report = run_bench(n_designs=args.designs, n_workers=args.workers,
                       seed=args.seed, repeats=args.repeats,
                       output=args.output)
    if not report["fingerprints_match"]:
        print("  FATAL: serial and parallel fingerprints diverge")
        sys.exit(1)
    if args.min_speedup > 0 and not check_speedup(report, args.min_speedup):
        sys.exit(2)
    if args.baseline is not None and not check_regression(
            report, args.baseline, args.max_regression):
        sys.exit(2)


if __name__ == "__main__":
    main()
