#!/usr/bin/env python
"""Fleet benchmark: horizontal scale-out through the router, same host.

Replays one deterministic repeat-heavy request stream (see
:mod:`repro.serve.loadgen`) against two setups, back to back on this
very host, two passes each (cold, then steady-state):

- **single** — one live :class:`AssertHttpServer` on localhost;
- **fleet**  — the identical stream through a
  :class:`repro.serve.FleetRouter` over ``--backends`` identical
  instances (same per-instance ``ServeConfig``).

Why the fleet wins even on one core: per-instance resources are fixed
(each result cache holds ``--cache-entries`` responses), so the single
instance thrashes on a working set of ``--unique`` designs and keeps
recomputing evicted keys — every pass, forever.  The router's
consistent hash partitions the key space, each backend's share fits
its cache, and the fleet's caches compose into one aggregate cache ~N
times the size: fleet-wide each unique design is solved about once,
after which the stream is served from memory.  The gate is measured on
the **steady** pass (second replay, caches at their steady state) —
the regime a long-lived service actually operates in; the cold pass,
where both sides pay the same compulsory misses, is reported
alongside.  On multi-core hosts the N worker pools add compute scaling
on top of the cache win; the gate holds on both because both sides run
on the same host in the same run.

Gates (same-host relative, like every bench in this repo):

- steady-pass ``fleet req/s >= --min-speedup x single req/s``
  (default 2x);
- every response body through the router — both passes — must be
  byte-identical to the single-instance body for the same request:
  routing is pure execution, invisible in the bytes;
- zero transport errors on either side.

Results land in ``BENCH_fleet.json`` (CI writes ``BENCH_fleet.ci.json``).

Run:  PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.api import FleetConfig, make_fleet
from repro.engine import available_cpus
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    HttpConfig,
    ServeConfig,
    WorkloadSpec,
    build_workload,
    run_load,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _serve_config(args) -> ServeConfig:
    return ServeConfig(
        n_workers=args.workers, backend="auto",
        max_queue=max(args.requests * 2, 64),
        max_batch=args.max_batch,
        batch_window_ms=args.window_ms,
        result_cache=True,
        cache_entries=args.cache_entries,
        seed=args.seed)


def _print(label: str, report, solved, cache_hits) -> None:
    print(f"  {label:<8} {report.seconds:7.2f}s  "
          f"{report.req_per_sec:7.1f} req/s  p50 {report.p50_ms:7.1f}ms  "
          f"p95 {report.p95_ms:7.1f}ms  p99 {report.p99_ms:7.1f}ms  "
          f"solved {solved}  "
          f"cache hits {cache_hits}  errors {report.errors}")


def run_bench(args) -> dict:
    spec = WorkloadSpec(n_requests=args.requests,
                        unique_designs=args.unique,
                        seed=args.seed,
                        bmc_depth=args.bmc_depth,
                        bmc_random_trials=args.bmc_random_trials)
    requests = build_workload(spec)
    print(f"bench_fleet: {args.requests} requests over {args.unique} unique "
          f"designs, {args.backends} backends, "
          f"cache_entries={args.cache_entries}/instance, "
          f"concurrency={args.concurrency}, workers={args.workers}, "
          f"cpus={available_cpus()}")

    # -- one instance: the floor the fleet is measured against -----------
    with AssertHttpServer(AssertService(_serve_config(args)),
                          HttpConfig()) as server:
        client = AssertClient.for_server(server)
        single_cold = run_load(client, requests,
                               concurrency=args.concurrency,
                               label="single_cold")
        cold_solved = server.service.stats().solved
        single = run_load(client, requests, concurrency=args.concurrency,
                          label="single")
        single_stats = server.service.stats()
    _print("single/c", single_cold, cold_solved, 0)
    # Steady pass: the cache is as warm as it will ever get, yet the
    # working set still does not fit — the thrash is structural.
    _print("single", single, single_stats.solved - cold_solved,
           single_stats.cache_hits)

    # -- the same stream through the router over N backends --------------
    router = make_fleet(FleetConfig(n_backends=args.backends),
                        _serve_config(args))
    router.start()
    try:
        client = AssertClient.for_server(router)
        fleet_cold = run_load(client, requests,
                              concurrency=args.concurrency,
                              label="fleet_cold")
        fleet_cold_solved = int(
            router.statsz()["service"].get("solved", 0))
        fleet = run_load(client, requests, concurrency=args.concurrency,
                         label="fleet")
        agg = router.statsz()
        # Where each unique design's key lands on the ring.
        shares: dict = {}
        for request in requests[:args.unique]:
            owner = router.candidates_for(request.cache_key())[0]
            shares[owner] = shares.get(owner, 0) + 1
    finally:
        router.close()
    fleet_service = agg["service"]
    fleet_solved_total = int(fleet_service.get("solved", 0))
    _print("fleet/c", fleet_cold, fleet_cold_solved, 0)
    _print("fleet", fleet, fleet_solved_total - fleet_cold_solved,
           int(fleet_service.get("cache_hits", 0)))
    per_backend = [
        {"node": entry["node"],
         "forwarded": entry["forwarded"],
         "owned_keys": shares.get(entry["node"], 0),
         "solved": (entry["statsz"] or {}).get("service", {}).get("solved"),
         "cache_hits": (entry["statsz"] or {})
         .get("service", {}).get("cache_hits")}
        for entry in agg["backends"]]
    for entry in per_backend:
        print(f"    backend {entry['node']}: {entry['owned_keys']} keys, "
              f"{entry['forwarded']} requests, solved {entry['solved']}, "
              f"cache hits {entry['cache_hits']}")

    # Byte identity across every pass: cold and steady, router and
    # direct, must all serve the same bytes for the same request.
    reference = [r.to_json() if r is not None else None
                 for r in single_cold.responses]
    responses_match = all(
        body is not None and all(
            other.responses[i] is not None
            and other.responses[i].to_json() == body
            for other in (single, fleet_cold, fleet))
        for i, body in enumerate(reference))
    speedup = (round(fleet.req_per_sec / single.req_per_sec, 3)
               if single.req_per_sec else 0.0)
    clean = (single_cold.errors == single.errors
             == fleet_cold.errors == fleet.errors == 0)
    single_steady_solved = single_stats.solved - cold_solved
    fleet_steady_solved = fleet_solved_total - fleet_cold_solved

    report = {
        "benchmark": "fleet",
        "n_requests": args.requests,
        "unique_designs": args.unique,
        "n_backends": args.backends,
        "cache_entries_per_instance": args.cache_entries,
        "concurrency": args.concurrency,
        "requested_workers": args.workers,
        "cpu_count": available_cpus(),
        "max_batch": args.max_batch,
        "batch_window_ms": args.window_ms,
        "single_cold": single_cold.to_dict(),
        "single": single.to_dict(),
        "fleet_cold": fleet_cold.to_dict(),
        "fleet": fleet.to_dict(),
        "single_solved": single_stats.solved,
        "single_steady_solved": single_steady_solved,
        "single_cache_hits": single_stats.cache_hits,
        "fleet_solved": fleet_solved_total,
        "fleet_steady_solved": fleet_steady_solved,
        "fleet_cache_hits": int(fleet_service.get("cache_hits", 0)),
        "per_backend": per_backend,
        "router": agg["router"],
        "fleet_speedup": speedup,
        "min_speedup": args.min_speedup,
        "speedup_ok": speedup >= args.min_speedup,
        "responses_match": responses_match,
        "no_errors": clean,
        # Affinity: at steady state the fleet's partitioned caches absorb
        # the stream while the single instance keeps recomputing.
        "affinity_ok": fleet_steady_solved < single_steady_solved,
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_fleet.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  steady-state fleet speedup {speedup}x over one instance "
          f"(floor {args.min_speedup}x), steady solves "
          f"{fleet_steady_solved} vs single {single_steady_solved}, "
          f"responses match: {responses_match} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--unique", type=int, default=18)
    parser.add_argument("--backends", type=int, default=3)
    parser.add_argument("--cache-entries", type=int, default=9,
                        help="result-cache entries per instance; below "
                             "--unique so one instance thrashes while "
                             "each backend's ring share fits (the ring "
                             "layout is deterministic: stable node names "
                             "backend-0..N-1, fixed seed)")
    parser.add_argument("--concurrency", type=int, default=12)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--window-ms", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=12)
    parser.add_argument("--bmc-random-trials", type=int, default=48)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required fleet/single req/s ratio, same host "
                             "(0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["responses_match"]:
        print("  FATAL: fleet responses diverge from single-instance bodies")
        sys.exit(1)
    if not report["no_errors"]:
        print("  FATAL: load run recorded transport errors")
        sys.exit(2)
    if args.min_speedup > 0 and not report["speedup_ok"]:
        print("  FATAL: fleet speedup below floor")
        sys.exit(3)


if __name__ == "__main__":
    main()
