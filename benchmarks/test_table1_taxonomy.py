"""Table I — the bug taxonomy.

Regenerates the taxonomy table verbatim and validates that the injector
actually produces every row's bug class on a live corpus.
"""

import random

from repro.bugs.injector import BugInjector
from repro.bugs.taxonomy import TABLE1_ROWS
from repro.corpus.generator import CorpusGenerator
from repro.eval.reporting import render_table1


def test_table1_taxonomy(benchmark):
    def render():
        return render_table1()

    table = benchmark(render)
    print("\n" + table)
    assert len(TABLE1_ROWS) == 7


def test_table1_injector_covers_kinds(benchmark):
    """All three structural kinds and both conditionality classes appear in
    a modest injection run."""

    def inject():
        generator = CorpusGenerator(seed=1)
        injector = BugInjector(random.Random(1))
        kinds = set()
        conds = set()
        for _ in range(20):
            seed = generator.generate_one()
            for record in injector.inject_many(seed.source, 3, seed.name):
                kinds.add(record.kind.value)
                conds.add(record.conditionality.value)
        return kinds, conds

    kinds, conds = benchmark.pedantic(inject, rounds=1, iterations=1)
    print(f"\nkinds seen: {sorted(kinds)}; conditionality seen: {sorted(conds)}")
    assert kinds == {"Var", "Value", "Op"}
    assert conds == {"Cond", "Non_cond"}
