"""Fig. 5 — SFT vs AssertSolver across bug types and code lengths.

Shape target: DPO's pass@1 is at least on par with SFT in most buckets
(the paper: improvement in nearly all scenarios, slight pass@5 decreases).
"""

import math

from repro.eval.buckets import bucket_pass_at
from repro.eval.reporting import render_fig5


def test_fig5_sft_vs_dpo(benchmark, pipeline, results):
    sft = results["SFT Model"]
    solver = results["AssertSolver"]

    def render():
        return render_fig5(sft, solver)

    figure = benchmark(render)
    print("\n" + figure)

    sft_types = bucket_pass_at(sft, 1, by="bug_type")
    solver_types = bucket_pass_at(solver, 1, by="bug_type")
    wins = ties = losses = 0
    for name, sft_score in sft_types.items():
        solver_score = solver_types[name]
        if math.isnan(sft_score) or math.isnan(solver_score):
            continue
        if solver_score > sft_score + 1e-9:
            wins += 1
        elif solver_score < sft_score - 1e-9:
            losses += 1
        else:
            ties += 1
    print(f"\nDPO vs SFT pass@1 buckets: {wins} wins, {ties} ties, "
          f"{losses} losses")
    assert wins + ties >= losses
