#!/usr/bin/env python
"""Coverage-collection overhead benchmark: telemetry must be near-free.

Replays one deterministic corpus-sampled request stream (see
:mod:`repro.serve.loadgen`) through a live
:class:`repro.serve.http.AssertHttpServer` twice per repeat — coverage
collection off, then on — on an otherwise identical setup (fresh
server, result cache off, same seed):

- **coverage_off** — ``ServeConfig(coverage=False)``, the default: the
  simulators' ``cov`` hook stays ``None``, the floor;
- **coverage_on**  — toggle/block/vacuity counters collected on every
  snapshot of every validating check, reports merged into the
  response's ``coverage`` block and the server's ``/covz`` buffer.

Both sides take the best pass across ``--repeats`` (max throughput,
min p50), so scheduler noise on a busy host does not masquerade as
collection cost.  The gates:

- ``coverage_on_throughput >= --min-throughput x coverage_off``
  (default 0.90x, CI runs at 0.85x): collection may cost a sliver of a
  request, never more — p50s are also reported, informationally;
- byte-identity: every coverage-on response body, with its ``coverage``
  block removed, must equal the coverage-off body for the same request
  — coverage is a pure execution knob and must never fork what is
  solved;
- tier identity: one extra coverage-on pass under ``sim_mode="interp"``
  must produce coverage blocks byte-identical to the compiled tier's —
  the telemetry, like the traces it derives from, is tier-invariant;
- sanity: with coverage on, ``/covz`` retains reports and ``/metricsz``
  exposes nonzero ``repro_coverage_*`` totals.

Results land in ``BENCH_cov.json``.

Run:  PYTHONPATH=src python benchmarks/bench_cov.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engine import available_cpus
from repro.obs import metrics as obs_metrics
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    HttpConfig,
    ServeConfig,
    WorkloadSpec,
    build_workload,
    run_load,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _serve_config(args, coverage: bool, sim_mode: str) -> ServeConfig:
    return ServeConfig(
        n_workers=args.workers, backend="auto",
        max_queue=max(args.requests * 2, 64),
        max_batch=args.max_batch,
        batch_window_ms=args.window_ms,
        result_cache=False,
        coverage=coverage,
        sim_mode=sim_mode,
        seed=args.seed)


def _measure(args, requests, label: str, coverage: bool,
             sim_mode: str = "compiled"):
    """One pass: fresh server, coverage forced to ``coverage``."""
    config = _serve_config(args, coverage=coverage, sim_mode=sim_mode)
    with AssertHttpServer(AssertService(config), HttpConfig()) as server:
        client = AssertClient.for_server(server)
        report = run_load(client, requests,
                          concurrency=args.concurrency, label=label)
        covz = client.covz() if coverage else None
        metricsz = client.metricsz() if coverage else None
    print(f"  {label:<12} {report.seconds:7.2f}s  "
          f"{report.req_per_sec:7.1f} req/s  p50 {report.p50_ms:7.1f}ms  "
          f"p95 {report.p95_ms:7.1f}ms  p99 {report.p99_ms:7.1f}ms  "
          f"errors {report.errors}")
    return report, covz, metricsz


def _stripped_json(response) -> str:
    """The response body with its ``coverage`` block removed — what the
    coverage-off server must have produced for the same request."""
    saved, response.coverage = response.coverage, None
    try:
        return response.to_json()
    finally:
        response.coverage = saved


def _coverage_blocks(report) -> list:
    return [json.dumps(r.coverage, sort_keys=True) if r is not None else None
            for r in report.responses]


def run_bench(args) -> dict:
    spec = WorkloadSpec(n_requests=args.requests,
                        unique_designs=args.unique,
                        seed=args.seed,
                        bmc_depth=args.bmc_depth,
                        bmc_random_trials=args.bmc_random_trials)
    requests = build_workload(spec)
    print(f"bench_cov: {args.requests} requests over {args.unique} unique "
          f"designs, concurrency={args.concurrency}, "
          f"workers={args.workers}, repeats={args.repeats}, "
          f"cpus={available_cpus()}")

    off_reports, on_reports = [], []
    bodies_match = True
    covz_retained = 0
    coverage_toggles = 0.0
    for repeat in range(args.repeats):
        off, _, _ = _measure(args, requests, f"off[{repeat}]",
                             coverage=False)
        on, covz, metricsz = _measure(args, requests, f"on[{repeat}]",
                                      coverage=True)
        off_reports.append(off)
        on_reports.append(on)
        bodies_match = bodies_match and all(
            a is not None and b is not None
            and a.to_json() == _stripped_json(b)
            for a, b in zip(off.responses, on.responses))
        covz_retained = max(covz_retained, covz["retained"])
        try:
            parsed = obs_metrics.parse_prometheus_text(metricsz)
            coverage_toggles = max(
                coverage_toggles,
                parsed.value("repro_coverage_toggles_total") or 0.0)
        except ValueError:
            pass

    # One coverage-on pass per tier: the interpreter must report the
    # exact coverage the compiled tier reported for the same stream.
    print("  tier identity (coverage on, interp vs compiled):")
    interp, _, _ = _measure(args, requests, "interp", coverage=True,
                            sim_mode="interp")
    tiers_match = (_coverage_blocks(interp) == _coverage_blocks(on_reports[-1])
                   and all(block is not None
                           for block in _coverage_blocks(interp)))

    # Best-of-repeats on both sides: the ratio compares each mode's
    # least-disturbed pass instead of averaging scheduler noise in.
    off_p50 = min(r.p50_ms for r in off_reports)
    on_p50 = min(r.p50_ms for r in on_reports)
    overhead = round(on_p50 / off_p50, 3) if off_p50 else 0.0
    off_rps = max(r.req_per_sec for r in off_reports)
    on_rps = max(r.req_per_sec for r in on_reports)
    throughput_ratio = round(on_rps / off_rps, 3) if off_rps else 0.0
    clean = all(r.errors == 0
                for r in off_reports + on_reports + [interp])

    report = {
        "benchmark": "cov",
        "n_requests": args.requests,
        "unique_designs": args.unique,
        "concurrency": args.concurrency,
        "requested_workers": args.workers,
        "cpu_count": available_cpus(),
        "repeats": args.repeats,
        "max_batch": args.max_batch,
        "batch_window_ms": args.window_ms,
        "coverage_off": [r.to_dict() for r in off_reports],
        "coverage_on": [r.to_dict() for r in on_reports],
        "coverage_off_p50_ms": off_p50,
        "coverage_on_p50_ms": on_p50,
        "coverage_p50_overhead": overhead,
        "coverage_off_req_per_sec": off_rps,
        "coverage_on_req_per_sec": on_rps,
        "coverage_throughput_ratio": throughput_ratio,
        "min_throughput": args.min_throughput,
        "throughput_ok": bool(throughput_ratio
                              and throughput_ratio >= args.min_throughput),
        "responses_match": bodies_match,
        "tiers_match": tiers_match,
        "no_errors": clean,
        "covz_retained": covz_retained,
        "covz_populated": covz_retained > 0,
        "coverage_toggles_total": coverage_toggles,
        "metricsz_coverage_ok": coverage_toggles > 0,
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_cov.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  coverage throughput {throughput_ratio}x "
          f"(floor {args.min_throughput}x; p50 overhead {overhead}x), "
          f"bodies match: {bodies_match}, tiers match: {tiers_match}, "
          f"covz retained: {covz_retained}, "
          f"coverage toggles: {coverage_toggles:.0f} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=10)
    parser.add_argument("--bmc-random-trials", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--min-throughput", type=float, default=0.90,
                        help="required coverage-on/off throughput ratio, "
                             "same host (0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["responses_match"]:
        print("  FATAL: response bodies diverge once coverage is stripped")
        sys.exit(1)
    if not report["no_errors"]:
        print("  FATAL: load run recorded transport errors")
        sys.exit(2)
    if args.min_throughput > 0 and not report["throughput_ok"]:
        print("  FATAL: coverage-on throughput below floor")
        sys.exit(3)
    if (not report["tiers_match"] or not report["covz_populated"]
            or not report["metricsz_coverage_ok"]):
        print("  FATAL: tier coverage mismatch, /covz empty, or "
              "repro_coverage_* missing from /metricsz")
        sys.exit(4)


if __name__ == "__main__":
    main()
