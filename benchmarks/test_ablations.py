"""Ablation benches beyond the paper's tables (DESIGN.md extensions):

- PT-off: the SFT ranker without the pretrained LM loses pass@1 — the
  quantitative version of the paper's claim that continual pretraining
  boosts downstream performance.
- DPO beta sweep: the preference-strength knob of Section III-C.
"""

from repro.eval.runner import evaluate_model
from repro.model.assertsolver import AssertSolver


def test_ablation_pt_off(benchmark, pipeline):
    bundle = pipeline.run_datagen()
    cases = pipeline.build_benchmark().machine

    def train_without_pt():
        model = AssertSolver(seed=3, name="SFT-noPT")
        # no pretrain() call: the LM features degrade to constants
        model.train_sft(bundle.sva_bug_train, bundle.verilog_bug, epochs=8)
        return model

    model = benchmark.pedantic(train_without_pt, rounds=1, iterations=1)
    no_pt = evaluate_model(model, cases, n=10)
    with_pt = pipeline.evaluate()["SFT Model"]
    print(f"\nPT ablation (machine pass@1): with PT = "
          f"{with_pt.pass_at_origin(1, 'machine'):.2%}, "
          f"without PT = {no_pt.pass_at(1):.2%}")
    assert no_pt.pass_at(1) <= with_pt.pass_at_origin(1, "machine") + 0.05


def test_ablation_dpo_beta_sweep(benchmark, pipeline):
    pipeline.run_datagen()
    cases = pipeline.build_benchmark().machine
    sft = pipeline.sft_model

    def sweep():
        scores = {}
        for beta in (0.05, 0.1, 0.5):
            model = sft.clone_checkpoint(f"dpo-beta{beta}")
            model._train_examples = sft._train_examples
            model.train_dpo(beta=beta)
            result = evaluate_model(model, cases, n=10)
            scores[beta] = result.pass_at(1)
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nDPO beta sweep (machine pass@1, paper uses beta=0.1):")
    for beta, score in scores.items():
        print(f"  beta={beta}: {score:.2%}")
    baseline = pipeline.evaluate()["SFT Model"].pass_at_origin(1, "machine")
    assert max(scores.values()) >= baseline - 0.1
