"""Section II statistics — dataset sizes, CoT validity, rejection counts.

The paper: 22,646 PT entries / 36,650 Verilog-Bug / 7,842 SVA-Bug from
108,971 corpus samples, with 74.55% of CoTs validating.  Ours regenerates
the same pipeline at bench scale; the asserted properties are the ratios
and rates, not the absolute counts.
"""

from repro.datagen.pipeline import DatagenConfig, run_pipeline


def test_pipeline_stats(benchmark, pipeline):
    bundle = pipeline.run_datagen()
    print("\n" + bundle.summary())
    stats = {k: v for k, v in bundle.stats.items()
             if not str(k).endswith("distribution")}
    for key, value in stats.items():
        print(f"  {key}: {value}")

    def cot_rate():
        return bundle.stats["cot_validity_rate"]

    rate = benchmark(cot_rate)
    # Calibrated to the paper's 74.55%; sampling noise at bench scale.
    assert 0.5 <= rate <= 0.95

    # Verilog-Bug outnumbers SVA-Bug (paper: 36,650 vs 7,842) because most
    # random bugs do not fire the available assertions.
    assert len(bundle.verilog_bug) > len(bundle.sva_bug_train) * 0.8

    # Stage 2 rejected at least one hallucinated SVA.
    assert bundle.stats["stage2_rejected_svas"] > 0


def test_pipeline_throughput(benchmark):
    """Datagen throughput at small scale (the harness's one true
    pytest-benchmark timing measurement of the heavy path)."""

    def run_small():
        return run_pipeline(DatagenConfig(n_designs=6, bugs_per_design=2,
                                          seed=77, bmc_depth=6,
                                          bmc_random_trials=8))

    bundle = benchmark.pedantic(run_small, rounds=1, iterations=1)
    assert bundle.verilog_pt
