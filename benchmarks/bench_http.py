#!/usr/bin/env python
"""HTTP-transport benchmark: what the network edge costs, same host.

Replays one deterministic corpus-sampled request stream (see
:mod:`repro.serve.loadgen`) against the serving layer twice — once
through the in-process API, once through a live
:class:`repro.serve.http.AssertHttpServer` on localhost — and once more
through the transport with the result cache warm:

- **inproc**     — concurrent clients on ``AssertService.submit`` (the
  PR-3 path): the floor any transport is measured against;
- **http**       — the identical stream through ``POST /v1/solve`` on a
  freshly started localhost server (same ServeConfig, cache off);
- **http_cold** / **http_warm** — the stream through the transport with
  the result cache on, cold then 100%-repeat warm.

Both gates are *same-host relative* (each side measured in this very
run, so the ratios are portable across hosts, like every other bench):

- ``http_p50 <= --max-overhead x inproc_p50`` (default 2x): the
  transport may tax a request, not dominate it;
- ``http_warm >= --min-cache-speedup x http_cold`` req/s (default 5x):
  the cache win survives the network edge.

Plus byte-determinism: every HTTP response body must re-serialize to
exactly the in-process response for the same request content hash.
Results land in ``BENCH_http.json``.

Run:  PYTHONPATH=src python benchmarks/bench_http.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engine import available_cpus
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    HttpConfig,
    ServeConfig,
    WorkloadSpec,
    build_workload,
    run_load,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _serve_config(args, result_cache: bool) -> ServeConfig:
    return ServeConfig(
        n_workers=args.workers, backend="auto",
        max_queue=max(args.requests * 2, 64),
        max_batch=args.max_batch,
        batch_window_ms=args.window_ms,
        result_cache=result_cache,
        seed=args.seed)


def _print(label: str, report, stats) -> None:
    print(f"  {label:<10} {report.seconds:7.2f}s  "
          f"{report.req_per_sec:7.1f} req/s  p50 {report.p50_ms:7.1f}ms  "
          f"p95 {report.p95_ms:7.1f}ms  p99 {report.p99_ms:7.1f}ms  "
          f"solved {stats.solved}  "
          f"cache hits {stats.cache_hits}  errors {report.errors}")


def run_bench(args) -> dict:
    spec = WorkloadSpec(n_requests=args.requests,
                        unique_designs=args.unique,
                        seed=args.seed,
                        bmc_depth=args.bmc_depth,
                        bmc_random_trials=args.bmc_random_trials)
    requests = build_workload(spec)
    print(f"bench_http: {args.requests} requests over {args.unique} unique "
          f"designs, concurrency={args.concurrency}, "
          f"workers={args.workers}, cpus={available_cpus()}")

    # -- in-process floor (cache off) ------------------------------------
    service = AssertService(_serve_config(args, result_cache=False))
    try:
        inproc = run_load(service, requests, concurrency=args.concurrency,
                          label="inproc")
        inproc_stats = service.stats()
    finally:
        service.close()
    _print("inproc", inproc, inproc_stats)

    # -- same stream through the live HTTP server (cache off) ------------
    with AssertHttpServer(
            AssertService(_serve_config(args, result_cache=False)),
            HttpConfig()) as server:
        client = AssertClient.for_server(server)
        http = run_load(client, requests, concurrency=args.concurrency,
                        label="http")
        http_stats = server.service.stats()
    _print("http", http, http_stats)

    # -- cache win through the transport ---------------------------------
    with AssertHttpServer(
            AssertService(_serve_config(args, result_cache=True)),
            HttpConfig()) as server:
        client = AssertClient.for_server(server)
        http_cold = run_load(client, requests, concurrency=args.concurrency,
                             label="http_cold")
        cold_stats = server.service.stats()
        _print("http_cold", http_cold, cold_stats)
        http_warm = run_load(client, requests, concurrency=args.concurrency,
                             label="http_warm")
        warm_stats = server.service.stats()
    _print("http_warm", http_warm, warm_stats)

    responses_match = all(
        a is not None and b is not None
        and a.to_json() == b.to_json()
        for a, b in zip(inproc.responses, http.responses))
    overhead = (round(http.p50_ms / inproc.p50_ms, 3)
                if inproc.p50_ms else 0.0)
    cache_speedup = (round(http_warm.req_per_sec / http_cold.req_per_sec, 3)
                     if http_cold.req_per_sec else 0.0)
    clean = (inproc.errors == http.errors == http_cold.errors
             == http_warm.errors == 0)

    report = {
        "benchmark": "http",
        "n_requests": args.requests,
        "unique_designs": args.unique,
        "concurrency": args.concurrency,
        "requested_workers": args.workers,
        "cpu_count": available_cpus(),
        "max_batch": args.max_batch,
        "batch_window_ms": args.window_ms,
        "inproc": inproc.to_dict(),
        "http": http.to_dict(),
        "http_cold": http_cold.to_dict(),
        "http_warm": http_warm.to_dict(),
        "http_p50_overhead": overhead,
        "max_overhead": args.max_overhead,
        "overhead_ok": bool(overhead and overhead <= args.max_overhead),
        "cache_speedup": cache_speedup,
        "min_cache_speedup": args.min_cache_speedup,
        "cache_win": cache_speedup >= args.min_cache_speedup,
        "responses_match": responses_match,
        "no_errors": clean,
        "http_stats": http_stats.to_dict(),
        "http_warm_stats": warm_stats.to_dict(),
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_http.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  http p50 overhead {overhead}x "
          f"(ceiling {args.max_overhead}x), "
          f"cache speedup through transport {cache_speedup}x "
          f"(floor {args.min_cache_speedup}x), "
          f"responses match: {responses_match} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=10)
    parser.add_argument("--bmc-random-trials", type=int, default=24)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--max-overhead", type=float, default=2.0,
                        help="allowed http/in-process p50 ratio, same host "
                             "(0 disables the gate)")
    parser.add_argument("--min-cache-speedup", type=float, default=5.0,
                        help="required warm/cold req/s ratio through the "
                             "transport (0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["responses_match"]:
        print("  FATAL: HTTP responses diverge from in-process responses")
        sys.exit(1)
    if not report["no_errors"]:
        print("  FATAL: load run recorded transport errors")
        sys.exit(2)
    if args.max_overhead > 0 and not report["overhead_ok"]:
        print("  FATAL: HTTP p50 overhead above ceiling")
        sys.exit(3)
    if args.min_cache_speedup > 0 and not report["cache_win"]:
        print("  FATAL: cache speedup through the transport below floor")
        sys.exit(4)


if __name__ == "__main__":
    main()
