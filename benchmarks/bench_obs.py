#!/usr/bin/env python
"""Observability overhead benchmark: tracing must be near-free.

Replays one deterministic corpus-sampled request stream (see
:mod:`repro.serve.loadgen`) through a live
:class:`repro.serve.http.AssertHttpServer` twice per repeat — tracing
disabled, then tracing enabled — on an otherwise identical setup
(fresh server, result cache off, same seed):

- **traced_off** — ``repro.obs.trace`` disabled: every span call is one
  flag check, the floor;
- **traced_on**  — tracing enabled: server/inflight/queue/batch/solve
  spans recorded into the bounded trace buffer on every request.

Both sides take the best (minimum) p50 across ``--repeats`` passes, so
scheduler noise on a busy host does not masquerade as span cost.  The
gates:

- ``traced_on_p50 <= --max-overhead x traced_off_p50`` (default 1.10x):
  instrumentation may cost a sliver of a request, never a tenth more
  than that;
- byte-identity: every response body with tracing on must equal the
  body with tracing off for the same request — tracing is a pure
  execution concern and must never fork response bytes;
- sanity: with tracing on, ``/tracez`` retained traces and
  ``/metricsz`` parses as Prometheus text.

Results land in ``BENCH_obs.json``.

Run:  PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engine import available_cpus
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    HttpConfig,
    ServeConfig,
    WorkloadSpec,
    build_workload,
    run_load,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _serve_config(args) -> ServeConfig:
    return ServeConfig(
        n_workers=args.workers, backend="auto",
        max_queue=max(args.requests * 2, 64),
        max_batch=args.max_batch,
        batch_window_ms=args.window_ms,
        result_cache=False,
        seed=args.seed)


def _measure(args, requests, label: str, traced: bool):
    """One pass: fresh server, tracing forced to ``traced``."""
    obs_trace.configure(enabled=traced)
    obs_trace.reset()
    try:
        with AssertHttpServer(AssertService(_serve_config(args)),
                              HttpConfig()) as server:
            client = AssertClient.for_server(server)
            report = run_load(client, requests,
                              concurrency=args.concurrency, label=label)
            tracez = client.tracez() if traced else None
            metricsz = client.metricsz() if traced else None
    finally:
        obs_trace.configure(enabled=True)
        obs_trace.reset()
    print(f"  {label:<12} {report.seconds:7.2f}s  "
          f"{report.req_per_sec:7.1f} req/s  p50 {report.p50_ms:7.1f}ms  "
          f"p95 {report.p95_ms:7.1f}ms  p99 {report.p99_ms:7.1f}ms  "
          f"errors {report.errors}")
    return report, tracez, metricsz


def run_bench(args) -> dict:
    spec = WorkloadSpec(n_requests=args.requests,
                        unique_designs=args.unique,
                        seed=args.seed,
                        bmc_depth=args.bmc_depth,
                        bmc_random_trials=args.bmc_random_trials)
    requests = build_workload(spec)
    print(f"bench_obs: {args.requests} requests over {args.unique} unique "
          f"designs, concurrency={args.concurrency}, "
          f"workers={args.workers}, repeats={args.repeats}, "
          f"cpus={available_cpus()}")

    off_reports, on_reports = [], []
    bodies_match = True
    traces_retained = 0
    metrics_parse_ok = False
    for repeat in range(args.repeats):
        off, _, _ = _measure(args, requests, f"off[{repeat}]", traced=False)
        on, tracez, metricsz = _measure(args, requests, f"on[{repeat}]",
                                        traced=True)
        off_reports.append(off)
        on_reports.append(on)
        bodies_match = bodies_match and all(
            a is not None and b is not None and a.to_json() == b.to_json()
            for a, b in zip(off.responses, on.responses))
        traces_retained = max(traces_retained,
                              len(tracez["recent"]) + len(tracez["slowest"]))
        try:
            parsed = obs_metrics.parse_prometheus_text(metricsz)
            metrics_parse_ok = parsed.value(
                "repro_http_requests_total",
                handler="solve", code="200") is not None
        except ValueError:
            metrics_parse_ok = False

    # Best-of-repeats on both sides: the ratio compares each mode's
    # least-disturbed pass instead of averaging scheduler noise in.
    off_p50 = min(r.p50_ms for r in off_reports)
    on_p50 = min(r.p50_ms for r in on_reports)
    overhead = round(on_p50 / off_p50, 3) if off_p50 else 0.0
    clean = all(r.errors == 0 for r in off_reports + on_reports)

    report = {
        "benchmark": "obs",
        "n_requests": args.requests,
        "unique_designs": args.unique,
        "concurrency": args.concurrency,
        "requested_workers": args.workers,
        "cpu_count": available_cpus(),
        "repeats": args.repeats,
        "max_batch": args.max_batch,
        "batch_window_ms": args.window_ms,
        "traced_off": [r.to_dict() for r in off_reports],
        "traced_on": [r.to_dict() for r in on_reports],
        "traced_off_p50_ms": off_p50,
        "traced_on_p50_ms": on_p50,
        "tracing_p50_overhead": overhead,
        "max_overhead": args.max_overhead,
        "overhead_ok": bool(overhead and overhead <= args.max_overhead),
        "responses_match": bodies_match,
        "no_errors": clean,
        "traces_retained": traces_retained,
        "tracez_populated": traces_retained > 0,
        "metricsz_parse_ok": metrics_parse_ok,
        "unix_time": int(time.time()),
    }
    output = args.output or REPO_ROOT / "BENCH_obs.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"  tracing p50 overhead {overhead}x "
          f"(ceiling {args.max_overhead}x), "
          f"bodies match: {bodies_match}, "
          f"traces retained: {traces_retained}, "
          f"metricsz parses: {metrics_parse_ok} -> {output}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--bmc-depth", type=int, default=10)
    parser.add_argument("--bmc-random-trials", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--max-overhead", type=float, default=1.10,
                        help="allowed traced/untraced p50 ratio, same host "
                             "(0 disables the gate)")
    args = parser.parse_args()
    report = run_bench(args)
    if not report["responses_match"]:
        print("  FATAL: response bodies diverge with tracing enabled")
        sys.exit(1)
    if not report["no_errors"]:
        print("  FATAL: load run recorded transport errors")
        sys.exit(2)
    if args.max_overhead > 0 and not report["overhead_ok"]:
        print("  FATAL: tracing p50 overhead above ceiling")
        sys.exit(3)
    if not report["tracez_populated"] or not report["metricsz_parse_ok"]:
        print("  FATAL: /tracez empty or /metricsz unparseable with "
              "tracing on")
        sys.exit(4)


if __name__ == "__main__":
    main()
