"""Table IV — AssertSolver vs commercial/open baselines on SVA-Eval,
plus the RQ3 machine-vs-human comparison.

Shape targets: AssertSolver wins pass@1 on the machine benchmark; the
published baseline ordering holds; every baseline does worse on human
cases than machine cases (the paper's ~19% average relative drop).
"""

from repro.eval.reporting import render_table4


def test_table4_comparison(benchmark, pipeline, results):
    table = render_table4(pipeline.table4_results())
    print("\n" + table)

    def summarise():
        return {name: result.pass_at(1)
                for name, result in pipeline.table4_results().items()}

    scores = benchmark(summarise)

    # Published ordering of the baselines.
    assert scores["o1-preview"] > scores["GPT-4"]
    assert scores["Claude-3.5"] > scores["GPT-4"]
    assert scores["GPT-4"] > scores["Llama-3.1-8b"]
    assert scores["Llama-3.1-8b"] > scores["CodeLlama-7b"]
    assert scores["Llama-3.1-8b"] > scores["Deepseek-coder-6.7b"]

    # AssertSolver contends for the lead on the machine benchmark (its
    # training domain), as in the paper's SVA-Eval-Machine column.  At the
    # default bench scale the machine split is only ~10 cases, so the
    # assertion tolerates sampling noise rather than demanding an outright
    # win on every seed; run REPRO_BENCH_DESIGNS=150 for the paper-shaped
    # margin.
    machine_scores = {name: result.pass_at_origin(1, "machine")
                      for name, result in pipeline.table4_results().items()}
    best = max(machine_scores.values())
    assert machine_scores["AssertSolver"] >= best - 0.25
    assert machine_scores["AssertSolver"] > machine_scores["Llama-3.1-8b"]


def test_table4_rq3_human_drop(benchmark, pipeline, results):
    """RQ3: every baseline performs worse on human-crafted cases."""

    def drops():
        out = {}
        for name in ("Claude-3.5", "GPT-4", "o1-preview", "Llama-3.1-8b"):
            result = results[name]
            machine = result.pass_at_origin(1, "machine")
            human = result.pass_at_origin(1, "human")
            out[name] = (machine, human)
        return out

    values = benchmark(drops)
    print("\nRQ3 relative human drop (paper average: ~19% on pass@1):")
    for name, (machine, human) in values.items():
        rel = (machine - human) / machine if machine else 0.0
        print(f"  {name:<14} machine={machine:.2%} human={human:.2%} "
              f"drop={rel:+.1%}")
    # Average drop must be positive (human harder), as the paper reports.
    rels = [(m - h) / m for m, h in values.values() if m > 0]
    assert sum(rels) / len(rels) > 0.0
