"""Fig. 4 — AssertSolver vs closed-source LLMs per bug type (a) and code
length (b).

Shape target: on the machine benchmark AssertSolver leads the closed-source
models in most buckets, and short code is easier than long code for the
trained models.
"""

import math

from repro.eval.buckets import bucket_pass_at
from repro.eval.reporting import render_fig4


def test_fig4_buckets(benchmark, pipeline, results):
    table_models = {name: results[name]
                    for name in ("Claude-3.5", "GPT-4", "o1-preview",
                                 "AssertSolver")}

    def render():
        return render_fig4(table_models)

    figure = benchmark(render)
    print("\n" + figure)

    solver_types = bucket_pass_at(results["AssertSolver"], 1, by="bug_type")
    defined = {k: v for k, v in solver_types.items() if not math.isnan(v)}
    assert defined, "no bug-type buckets populated"


def test_fig4_length_trend(benchmark, pipeline, results):
    """Short machine cases are the easy end of the length axis."""
    solver = results["AssertSolver"]

    def shortest_bucket():
        machine = [o for o in solver.outcomes if o.case.origin == "machine"]
        short = [o for o in machine
                 if o.case.entry.length_bin() == (0, 50)]
        if not short:
            return float("nan")
        return solver.pass_at(1, short)

    value = benchmark(shortest_bucket)
    print(f"\nAssertSolver pass@1 on (0, 50] machine cases: {value:.2%} "
          f"(paper: >90%)")
    assert value != value or value >= 0.0
