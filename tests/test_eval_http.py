"""POST /v1/eval: wire bodies, status mapping, routing affinity.

The eval endpoint's transport contract mirrors ``/v1/solve``'s:

- a 200 body is byte-identical to the in-process
  ``EvalReport.to_json()`` for the same request — the wire must not
  fork determinism;
- every non-``ok`` service status maps to its HTTP code
  (404 unknown model, 504 timeout, 409 cancelled) through the one
  shared error envelope ``{"code", "detail", "status"}``;
- the router keys eval requests on their content, so identical
  requests always land on the same backend and re-use its memo.
"""

from __future__ import annotations

import http.client
import json
from contextlib import contextmanager

import pytest

from repro.baselines.engine import make_baseline
from repro.eval import EvalConfig, run_eval
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    EvalFailed,
    EvalRequest,
    EvalResponse,
    FleetRouter,
    HttpConfig,
    RouterConfig,
    ServeConfig,
    eval_request_from_json,
    eval_request_to_json,
    eval_response_wire,
)
from repro.serve.codecs import EVAL_STATUS_HTTP_CODES, error_body
from repro.store import MemoryStore, StoreConfig

MODEL_NAME = "GPT-4"
CONFIG = EvalConfig(n_samples=4, seed=11)


@contextmanager
def eval_server(**serve_overrides):
    """A started server + client over a service with one registered
    model and a memory-backed artifact store."""
    settings = dict(store=StoreConfig())
    settings.update(serve_overrides)
    service = AssertService(ServeConfig(**settings))
    service.register_model(MODEL_NAME, make_baseline(MODEL_NAME, seed=0))
    server = AssertHttpServer(service, HttpConfig(port=0))
    server.start()
    try:
        yield server, AssertClient.for_server(server)
    finally:
        server.close()


def raw_post(host, port, path, body):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("POST", path, body,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def machine_cases(small_bundle):
    return small_bundle.sva_eval_machine


class TestEvalWire:
    def test_200_body_is_in_process_bytes(self, machine_cases):
        reference = run_eval(make_baseline(MODEL_NAME, seed=0),
                             machine_cases, config=CONFIG,
                             store=MemoryStore())
        with eval_server() as (server, _):
            request = EvalRequest(MODEL_NAME, machine_cases, config=CONFIG)
            status, body = raw_post(*server.address, "/v1/eval",
                                    eval_request_to_json(request)
                                    .encode("utf-8"))
        assert status == 200
        assert body == reference.to_json().encode("utf-8")

    def test_client_report_round_trips_wire_bytes(self, machine_cases):
        with eval_server() as (_, client):
            report = client.eval(
                EvalRequest(MODEL_NAME, machine_cases, config=CONFIG))
            again = client.eval(
                EvalRequest(MODEL_NAME, machine_cases, config=CONFIG))
        assert again.to_json() == report.to_json()
        assert report.model_name == MODEL_NAME

    def test_repeat_request_hits_backend_memo(self, machine_cases):
        with eval_server() as (server, client):
            request = EvalRequest(MODEL_NAME, machine_cases, config=CONFIG)
            client.eval(request)
            client.eval(
                EvalRequest(MODEL_NAME, machine_cases, config=CONFIG))
            stats = server.service.stats().to_dict()
        assert stats["evals"] == 2
        assert stats["eval_memo_hits"] == len(machine_cases)

    def test_unknown_model_maps_to_404(self, machine_cases):
        with eval_server() as (_, client):
            with pytest.raises(EvalFailed) as excinfo:
                client.eval(EvalRequest("GPT-17", machine_cases,
                                        config=CONFIG))
        assert excinfo.value.code == 404
        assert excinfo.value.status == "unknown_model"
        assert "GPT-17" in excinfo.value.detail

    def test_unknown_model_envelope_shape(self, machine_cases):
        with eval_server() as (server, _):
            request = EvalRequest("GPT-17", machine_cases, config=CONFIG)
            status, body = raw_post(*server.address, "/v1/eval",
                                    eval_request_to_json(request)
                                    .encode("utf-8"))
        assert status == 404
        payload = json.loads(body)
        assert sorted(payload) == ["code", "detail", "status"]
        assert payload["status"] == "unknown_model"
        assert payload["code"] == 404

    @pytest.mark.parametrize("body", [
        b"not json",
        b'{"bogus": 1}',
        b'{"model": "GPT-4", "cases": []}',
        b'{"model": "", "cases": [], "config": {}}',
        b'{"model": "GPT-4", "cases": [], "config": {"n_samples": 0}}',
    ])
    def test_malformed_request_maps_to_400(self, body):
        with eval_server() as (server, _):
            status, data = raw_post(*server.address, "/v1/eval", body)
        assert status == 400
        payload = json.loads(data)
        assert sorted(payload) == ["code", "detail", "status"]
        assert payload["status"] == "error"

    def test_request_codec_round_trip(self, machine_cases):
        request = EvalRequest(MODEL_NAME, machine_cases, config=CONFIG,
                              request_id="req-1")
        restored = eval_request_from_json(eval_request_to_json(request))
        assert restored.model == request.model
        assert restored.request_id == "req-1"
        assert restored.config == request.config
        assert restored.cache_key() == request.cache_key()


class TestEvalResponseWire:
    def test_ok_maps_to_report_bytes(self, machine_cases):
        report = run_eval(make_baseline(MODEL_NAME, seed=0),
                          machine_cases, config=CONFIG)
        code, body = eval_response_wire(
            EvalResponse("ok", "key", report=report))
        assert code == 200
        assert body == report.to_json().encode("utf-8")

    @pytest.mark.parametrize("status", ["unknown_model", "timeout",
                                        "cancelled"])
    def test_failures_carry_status_tag(self, status):
        code, body = eval_response_wire(
            EvalResponse(status, "key", error="boom"))
        assert code == EVAL_STATUS_HTTP_CODES[status]
        assert body == error_body(code, "boom", status=status)
        payload = json.loads(body)
        assert payload["status"] == status
        assert payload["detail"] == "boom"


class TestRouterAffinity:
    def test_identical_eval_requests_stick_to_one_backend(self,
                                                          machine_cases):
        backends = []
        for _ in range(3):
            service = AssertService(ServeConfig(store=StoreConfig()))
            service.register_model(MODEL_NAME,
                                   make_baseline(MODEL_NAME, seed=0))
            backends.append(AssertHttpServer(service, HttpConfig(port=0)))
        router = FleetRouter(
            backends, RouterConfig(port=0), manage_backends=True,
            node_names=[f"backend-{i}" for i in range(3)])
        router.start()
        try:
            client = AssertClient(port=router.port)
            request_json = eval_request_to_json(
                EvalRequest(MODEL_NAME, machine_cases, config=CONFIG))
            bodies = set()
            for _ in range(3):
                report = client.eval(
                    EvalRequest(MODEL_NAME, machine_cases, config=CONFIG))
                bodies.add(report.to_json())
            assert len(bodies) == 1
            counts = [b.service.stats().to_dict()["evals"]
                      for b in backends]
            assert sorted(counts) == [0, 0, 3]
            hits = sum(b.service.stats().to_dict()["eval_memo_hits"]
                       for b in backends)
            assert hits == 2 * len(machine_cases)
            # And the routed bytes match a direct hit on that backend.
            owner = backends[counts.index(3)]
            direct_status, direct_body = raw_post(
                *owner.address, "/v1/eval", request_json.encode("utf-8"))
            routed_status, routed_body = raw_post(
                "127.0.0.1", router.port, "/v1/eval",
                request_json.encode("utf-8"))
            assert direct_status == routed_status == 200
            assert direct_body == routed_body
            assert routed_body.decode("utf-8") == bodies.pop()
        finally:
            router.close()

    def test_router_maps_unknown_model_envelope(self, machine_cases):
        service = AssertService(ServeConfig(store=StoreConfig()))
        router = FleetRouter(
            [AssertHttpServer(service, HttpConfig(port=0))],
            RouterConfig(port=0), manage_backends=True,
            node_names=["backend-0"])
        router.start()
        try:
            client = AssertClient(port=router.port)
            with pytest.raises(EvalFailed) as excinfo:
                client.eval(EvalRequest("GPT-17", machine_cases,
                                        config=CONFIG))
        finally:
            router.close()
        assert excinfo.value.code == 404
        assert excinfo.value.status == "unknown_model"
