"""SVA monitor + BMC tests: verdicts, temporal functions, counterexamples."""

import pytest

from repro.sim.simulator import Simulator
from repro.sim.stimulus import Stimulus
from repro.sva.bmc import BmcConfig, bounded_check, holds_within_bound
from repro.sva.insert import SvaInsertionError, compile_with_sva, insert_sva_text
from repro.sva.monitor import check_assertions
from repro.verilog.compile import compile_source


def check(source, vectors, reset_cycles=2):
    result = compile_source(source)
    assert result.ok, result.failure_summary()
    sim = Simulator(result.design)
    trace = sim.run(Stimulus(vectors, reset_cycles))
    return check_assertions(result.design, trace, reset_cycles)


BASE = """
module m (input clk, input rst_n, input a, output reg b);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) b <= 1'b0;
    else b <= a;
  end
  property follows;
    @(posedge clk) disable iff (!rst_n) a |-> ##1 b;
  endproperty
  follows_assertion: assert property (follows) else $error("b must follow a");
endmodule
"""


class TestMonitorBasics:
    def test_holding_property_reports_nothing(self):
        assert check(BASE, [{"a": 1}] * 6) == []

    def test_violated_property_reports_failure(self):
        buggy = BASE.replace("b <= a;", "b <= !a;")
        failures = check(buggy, [{"a": 1}] * 6)
        assert failures
        assert failures[0].label == "follows_assertion"
        assert "b must follow a" in failures[0].log_line()

    def test_vacuous_antecedent_passes(self):
        assert check(BASE, [{"a": 0}] * 6) == []

    def test_failure_log_format(self):
        buggy = BASE.replace("b <= a;", "b <= !a;")
        failures = check(buggy, [{"a": 1}] * 6)
        line = failures[0].log_line()
        assert line.startswith("failed assertion m.follows_assertion at cycle")

    def test_disable_iff_masks_reset_period(self):
        # During the reset preamble rst_n is low: no failures there even
        # though b is held at 0 while a is forced 0 -> vacuous anyway;
        # the skip_cycles logic is covered by checking cycle indices.
        buggy = BASE.replace("b <= a;", "b <= !a;")
        failures = check(buggy, [{"a": 1}] * 6)
        assert all(f.start_cycle >= 3 for f in failures)

    def test_end_of_trace_obligation_undetermined(self):
        # A failing consequent one past the end must not be reported.
        failures = check(BASE, [{"a": 1}])
        assert failures == []


class TestTemporalFunctions:
    PAST = """
module m (input clk, input rst_n, input [3:0] d, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= d;
  end
  property captures;
    @(posedge clk) disable iff (!rst_n) q == $past(d);
  endproperty
  captures_assertion: assert property (captures) else $error("q lags d");
endmodule
"""

    def test_past_holds_on_register(self):
        vectors = [{"d": v} for v in (1, 2, 3, 4, 5)]
        assert check(self.PAST, vectors) == []

    def test_past_detects_broken_register(self):
        buggy = self.PAST.replace("q <= d;", "q <= d + 4'd1;")
        vectors = [{"d": v} for v in (1, 2, 3, 4, 5)]
        assert check(buggy, vectors)

    ROSE = """
module m (input clk, input rst_n, input s, output reg seen);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) seen <= 1'b0;
    else seen <= s;
  end
  property rise_flags;
    @(posedge clk) disable iff (!rst_n) $rose(s) |-> ##1 seen;
  endproperty
  rise_assertion: assert property (rise_flags) else $error("rise missed");
endmodule
"""

    def test_rose(self):
        assert check(self.ROSE, [{"s": 0}, {"s": 1}, {"s": 1}, {"s": 0}]) == []
        buggy = self.ROSE.replace("seen <= s;", "seen <= 1'b0;")
        assert check(buggy, [{"s": 0}, {"s": 1}, {"s": 1}, {"s": 0}])

    def test_stable(self):
        source = """
module m (input clk, input rst_n, input s, output reg mirror);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) mirror <= 1'b0;
    else mirror <= mirror;
  end
  property held;
    @(posedge clk) disable iff (!rst_n) $stable(mirror);
  endproperty
  held_assertion: assert property (held) else $error("mirror moved");
endmodule
"""
        assert check(source, [{"s": 0}] * 5) == []


class TestDelayRanges:
    RANGED = """
module m (input clk, input rst_n, input go, output reg [1:0] cnt, output reg done);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (go || cnt != 2'd0) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) done <= 1'b0;
    else done <= cnt == 2'd3;
  end
  property eventually_done;
    @(posedge clk) disable iff (!rst_n) go && cnt == 2'd0 |-> ##[1:6] done;
  endproperty
  eventually_assertion: assert property (eventually_done) else $error("no done");
endmodule
"""

    # Checking starts one cycle after reset release, so the trigger is
    # driven at the third post-reset vector.
    VECTORS = [{"go": 0}, {"go": 0}, {"go": 1}] + [{"go": 0}] * 8

    def test_window_match_passes(self):
        assert check(self.RANGED, self.VECTORS) == []

    def test_window_miss_fails(self):
        buggy = self.RANGED.replace("##[1:6]", "##[1:2]")
        assert check(buggy, self.VECTORS)


class TestBmc:
    def test_golden_accu_passes_bound(self, accu_source):
        result = compile_source(accu_source)
        assert holds_within_bound(result.design,
                                  BmcConfig(depth=10, random_trials=24))

    def test_buggy_accu_fails(self, accu_buggy_source):
        result = compile_source(accu_buggy_source)
        outcome = bounded_check(result.design,
                                BmcConfig(depth=10, random_trials=24))
        assert outcome.failed
        assert outcome.trace is not None
        assert outcome.stimulus is not None
        assert "valid_out" in outcome.log_text()

    def test_no_assertions_trivially_passes(self):
        result = compile_source(
            "module empty (input clk, input rst_n, input a, output wire b);\n"
            "assign b = a;\nendmodule")
        outcome = bounded_check(result.design)
        assert outcome.passed_bound and outcome.stimuli_tried == 0

    def test_exhaustive_mode_for_tiny_inputs(self):
        source = """
module tiny (input clk, input rst_n, input a, output reg b);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) b <= 1'b0;
    else b <= a;
  end
  property p;
    @(posedge clk) disable iff (!rst_n) a |-> ##1 b;
  endproperty
  p_assertion: assert property (p);
endmodule
"""
        result = compile_source(source)
        outcome = bounded_check(result.design,
                                BmcConfig(depth=3, exhaustive_bits=4))
        assert outcome.passed_bound
        assert outcome.stimuli_tried == 8  # 2^(1 input bit * 3 cycles)

    def test_deterministic_counterexample(self, accu_buggy_source):
        result = compile_source(accu_buggy_source)
        config = BmcConfig(depth=10, random_trials=24)
        first = bounded_check(result.design, config)
        second = bounded_check(result.design, config)
        assert first.log_text() == second.log_text()


class TestInsertion:
    def test_insert_and_compile(self, corpus_samples):
        seed = corpus_samples[0]
        hint = seed.meta.sva_hints[0]
        combined = insert_sva_text(seed.source,
                                   [hint.property_source(),
                                    hint.assertion_source()])
        assert "endproperty" in combined
        assert compile_source(combined).ok

    def test_insert_bad_sva_raises(self, corpus_samples):
        seed = corpus_samples[0]
        with pytest.raises(SvaInsertionError):
            insert_sva_text(seed.source, ["property broken\nendproperty"])

    def test_compile_with_sva_reports_instead_of_raising(self, corpus_samples):
        seed = corpus_samples[0]
        result = compile_with_sva(seed.source, ["property broken\nendproperty"])
        assert not result.ok

    def test_rtl_lines_unchanged_by_insertion(self, corpus_samples):
        seed = corpus_samples[0]
        hint = seed.meta.sva_hints[0]
        combined = insert_sva_text(seed.source,
                                   [hint.property_source(),
                                    hint.assertion_source()])
        original_lines = seed.source.splitlines()
        combined_lines = combined.splitlines()
        # Every RTL line keeps its position (SVA is appended before endmodule).
        for i, line in enumerate(original_lines[:-1]):
            assert combined_lines[i] == line
