"""Elaboration: symbols, parameters, semantic checks, writer round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.verilog.compile import compile_source
from repro.verilog.elaborator import elaborate
from repro.verilog.errors import VerilogSemanticError
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


class TestSymbols:
    def test_ports_become_symbols(self):
        result = compile_source(
            "module m (input [7:0] a, output reg b);\nendmodule")
        assert result.design.symbols["a"].width == 8
        assert result.design.symbols["b"].kind == "reg"

    def test_output_reg_redeclaration_upgrades(self):
        result = compile_source(
            "module m (input clk, output b);\nreg b;\n"
            "always @(posedge clk)\nb <= 1'b0;\nendmodule")
        assert result.ok
        assert result.design.symbols["b"].kind == "reg"

    def test_parameter_folding_in_range(self):
        result = compile_source(
            "module m (input clk);\nparameter W = 8;\n"
            "reg [W-1:0] r;\nalways @(posedge clk)\nr <= 0;\nendmodule")
        assert result.ok
        assert result.design.symbols["r"].width == 8

    def test_localparam(self):
        result = compile_source(
            "module m ();\nlocalparam DEPTH = 4 * 2;\n"
            "wire [DEPTH-1:0] w;\nassign w = 0;\nendmodule")
        assert result.ok
        assert result.design.params["DEPTH"] == 8

    def test_duplicate_declaration_rejected(self):
        result = compile_source("module m ();\nwire x;\nwire x;\nendmodule")
        assert not result.ok
        assert "duplicate" in result.failure_summary()


class TestSemanticChecks:
    def test_undeclared_identifier(self):
        result = compile_source(
            "module m (input a, output wire b);\nassign b = ghost;\nendmodule")
        assert not result.ok
        assert "ghost" in result.failure_summary()

    def test_assign_to_reg_rejected(self):
        result = compile_source(
            "module m (input a);\nreg r;\nassign r = a;\nendmodule")
        assert not result.ok

    def test_procedural_assign_to_wire_rejected(self):
        result = compile_source(
            "module m (input clk, input a);\nwire w;\n"
            "always @(posedge clk)\nw <= a;\nendmodule")
        assert not result.ok

    def test_assign_to_input_rejected(self):
        result = compile_source(
            "module m (input a);\nassign a = 1'b0;\nendmodule")
        assert not result.ok

    def test_double_driver_rejected(self):
        result = compile_source(
            "module m (input clk, input a);\nreg r;\nwire r2;\n"
            "assign r2 = a;\nalways @(posedge clk)\nr2 <= a;\nendmodule")
        assert not result.ok

    def test_hierarchy_unsupported(self):
        result = compile_source(
            "module m (input a, output b);\nsub u (.x(a), .y(b));\nendmodule")
        assert not result.ok
        assert "hierarchical" in result.failure_summary()

    def test_strict_elaborate_raises(self):
        module = parse_module("module m ();\nassign ghost = 1'b0;\nendmodule")
        with pytest.raises(VerilogSemanticError):
            elaborate(module, strict=True)

    def test_dangling_property_reference(self):
        result = compile_source(
            "module m (input clk, input a);\n"
            "oops: assert property (nothere);\nendmodule")
        assert not result.ok


class TestClockResetDetection:
    def test_clock_and_reset_split(self):
        result = compile_source(
            "module m (input clk, input rst_n, output reg q);\n"
            "always @(posedge clk or negedge rst_n) begin\n"
            "if (!rst_n) q <= 1'b0;\nelse q <= 1'b1;\nend\nendmodule")
        assert result.design.clocks == ["clk"]
        assert result.design.resets == ["rst_n"]

    def test_free_inputs_exclude_clock_reset(self):
        result = compile_source(
            "module m (input clk, input rst_n, input [3:0] d, output reg [3:0] q);\n"
            "always @(posedge clk or negedge rst_n) begin\n"
            "if (!rst_n) q <= 4'd0;\nelse q <= d;\nend\nendmodule")
        assert [s.name for s in result.design.free_inputs()] == ["d"]


class TestWriterRoundTrip:
    def test_corpus_round_trip_idempotent(self, corpus_samples):
        for seed in corpus_samples:
            module = parse_module(seed.source)
            emitted = write_module(module)
            assert emitted == seed.source  # corpus is canonical already
            reparsed = parse_module(emitted)
            assert write_module(reparsed) == emitted

    def test_round_trip_preserves_compile_verdict(self, corpus_samples):
        for seed in corpus_samples[:8]:
            emitted = write_module(parse_module(seed.source))
            assert compile_source(emitted).ok

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_generated_designs_round_trip(self, seed_value):
        from repro.corpus.generator import CorpusGenerator

        generator = CorpusGenerator(seed=seed_value)
        seed = generator.generate_one()
        module = parse_module(seed.source)
        assert write_module(module) == seed.source

    def test_header_plus_items_equals_module(self, corpus_samples):
        from repro.verilog.writer import write_header_lines, write_item_lines

        for seed in corpus_samples[:6]:
            module = parse_module(seed.source)
            lines = write_header_lines(module)
            for item in module.items:
                lines.extend(write_item_lines(item))
            lines.append("endmodule")
            assert "\n".join(lines) + "\n" == seed.source
