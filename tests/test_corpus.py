"""Corpus templates, generator, syntax breaker and human designs."""

import random

import pytest

from repro.bugs.taxonomy import length_bin_of
from repro.corpus.generator import CorpusGenerator
from repro.corpus.registry import TEMPLATE_FAMILIES, make_instance, template_names
from repro.corpus.syntax_breaker import BREAKERS, break_syntax
from repro.sva.bmc import BmcConfig, bounded_check
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source


class TestTemplates:
    @pytest.mark.parametrize("family", sorted(TEMPLATE_FAMILIES))
    def test_family_compiles(self, family):
        seed = make_instance(family, random.Random(11))
        result = compile_source(seed.source)
        assert result.ok, f"{family}: {result.failure_summary()}"

    @pytest.mark.parametrize("family", sorted(TEMPLATE_FAMILIES))
    def test_family_hints_hold_on_golden(self, family):
        """Every template's SVA hints must pass the bounded check."""
        make_instance(family, random.Random(23))  # standalone instantiation
        generator = CorpusGenerator(seed=23)
        canonical = generator.generate_one(family)
        blocks = []
        for hint in canonical.meta.sva_hints:
            blocks.append(hint.property_source())
            blocks.append(hint.assertion_source())
        combined = compile_with_sva(canonical.source, blocks)
        assert combined.ok, combined.failure_summary()
        outcome = bounded_check(combined.design,
                                BmcConfig(depth=8, random_trials=12))
        assert outcome.passed_bound, f"{family}: {outcome.log_text()}"

    def test_every_family_has_hints_and_spec(self):
        for family in template_names():
            seed = make_instance(family, random.Random(5))
            assert seed.meta.sva_hints, family
            assert seed.meta.summary, family
            assert seed.meta.behaviour, family

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            make_instance("not_a_family", random.Random(0))


class TestGenerator:
    def test_deterministic(self):
        a = CorpusGenerator(seed=3).generate(5)
        b = CorpusGenerator(seed=3).generate(5)
        assert [s.source for s in a] == [s.source for s in b]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(seed=3).generate(5)
        b = CorpusGenerator(seed=4).generate(5)
        assert [s.source for s in a] != [s.source for s in b]

    def test_canonical_output(self, corpus_samples):
        from repro.verilog.parser import parse_module
        from repro.verilog.writer import write_module

        for seed in corpus_samples[:10]:
            assert write_module(parse_module(seed.source)) == seed.source

    def test_length_bins_covered(self):
        """A large-enough sample must populate at least 4 of the 5 bins."""
        generator = CorpusGenerator(seed=77)
        bins = {length_bin_of(s.line_count) for s in generator.generate(120)}
        assert len(bins) >= 4

    def test_unique_module_names(self):
        generator = CorpusGenerator(seed=13)
        names = [s.name for s in generator.generate(40)]
        assert len(set(names)) == len(names)


class TestSyntaxBreaker:
    @pytest.mark.parametrize("kind", sorted(BREAKERS))
    def test_breaker_produces_failing_code(self, kind, corpus_samples):
        rng = random.Random(9)
        broke_any = False
        for seed in corpus_samples:
            broken = break_syntax(seed.source, rng, kind=kind)
            if broken is None:
                continue
            broke_any = True
            broken_kind, broken_source = broken
            assert broken_kind == kind
            assert not compile_source(broken_source).ok
        assert broke_any, f"{kind} never applied to any sample"

    def test_random_kind_selection(self, corpus_samples, rng):
        broken = break_syntax(corpus_samples[0].source, rng)
        assert broken is not None
        _, source = broken
        assert not compile_source(source).ok


class TestHumanCorpus:
    def test_cases_build_and_validate(self, human_cases):
        assert len(human_cases) >= 30  # paper: 38

    def test_all_origins_human(self, human_cases):
        assert all(c.origin == "human" for c in human_cases)

    def test_bug_records_well_formed(self, human_cases):
        for case in human_cases:
            record = case.record
            lines = record.buggy_source.splitlines()
            assert lines[record.line - 1].strip() == record.buggy_line
            golden_lines = record.golden_source.splitlines()
            assert golden_lines[record.line - 1].strip() == record.fixed_line

    def test_logs_mention_failing_assertion(self, human_cases):
        for case in human_cases:
            assert "failed assertion" in case.entry.logs

    def test_repair_space_covers_golden(self, human_cases):
        from repro.model.candidates import enumerate_repairs

        covered = 0
        for case in human_cases:
            space = enumerate_repairs(case.entry.buggy_source_with_sva)
            if space.golden_index(case.record.line,
                                  case.record.fixed_line) is not None:
                covered += 1
        assert covered == len(human_cases)

    def test_case_ids_unique(self, human_cases):
        ids = [c.case_id for c in human_cases]
        assert len(set(ids)) == len(ids)
