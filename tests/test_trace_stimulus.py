"""Trace container and stimulus generators."""

import random

import pytest

from repro.sim.stimulus import (
    Stimulus,
    constant_sequence,
    enumerate_exhaustive,
    reset_sequence,
    reset_values,
    toggle_sequence,
    walking_ones_sequence,
)
from repro.sim.trace import Trace
from repro.sim.values import FourState
from repro.verilog.compile import compile_source

DESIGN = """
module stim_target (input clk, input rst_n, input a, input [2:0] b, output reg y);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) y <= 1'b0;
    else y <= a ^ b[0];
  end
endmodule
"""


@pytest.fixture()
def design():
    result = compile_source(DESIGN)
    assert result.ok
    return result.design


class TestTrace:
    def test_append_and_index(self):
        trace = Trace(["x"])
        trace.append({"x": FourState(4, 3)})
        trace.append({"x": FourState(4, 5)})
        assert len(trace) == 2
        assert trace.value("x", 1).to_int() == 5

    def test_column(self):
        trace = Trace(["x"])
        for v in (1, 2, 3):
            trace.append({"x": FourState(4, v)})
        assert [v.to_int() for v in trace.column("x")] == [1, 2, 3]

    def test_snapshots_are_copies(self):
        trace = Trace(["x"])
        snapshot = {"x": FourState(4, 1)}
        trace.append(snapshot)
        snapshot["x"] = FourState(4, 9)
        assert trace.value("x", 0).to_int() == 1

    def test_to_table_renders(self):
        trace = Trace(["x"])
        trace.append({"x": FourState(4, 7)})
        trace.append({"x": FourState.unknown(4)})
        table = trace.to_table(["x"])
        assert "cycle" in table
        assert "7" in table and "x" in table

    def test_to_table_empty(self):
        assert "(empty trace)" in Trace().to_table()


class TestResetValues:
    def test_active_low_detection(self, design):
        assert reset_values(design, active=True) == {"rst_n": 0}
        assert reset_values(design, active=False) == {"rst_n": 1}

    def test_active_high(self):
        result = compile_source("""
module hi (input clk, input reset, output reg q);
  always @(posedge clk or posedge reset) begin
    if (reset) q <= 1'b0;
    else q <= 1'b1;
  end
endmodule
""")
        assert reset_values(result.design, active=True) == {"reset": 1}


class TestGenerators:
    def test_constant_sequences(self, design):
        ones = constant_sequence(design, 4, 1)
        zeros = constant_sequence(design, 4, 0)
        assert all(v == {"a": 1, "b": 7} for v in ones.vectors)
        assert all(v == {"a": 0, "b": 0} for v in zeros.vectors)

    def test_toggle_alternates(self, design):
        stim = toggle_sequence(design, 4, phase=0)
        assert stim[0]["a"] == 0 and stim[1]["a"] == 1

    def test_walking_ones_covers_every_bit(self, design):
        stim = walking_ones_sequence(design, 8)
        seen = set()
        for vector in stim.vectors:
            for name, value in vector.items():
                if value:
                    seen.add((name, value))
        # 4 input bits total: a plus b[2:0]
        assert len(seen) == 4

    def test_random_deterministic_by_seed(self, design):
        a = reset_sequence(design, 5, random.Random(3))
        b = reset_sequence(design, 5, random.Random(3))
        assert a.vectors == b.vectors

    def test_random_values_in_range(self, design):
        stim = reset_sequence(design, 20, random.Random(1))
        for vector in stim.vectors:
            assert 0 <= vector["a"] <= 1
            assert 0 <= vector["b"] <= 7

    def test_exhaustive_count(self, design):
        stimuli = list(enumerate_exhaustive(design, depth=1))
        # 4 input bits, depth 1 -> 16 sequences
        assert len(stimuli) == 16
        assert len({tuple(sorted(s[0].items())) for s in stimuli}) == 16

    def test_extended(self):
        stim = Stimulus([{"a": 0}])
        longer = stim.extended([{"a": 1}])
        assert len(longer) == 2 and len(stim) == 1
