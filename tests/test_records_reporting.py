"""Dataset records, benchmark assembly, histogram/report rendering."""

import pytest

from repro.datagen.records import (
    SvaEvalCase,
    VerilogPTEntry,
    distribution_table,
)
from repro.eval.benchmark import SvaEvalBenchmark, build_benchmark
from repro.eval.histogram import render_histogram
from repro.eval.reporting import PAPER_TABLE3, PAPER_TABLE4, render_fig4, render_fig5
from repro.eval.runner import evaluate_model


class TestRecords:
    def test_pt_entry_text(self):
        entry = VerilogPTEntry("module m (); endmodule", "spec here",
                               analysis="it broke", compiles=False)
        text = entry.text()
        assert "module m" in text
        assert "Failure analysis:" in text and "it broke" in text

    def test_pt_entry_clean_has_no_analysis_section(self):
        entry = VerilogPTEntry("module m (); endmodule", "spec here")
        assert "Failure analysis:" not in entry.text()

    def test_eval_case_origin_validation(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        with pytest.raises(ValueError):
            SvaEvalCase("x", entry, origin="martian")

    def test_bucket_labels_three_axes(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        labels = entry.bucket_labels()
        assert len(labels) == 3
        assert labels[0] in ("Direct", "Indirect")
        assert labels[1] in ("Var", "Value", "Op")
        assert labels[2] in ("Cond", "Non_cond")

    def test_distribution_table_empty(self):
        assert distribution_table([]) == {}

    def test_verilog_bug_rendering(self, small_bundle):
        if not small_bundle.verilog_bug:
            pytest.skip("no silent bugs at this scale")
        entry = small_bundle.verilog_bug[0]
        assert "contains a bug" in entry.question_text()
        assert "Fix:" in entry.answer_text()


class TestBenchmarkAssembly:
    def test_build_without_human(self, small_bundle):
        benchmark = build_benchmark(small_bundle, include_human=False)
        assert benchmark.human == []
        assert len(benchmark.machine) == len(small_bundle.sva_eval_machine)

    def test_build_with_prebuilt_human(self, small_bundle, human_cases):
        benchmark = build_benchmark(small_bundle, human_cases=human_cases)
        assert len(benchmark.human) == len(human_cases)
        assert len(benchmark) == len(benchmark.machine) + len(benchmark.human)

    def test_subset_lookup(self, small_bundle, human_cases):
        benchmark = SvaEvalBenchmark(small_bundle.sva_eval_machine,
                                     human_cases[:3])
        assert benchmark.subset("machine") == benchmark.machine
        assert benchmark.subset("human") == benchmark.human
        assert len(benchmark.subset("all")) == len(benchmark)
        with pytest.raises(ValueError):
            benchmark.subset("alien")

    def test_summary_mentions_paper_counts(self, small_bundle):
        benchmark = build_benchmark(small_bundle, include_human=False)
        assert "877" in benchmark.summary()
        assert "38" in benchmark.summary()


class TestRenderers:
    def test_histogram_renders_both_series(self, small_bundle,
                                           trained_models):
        _, sft, solver = trained_models
        results = {
            "SFT Model": evaluate_model(sft, small_bundle.sva_eval_machine,
                                        n=6),
            "AssertSolver": evaluate_model(solver,
                                           small_bundle.sva_eval_machine,
                                           n=6),
        }
        text = render_histogram(results, n=6)
        assert "extremity mass" in text
        assert "SFT Model" in text and "AssertSolver" in text

    def test_fig4_fig5_render(self, small_bundle, trained_models):
        _, sft, solver = trained_models
        sft_result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        solver_result = evaluate_model(solver,
                                       small_bundle.sva_eval_machine, n=4)
        fig4 = render_fig4({"SFT Model": sft_result,
                            "AssertSolver": solver_result})
        assert "Fig 4(a)" in fig4 and "Fig 4(b)" in fig4
        fig5 = render_fig5(sft_result, solver_result)
        assert "Fig 5(a)" in fig5 and "Fig 5(b)" in fig5

    def test_paper_reference_tables_complete(self):
        assert set(PAPER_TABLE3) == {"Base Model", "SFT Model",
                                     "AssertSolver"}
        assert "o1-preview" in PAPER_TABLE4
        for values in PAPER_TABLE4.values():
            assert len(values) == 6
