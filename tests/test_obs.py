"""Observability: tracing + metrics, unit level through the fleet.

Covers the observability contract end to end:

- deterministic trace ids and the ``X-Repro-Trace-Id`` wire round trip
  (malformed headers degrade to a freshly derived id, never garbage);
- span nesting via contextvars, the worker export/ingest protocol
  (spans pickle), and back-dated ``solve.<phase>`` spans from the
  engine's existing phase timers;
- the bounded :class:`TraceBuffer` (recent/slowest retention, open-table
  eviction) and trace-fragment merging by span id;
- histograms (quantiles, cumulative buckets), the registry's idempotent
  wiring, strict Prometheus-text parsing, and fleet-style exposition
  merging;
- the acceptance criteria: one fleet-routed request is ONE trace — the
  router's ``fleet.route``, the backend's ``http.server``, the
  service's queue/batch spans and the solve span all share a trace id
  in the router's ``/tracez``; ``/metricsz`` parses as Prometheus text
  at every layer; and response bodies are byte-identical with tracing
  on or off.
"""

from __future__ import annotations

import http.client
import pickle

import pytest

from repro.core.api import FleetConfig, make_fleet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    ServeConfig,
    SolveOptions,
    SolveRequest,
    request_to_json,
)

MINI_SOURCE = """
module mini (
  input clk,
  input rst_n,
  input a,
  input b,
  output wire y
);
  assign y = a & b;
endmodule
"""

FAST = dict(bmc_depth=6, bmc_random_trials=8)


def fast_request(source: str = MINI_SOURCE, **overrides) -> SolveRequest:
    options = dict(FAST)
    request_id = overrides.pop("request_id", "")
    options.update(overrides)
    return SolveRequest(source, SolveOptions(**options),
                        request_id=request_id)


@pytest.fixture()
def clean_tracing():
    """Tracing on, fresh buffer; restores the previous state after."""
    previous = obs_trace.configure(enabled=True)
    obs_trace.reset()
    yield
    obs_trace.configure(enabled=previous)
    obs_trace.reset()


def trace_by_id(snapshot, trace_id):
    for record in snapshot["recent"]:
        if record["trace_id"] == trace_id:
            return record
    return None


def span_names(record):
    return [entry["name"] for entry in record["spans"]]


# -- trace ids and the wire header ---------------------------------------------


class TestTraceIds:
    def test_deterministic_and_distinct(self):
        a = obs_trace.trace_id_for("key", "req-1")
        assert a == obs_trace.trace_id_for("key", "req-1")
        assert len(a) == 32
        assert all(c in "0123456789abcdef" for c in a)
        assert a != obs_trace.trace_id_for("key", "req-2")
        assert a != obs_trace.trace_id_for("other", "req-1")
        # Length-prefixed hashing: no concatenation ambiguity.
        assert obs_trace.trace_id_for("ab", "c") \
            != obs_trace.trace_id_for("a", "bc")

    def test_header_round_trip(self):
        ctx = obs_trace.SpanContext("ab" * 16, "cd" * 8)
        header = obs_trace.format_trace_header(ctx)
        trace_id, parent = obs_trace.parse_trace_header(header)
        assert trace_id == ctx.trace_id
        assert parent.as_tuple() == ctx.as_tuple()

    def test_bare_trace_id_parses_without_parent(self):
        trace_id, parent = obs_trace.parse_trace_header("ab" * 16)
        assert trace_id == "ab" * 16
        assert parent is None

    @pytest.mark.parametrize("value", [
        "", "not-hex!", "abc",                 # empty / non-hex / too short
        "ABCDEF0123456789",                    # uppercase refused
        "ab" * 40,                             # too long
        f"{'ab' * 16}/xyz",                    # bad parent id
        f"{'ab' * 16}/{'cd' * 20}",            # parent too long
    ])
    def test_malformed_headers_degrade_to_none(self, value):
        assert obs_trace.parse_trace_header(value) == (None, None)


# -- spans, propagation, export ------------------------------------------------


class TestSpans:
    def test_nesting_parents_automatically(self, clean_tracing):
        trace_id = obs_trace.trace_id_for("nest", "")
        with obs_trace.span("outer", trace_id=trace_id, root=True) as outer:
            with obs_trace.span("inner") as inner:
                assert inner.trace_id == trace_id
                assert inner.parent_id == outer.span_id
                assert obs_trace.current().span_id == inner.span_id
            assert obs_trace.current().span_id == outer.span_id
        record = trace_by_id(obs_trace.buffer().snapshot(), trace_id)
        assert span_names(record) == ["outer", "inner"]
        assert record["spans"][0]["root"] is True
        assert not any(entry.get("in_progress")
                       for entry in record["spans"])

    def test_no_trace_means_no_span(self, clean_tracing):
        # Outside any request trace (batch datagen), spans are free.
        assert obs_trace.begin("orphan") is None
        with obs_trace.span("orphan") as span_obj:
            assert span_obj is None
        assert obs_trace.buffer().snapshot()["recent"] == []

    def test_disabled_tracing_records_nothing(self, clean_tracing):
        obs_trace.configure(enabled=False)
        assert not obs_trace.enabled()
        with obs_trace.span("off", trace_id="ab" * 16, root=True) as span_obj:
            assert span_obj is None
        snapshot = obs_trace.buffer().snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["recent"] == []

    def test_end_is_idempotent_and_merges_attrs(self, clean_tracing):
        span_obj = obs_trace.begin("once", trace_id="ab" * 16, root=True)
        span_obj.end(status="ok")
        first = span_obj.duration
        span_obj.end(status="overwritten-not")
        assert span_obj.duration == first
        assert span_obj.attrs["status"] == "ok"

    def test_record_phase_backdates_a_child(self, clean_tracing):
        trace_id = obs_trace.trace_id_for("phase", "")
        with obs_trace.span("solve", trace_id=trace_id, root=True) as parent:
            obs_trace.record_phase("simulate", 0.25)
        record = trace_by_id(obs_trace.buffer().snapshot(), trace_id)
        phase = next(e for e in record["spans"]
                     if e["name"] == "solve.simulate")
        assert phase["parent_id"] == parent.span_id
        assert phase["duration_ms"] == pytest.approx(250.0)
        # Back-dated start: the phase began ~250ms before it was
        # reported, i.e. at (or before) the parent's own start.
        assert phase["offset_ms"] <= record["spans"][0]["offset_ms"] + 1.0

    def test_record_phase_outside_a_trace_is_a_noop(self, clean_tracing):
        obs_trace.record_phase("simulate", 1.0)
        assert obs_trace.buffer().snapshot()["recent"] == []

    def test_export_and_ingest_round_trip_through_pickle(
            self, clean_tracing):
        # The engine's worker protocol: spans finished under
        # export_spans() never touch the local buffer; they ship back
        # (pickled, like unit results) and ingest() lands them.
        trace_id = obs_trace.trace_id_for("export", "")
        with obs_trace.export_spans() as exported:
            with obs_trace.span("engine.unit", trace_id=trace_id):
                obs_trace.record_phase("bmc", 0.01)
        assert obs_trace.buffer().snapshot()["recent"] == []
        assert {s.name for s in exported} == {"engine.unit", "solve.bmc"}
        shipped = pickle.loads(pickle.dumps(exported))
        obs_trace.ingest(shipped)
        # Ingested spans sit in the open table until the trace's root
        # finishes elsewhere; finalize by hand to inspect them.
        obs_trace.buffer().finish(trace_id)
        (record,) = obs_trace.buffer().snapshot()["recent"]
        assert sorted(span_names(record)) == ["engine.unit", "solve.bmc"]


# -- the bounded buffer and fragment merging -----------------------------------


class TestTraceBuffer:
    @staticmethod
    def _finish_trace(buffer, trace_id, duration):
        span_obj = obs_trace.Span("root", trace_id, root=True)
        span_obj.duration = duration
        span_obj._sink = ()  # keep end() off the global buffer
        buffer.add(span_obj)
        span_obj.done = True
        buffer.finish(trace_id)

    def test_recent_and_slowest_retention(self):
        buffer = obs_trace.TraceBuffer(max_recent=3, max_slowest=2)
        for i in range(6):
            # Durations 5,4,3,2,1,0: the slowest arrive first, so the
            # slowest set must survive the later, faster traffic.
            self._finish_trace(buffer, f"{i:032x}", float(5 - i))
        snapshot = buffer.snapshot()
        assert snapshot["finished"] == 6
        assert [r["trace_id"] for r in snapshot["recent"]] \
            == [f"{i:032x}" for i in (3, 4, 5)]
        assert [r["duration_ms"] for r in snapshot["slowest"]] \
            == [5000.0, 4000.0]

    def test_open_table_eviction_counts_drops(self):
        buffer = obs_trace.TraceBuffer(max_open=2)
        for i in range(4):
            buffer.add(obs_trace.Span("s", f"{i:032x}"))
        snapshot = buffer.snapshot()
        assert snapshot["open"] == 2
        assert snapshot["dropped"] == 2
        buffer.finish("0" * 32)  # evicted: finalizes nothing
        assert buffer.snapshot()["finished"] == 0

    def test_finish_unknown_trace_is_harmless(self):
        buffer = obs_trace.TraceBuffer()
        buffer.finish("f" * 32)
        assert buffer.snapshot()["finished"] == 0

    @pytest.mark.parametrize("kwargs", [
        dict(max_recent=0), dict(max_slowest=-1), dict(max_open=0),
        dict(max_recent=True),
    ])
    def test_bound_validation(self, kwargs):
        with pytest.raises(ValueError):
            obs_trace.TraceBuffer(**kwargs)

    def test_merge_dedups_spans_and_rebases_offsets(self):
        trace_id = "a" * 32
        shared = {"name": "http.server", "span_id": "s1", "parent_id": None,
                  "offset_ms": 0.0, "duration_ms": 30.0, "root": True}
        early = {"trace_id": trace_id, "name": "http.server",
                 "duration_ms": 30.0, "epoch": 100.0,
                 "spans": [dict(shared),
                           {"name": "queue.wait", "span_id": "s2",
                            "parent_id": "s1", "offset_ms": 1.0,
                            "duration_ms": 5.0}]}
        late = {"trace_id": trace_id, "name": "http.server",
                "duration_ms": 28.0, "epoch": 100.01,
                "spans": [dict(shared),  # duplicate span id: dropped
                          {"name": "solve", "span_id": "s3",
                           "parent_id": "s1", "offset_ms": 2.0,
                           "duration_ms": 20.0}]}
        (merged,) = obs_trace.merge_trace_records([early, late])
        assert merged["n_spans"] == 3
        assert merged["duration_ms"] == 30.0
        solve = next(e for e in merged["spans"] if e["name"] == "solve")
        # The late fragment's epoch is 10ms after the early one's.
        assert solve["offset_ms"] == pytest.approx(12.0)
        assert [e["span_id"] for e in merged["spans"]].count("s1") == 1


# -- metrics: histograms, registry, exposition ---------------------------------


class TestHistogram:
    def test_quantiles_interpolate_within_buckets(self):
        hist = obs_metrics.Histogram("t_seconds", "test",
                                     buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.5)
        assert 0.0 < hist.quantile(0.25) <= 1.0
        assert 1.0 < hist.quantile(0.75) <= 2.0
        assert hist.quantile(1.0) <= 4.0

    def test_overflow_clamps_to_last_bound(self):
        hist = obs_metrics.Histogram("t_seconds", "test", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.5) == 2.0

    def test_empty_histogram_quantile_is_zero(self):
        hist = obs_metrics.Histogram("t_seconds", "test")
        assert hist.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(0.0)

    def test_cumulative_bucket_exposition(self):
        hist = obs_metrics.Histogram("t_seconds", "test", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        lines = []
        hist.render(lines)
        parsed = obs_metrics.parse_prometheus_text("\n".join(lines))
        assert parsed.value("t_seconds_bucket", le="1") == 1.0
        assert parsed.value("t_seconds_bucket", le="2") == 2.0
        assert parsed.value("t_seconds_bucket", le="+Inf") == 3.0
        assert parsed.value("t_seconds_count") == 3.0
        assert parsed.types["t_seconds"] == "histogram"

    def test_bucket_validation(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(ValueError):
                obs_metrics.Histogram("t", "test", buckets=bad)


class TestRegistry:
    def test_registration_is_idempotent_by_shape(self):
        registry = obs_metrics.MetricsRegistry()
        counter = registry.counter("a_total", "help")
        assert registry.counter("a_total", "other help") is counter
        with pytest.raises(ValueError):
            registry.gauge("a_total", "now a gauge")

    def test_counters_refuse_decrements(self):
        counter = obs_metrics.MetricsRegistry().counter("a_total", "help")
        counter.inc(2)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 2.0

    def test_counter_family_labels(self):
        registry = obs_metrics.MetricsRegistry()
        family = registry.counter_family("req_total", "help",
                                         ("handler", "code"))
        family.labels(handler="solve", code="200").inc()
        family.labels(handler="solve", code="200").inc()
        family.labels(handler="solve", code="429").inc()
        with pytest.raises(ValueError):
            family.labels(handler="solve")  # missing label
        parsed = obs_metrics.parse_prometheus_text(registry.render())
        assert parsed.value("req_total", handler="solve", code="200") == 2.0
        assert parsed.value("req_total", handler="solve", code="429") == 1.0

    def test_provider_family_renders_prefixed_and_survives_errors(self):
        registry = obs_metrics.MetricsRegistry()
        registry.provider("pre", "help", lambda: {"hits": 3, "bad name": 1})
        registry.provider("boom", "help",
                          lambda: (_ for _ in ()).throw(RuntimeError()))
        parsed = obs_metrics.parse_prometheus_text(registry.render())
        assert parsed.value("pre_hits") == 3.0
        assert parsed.value("pre_bad name") is None  # invalid name skipped


class TestExposition:
    def test_parse_rejects_malformed_lines(self):
        for bad in ("metric_without_value",
                    "name{unclosed=\"x\" 1",
                    "name 12abc",
                    "# TYPE incomplete"):
            with pytest.raises(ValueError):
                obs_metrics.parse_prometheus_text(bad)

    def test_label_escaping_round_trips(self):
        registry = obs_metrics.MetricsRegistry()
        family = registry.counter_family("esc_total", "help", ("path",))
        family.labels(path='a"b\\c\nd').inc()
        parsed = obs_metrics.parse_prometheus_text(registry.render())
        assert parsed.value("esc_total", path='a"b\\c\nd') == 1.0

    def test_merge_expositions_sums_by_name_and_labels(self):
        def backend(n):
            registry = obs_metrics.MetricsRegistry()
            registry.counter("solved_total", "help").inc(n)
            hist = registry.histogram("lat_seconds", "help",
                                      buckets=(1.0, 2.0))
            hist.observe(0.5)
            return registry.render()

        merged = obs_metrics.merge_expositions([backend(2), backend(3)])
        parsed = obs_metrics.parse_prometheus_text(merged)
        assert parsed.value("solved_total") == 5.0
        assert parsed.value("lat_seconds_bucket", le="1") == 2.0
        assert parsed.value("lat_seconds_count") == 2.0
        assert parsed.types["lat_seconds"] == "histogram"


# -- the serving stack, instrumented -------------------------------------------


class TestServiceTracing:
    def test_in_process_solve_yields_one_finished_trace(self, clean_tracing):
        request = fast_request(request_id="trace-me")
        trace_id = obs_trace.trace_id_for(request.cache_key(), "trace-me")
        with AssertService(ServeConfig(batch_window_ms=5.0)) as service:
            response = service.solve(request, timeout=60)
            assert response.ok
            record = trace_by_id(obs_trace.buffer().snapshot(), trace_id)
        assert record is not None
        names = span_names(record)
        assert names[0] == "request.inflight"
        assert record["spans"][0]["root"] is True
        assert record["spans"][0]["attrs"]["status"] == "ok"
        assert "queue.wait" in names
        assert "batch.wait" in names
        assert "solve" in names
        # The engine's phase timers surfaced as solve.* child spans.
        assert any(name.startswith("solve.") for name in names)

    def test_service_metricsz_counts_the_request(self, clean_tracing):
        with AssertService(ServeConfig(batch_window_ms=5.0)) as service:
            assert service.solve(fast_request(), timeout=60).ok
            parsed = obs_metrics.parse_prometheus_text(
                service.metrics.render())
        assert parsed.value("repro_service_submitted_total") == 1.0
        assert parsed.value("repro_service_solved_total") == 1.0
        assert parsed.value("repro_service_request_seconds_count") == 1.0
        assert parsed.value("repro_service_queue_wait_seconds_count") == 1.0


class TestHttpObservability:
    def test_metricsz_parses_and_counts_requests(self, clean_tracing):
        with AssertHttpServer(
                AssertService(ServeConfig(batch_window_ms=5.0))) as server:
            client = AssertClient.for_server(server)
            assert client.solve(fast_request(), timeout=60).ok
            parsed = obs_metrics.parse_prometheus_text(client.metricsz())
        assert parsed.value("repro_http_requests_total",
                            handler="solve", code="200") == 1.0
        assert parsed.value("repro_http_request_seconds_count") >= 1.0
        assert parsed.value("repro_service_solved_total") == 1.0
        # The engine provider section rode along (solve phases ran).
        assert any(name.startswith("repro_solve_profile_")
                   for name, _ in parsed.samples)

    def test_incoming_trace_header_is_honored(self, clean_tracing):
        supplied = "ab" * 16
        request = fast_request()
        with AssertHttpServer(
                AssertService(ServeConfig(batch_window_ms=5.0))) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=60)
            try:
                body = request_to_json(request).encode("utf-8")
                conn.request("POST", "/v1/solve", body=body,
                             headers={"Content-Type": "application/json",
                                      obs_trace.TRACE_HEADER: supplied})
                assert conn.getresponse().status == 200
            finally:
                conn.close()
            record = trace_by_id(
                AssertClient.for_server(server).tracez(), supplied)
        assert record is not None
        assert "http.server" in span_names(record)

    def test_tracez_reports_server_spans(self, clean_tracing):
        request = fast_request(request_id="http-trace")
        trace_id = obs_trace.trace_id_for(request.cache_key(), "http-trace")
        with AssertHttpServer(
                AssertService(ServeConfig(batch_window_ms=5.0))) as server:
            client = AssertClient.for_server(server)
            assert client.solve(request, timeout=60).ok
            record = trace_by_id(client.tracez(), trace_id)
        assert record is not None
        names = span_names(record)
        assert names[0] == "http.server"
        assert record["spans"][0]["attrs"]["code"] == 200
        assert "request.inflight" in names
        assert "solve" in names

    def test_bodies_byte_identical_tracing_on_and_off(self, clean_tracing):
        request = fast_request()
        bodies = {}
        for enabled in (True, False):
            obs_trace.configure(enabled=enabled)
            obs_trace.reset()
            with AssertHttpServer(AssertService(
                    ServeConfig(batch_window_ms=5.0))) as server:
                client = AssertClient.for_server(server)
                _, _, data = client._request(
                    "POST", "/v1/solve",
                    request_to_json(request).encode("utf-8"))
                bodies[enabled] = data
        assert bodies[True] == bodies[False]


class TestFleetObservability:
    def test_one_routed_request_is_one_trace(self, clean_tracing):
        # THE acceptance test: a fleet-routed request shows up in the
        # router's /tracez as a single trace whose spans cover every
        # layer — router, backend HTTP edge, service queue/batch, solve.
        request = fast_request(request_id="fleet-trace")
        trace_id = obs_trace.trace_id_for(request.cache_key(), "fleet-trace")
        router = make_fleet(FleetConfig(n_backends=2),
                            ServeConfig(batch_window_ms=5.0))
        router.start()
        try:
            client = AssertClient.for_server(router)
            assert client.solve(request, timeout=60).ok
            payload = client.tracez()
        finally:
            router.close()
        assert payload["enabled"] is True
        assert payload["backends_reached"] == 2
        record = trace_by_id(payload, trace_id)
        assert record is not None
        names = span_names(record)
        assert names[0] == "fleet.route"
        for name in ("fleet.forward", "http.server", "request.inflight",
                     "queue.wait", "batch.wait", "solve"):
            assert name in names, f"missing {name} in {names}"
        assert any(name.startswith("solve.") for name in names)
        # One coherent parent chain: the backend's server span hangs off
        # the router's forward path, not off a second root.
        by_id = {e["span_id"]: e for e in record["spans"]}
        server_entry = next(e for e in record["spans"]
                            if e["name"] == "http.server")
        assert server_entry["parent_id"] in by_id
        assert sum(1 for e in record["spans"] if e.get("root")) >= 1

    def test_fleet_metricsz_merges_backends(self, clean_tracing):
        router = make_fleet(FleetConfig(n_backends=2),
                            ServeConfig(batch_window_ms=5.0))
        router.start()
        try:
            client = AssertClient.for_server(router)
            for i in range(3):
                request = fast_request(f"// fleet metrics {i}\n{MINI_SOURCE}")
                assert client.solve(request, timeout=60).status \
                    in ("ok", "compile_error")
            parsed = obs_metrics.parse_prometheus_text(client.metricsz())
        finally:
            router.close()
        assert parsed.value("repro_router_routed_total") == 3.0
        # Backend-side solves sum across the fleet.
        assert parsed.value("repro_service_solved_total") == 3.0
        assert parsed.value("repro_service_request_seconds_count") == 3.0
        assert parsed.value("repro_router_backends_healthy") == 2.0
