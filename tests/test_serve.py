"""Serving layer: service, micro-batcher, result cache, loadgen.

Covers the edge cases the serving contract promises:

- queue-full backpressure raises ``ServiceOverloaded`` instead of
  queueing unboundedly;
- identical requests produce byte-identical responses, cached or not;
- the batcher flushes on batch-size *and* on window timeout;
- malformed Verilog yields a structured ``compile_error`` response, and
  the worker keeps serving afterwards;
- micro-batching beats the sequential one-at-a-time baseline and a
  100%-repeat workload is served dramatically faster from the cache
  (the bench's acceptance criteria, smoke-checked here at small scale).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.corpus.generator import CorpusGenerator
from repro.serve import (
    AssertService,
    ResultCache,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
    SolveOptions,
    SolveRequest,
    WorkloadSpec,
    build_workload,
    run_load,
    solve_task,
)
from repro.serve.service import SolveTask
from repro.verilog.compile import default_compile_cache

MINI_SOURCE = """
module mini (
  input clk,
  input rst_n,
  input a,
  input b,
  output wire y
);
  assign y = a & b;
endmodule
"""

#: Cheap service settings shared by most tests: tiny BMC budget, serial
#: engine, wide-open queue.
FAST = dict(bmc_depth=6, bmc_random_trials=8)


def fast_request(source: str, **overrides) -> SolveRequest:
    options = dict(FAST)
    options.update(overrides)
    return SolveRequest(source, SolveOptions(**options))


@pytest.fixture(scope="module")
def tiny_workload():
    """12 requests over 3 unique corpus designs, small BMC budget."""
    return build_workload(WorkloadSpec(n_requests=12, unique_designs=3,
                                       seed=11, bmc_depth=6,
                                       bmc_random_trials=8))


class TestBackpressure:
    def test_queue_full_raises_overloaded(self):
        service = AssertService(ServeConfig(max_queue=3))
        futures = []
        try:
            # Not started: nothing drains, so the bounded queue must fill.
            for _ in range(3):
                futures.append(service.submit(fast_request(MINI_SOURCE)))
            with pytest.raises(ServiceOverloaded):
                service.submit(fast_request(MINI_SOURCE))
            assert service.stats().rejected == 1
            assert service.stats().submitted == 3
            # Starting the consumer drains the accepted requests.
            service.start()
            for future in futures:
                assert future.result(timeout=60).ok
        finally:
            service.close()

    def test_submit_after_close_raises(self):
        service = AssertService(ServeConfig())
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(fast_request(MINI_SOURCE))

    def test_close_drains_accepted_requests(self):
        service = AssertService(ServeConfig(batch_window_ms=50))
        future = service.submit(fast_request(MINI_SOURCE))
        service.start()
        service.close()
        assert future.result(timeout=5).ok


class TestDeterminismAndCache:
    def test_same_request_byte_identical_with_cache(self):
        with AssertService(ServeConfig(result_cache=True)) as service:
            first = service.solve(fast_request(MINI_SOURCE), timeout=60)
            second = service.solve(fast_request(MINI_SOURCE), timeout=60)
            stats = service.stats()
        assert second is first  # served straight from the result cache
        assert second.to_json() == first.to_json()
        assert stats.cache_hits == 1
        assert stats.solved == 1

    def test_cached_equals_recomputed(self):
        request = fast_request(MINI_SOURCE)
        with AssertService(ServeConfig(result_cache=True)) as cached_svc:
            cached = cached_svc.solve(request, timeout=60)
        with AssertService(ServeConfig(result_cache=False)) as plain_svc:
            fresh_a = plain_svc.solve(request, timeout=60)
            fresh_b = plain_svc.solve(request, timeout=60)
            assert plain_svc.stats().solved == 2  # really recomputed
        assert fresh_a.to_json() == fresh_b.to_json() == cached.to_json()

    def test_request_id_does_not_fork_cache(self):
        a = SolveRequest(MINI_SOURCE, SolveOptions(**FAST), request_id="x")
        b = SolveRequest(MINI_SOURCE, SolveOptions(**FAST), request_id="y")
        assert a.cache_key() == b.cache_key()

    def test_options_fork_cache_key(self):
        a = fast_request(MINI_SOURCE, bmc_depth=6)
        b = fast_request(MINI_SOURCE, bmc_depth=7)
        assert a.cache_key() != b.cache_key()

    def test_result_cache_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)           # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_solve_task_is_pure(self):
        request = fast_request(MINI_SOURCE)
        task = SolveTask(key=request.cache_key(),
                         design_source=request.design_source,
                         options=request.options, seed=2025)
        assert solve_task(task).to_json() == solve_task(task).to_json()


class TestBatcherFlush:
    def test_flush_on_batch_size(self, tiny_workload):
        config = ServeConfig(max_batch=4, batch_window_ms=5000,
                             result_cache=False)
        with AssertService(config) as service:
            futures = [service.submit(r) for r in tiny_workload[:8]]
            for future in futures:
                assert future.result(timeout=120).ok
            stats = service.stats()
        # 8 requests, window far too long to expire: only size flushes.
        assert stats.flush_size == 2
        assert stats.flush_timeout == 0
        assert stats.max_batch == 4

    def test_flush_on_timeout(self, tiny_workload):
        config = ServeConfig(max_batch=64, batch_window_ms=40,
                             result_cache=False)
        with AssertService(config) as service:
            futures = [service.submit(r) for r in tiny_workload[:3]]
            for future in futures:
                assert future.result(timeout=120).ok
            stats = service.stats()
        # 3 requests can never reach max_batch=64: the window must flush.
        assert stats.flush_timeout >= 1
        assert stats.flush_size == 0
        assert stats.batched_requests == 3

    def test_batch_dedups_identical_requests(self):
        config = ServeConfig(max_batch=8, batch_window_ms=5000,
                             result_cache=False)
        with AssertService(config) as service:
            request = fast_request(MINI_SOURCE)
            futures = [service.submit(request) for _ in range(8)]
            responses = [f.result(timeout=120) for f in futures]
            stats = service.stats()
        assert stats.solved == 1          # one engine unit for the batch
        assert stats.deduped == 7
        assert len({r.to_json() for r in responses}) == 1


class TestMalformedInput:
    def test_compile_error_is_structured(self):
        with AssertService(ServeConfig()) as service:
            response = service.solve("utter garbage ;;;", timeout=60)
        assert not response.ok
        assert response.status == "compile_error"
        assert response.error  # carries the compiler diagnostics
        assert response.proposals == ()

    def test_worker_survives_malformed_request(self, tiny_workload):
        with AssertService(ServeConfig()) as service:
            bad = service.solve("module broken (", timeout=60)
            good = service.solve(tiny_workload[0], timeout=120)
            stats = service.stats()
        assert bad.status == "compile_error"
        assert good.ok and good.proposals
        assert stats.compile_errors == 1
        assert stats.errors == 0  # structured response, not a failed future

    def test_malformed_mixed_into_batch(self, tiny_workload):
        config = ServeConfig(max_batch=4, batch_window_ms=5000)
        with AssertService(config) as service:
            futures = [service.submit(tiny_workload[0]),
                       service.submit("not verilog"),
                       service.submit(tiny_workload[1]),
                       service.submit("also not verilog")]
            responses = [f.result(timeout=120) for f in futures]
        assert [r.status for r in responses] == [
            "ok", "compile_error", "ok", "compile_error"]


class TestHintsAndMining:
    def test_hintless_design_mines_proposals(self):
        with AssertService(ServeConfig()) as service:
            response = service.solve(fast_request(MINI_SOURCE), timeout=60)
        assert response.ok
        assert response.proposals
        assert all(p.origin == "mined" for p in response.proposals)
        assert all(0.0 < p.score <= 1.0 for p in response.proposals)

    def test_mining_disabled_returns_empty_ok(self):
        request = fast_request(MINI_SOURCE, mine_hints=False)
        with AssertService(ServeConfig()) as service:
            response = service.solve(request, timeout=60)
        assert response.ok
        assert response.proposals == ()

    def test_corpus_hints_validate_and_score(self, tiny_workload):
        with AssertService(ServeConfig()) as service:
            response = service.solve(tiny_workload[0], timeout=120)
        assert response.ok
        assert response.proposals  # template hints hold on their design
        assert all(p.origin == "hint" for p in response.proposals)
        scores = [p.score for p in response.proposals]
        assert scores == sorted(scores, reverse=True)

    def test_hallucinated_proposals_rejected(self, tiny_workload):
        source = tiny_workload[0].design_source
        base = tiny_workload[0].options
        distorted = SolveOptions(hints=base.hints, hallucination_rate=1.0,
                                 bmc_depth=8, bmc_random_trials=16)
        with AssertService(ServeConfig()) as service:
            response = service.solve(SolveRequest(source, distorted),
                                     timeout=120)
        assert response.ok
        assert response.rejected > 0


class TestLoadgen:
    def test_workload_is_deterministic(self):
        spec = WorkloadSpec(n_requests=10, unique_designs=3, seed=42)
        first = build_workload(spec)
        second = build_workload(spec)
        assert [r.cache_key() for r in first] == \
               [r.cache_key() for r in second]
        assert [r.design_source for r in first] == \
               [r.design_source for r in second]

    def test_workload_repeats_designs(self):
        requests = build_workload(WorkloadSpec(n_requests=16,
                                               unique_designs=3, seed=42))
        assert len({r.cache_key() for r in requests}) <= 3

    def test_run_load_reports_latency(self, tiny_workload):
        with AssertService(ServeConfig()) as service:
            report = run_load(service, tiny_workload[:4], concurrency=2,
                              label="smoke")
        assert report.n_requests == 4
        assert report.errors == 0
        assert report.req_per_sec > 0
        assert 0 < report.p50_ms <= report.p95_ms <= report.max_ms
        assert all(r is not None and r.ok for r in report.responses)


class TestServingWins:
    """Small-scale smoke checks of the bench acceptance criteria."""

    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(WorkloadSpec(n_requests=24, unique_designs=3,
                                           seed=17, bmc_depth=6,
                                           bmc_random_trials=8))

    def config(self, **overrides) -> ServeConfig:
        settings = dict(max_queue=64, max_batch=24, batch_window_ms=15,
                        backend="auto", n_workers=4)
        settings.update(overrides)
        return ServeConfig(**settings)

    def test_batched_throughput_beats_sequential(self, workload):
        with AssertService(self.config(result_cache=False)) as service:
            sequential = run_load(service, workload, concurrency=1,
                                  label="sequential")
            seq_solved = service.stats().solved
        with AssertService(self.config(result_cache=False)) as service:
            batched = run_load(service, workload, concurrency=24,
                               label="batched")
            batch_stats = service.stats()
        # Structural win first (not wall-clock-flaky): 24 sequential
        # solves collapse to one per unique design per batch.
        assert seq_solved == len(workload)
        assert batch_stats.solved < len(workload) // 2
        assert batch_stats.deduped > 0
        # And the acceptance-criterion throughput ratio.
        assert batched.req_per_sec >= 2.0 * sequential.req_per_sec
        # Responses stay byte-identical across serving modes.
        assert [r.to_json() for r in batched.responses] == \
               [r.to_json() for r in sequential.responses]

    def test_repeat_workload_served_from_cache(self, workload):
        # Start from a genuinely cold process state: earlier tests leave
        # the process-wide compile cache (and with it the compiled-tier
        # program cache) warm for this very workload, which would deflate
        # the cold pass the 5x floor is measured against.
        default_compile_cache().clear()
        with AssertService(self.config(result_cache=True)) as service:
            cold = run_load(service, workload, concurrency=24, label="cold")
            warm = run_load(service, workload, concurrency=24, label="warm")
            stats = service.stats()
        # The repeat pass recomputes nothing...
        assert stats.solved <= len({r.cache_key() for r in workload})
        assert stats.cache_hits > 0
        # ...and is dramatically faster (acceptance floor: 5x).
        assert warm.req_per_sec >= 5.0 * cold.req_per_sec
        assert [r.to_json() for r in warm.responses] == \
               [r.to_json() for r in cold.responses]


class TestConfigValidation:
    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(backend="quantum")

    @pytest.mark.parametrize("field,value", [
        ("max_queue", 0), ("max_batch", 0), ("n_workers", 0),
        ("cache_entries", 0), ("batch_window_ms", -1.0)])
    def test_bad_numbers_rejected(self, field, value):
        with pytest.raises(ValueError):
            ServeConfig(**{field: value})

    def test_bad_options_rejected_at_submit(self):
        service = AssertService(ServeConfig())
        try:
            with pytest.raises(ValueError):
                service.submit(SolveRequest(
                    MINI_SOURCE, SolveOptions(hallucination_rate=2.0)))
        finally:
            service.close()

    @pytest.mark.parametrize("hints", [
        ((b"name", "y == 1", None, 0, "msg"),),   # non-str name
        (("name", "y == 1", None, "0", "msg"),),  # non-int delay
        (("name", "y == 1"),),                    # wrong arity
        (42,),                                    # not a tuple at all
    ])
    def test_malformed_hints_rejected_before_enqueue(self, hints):
        # Un-canonicalizable hints must fail loudly at submit(), never
        # inside the batcher thread where they would strand the future.
        service = AssertService(ServeConfig())
        try:
            with pytest.raises(ValueError):
                service.submit(SolveRequest(MINI_SOURCE,
                                            SolveOptions(hints=hints)))
        finally:
            service.close()

    def test_close_fails_unserved_futures(self):
        # Never started: close() must fail queued futures, not hang them.
        service = AssertService(ServeConfig())
        future = service.submit(fast_request(MINI_SOURCE))
        service.close()
        with pytest.raises(ServiceClosed):
            future.result(timeout=5)
        assert service.stats().errors == 1

    def test_pipeline_config_plumbs_serve_config(self):
        from repro.core.api import PipelineConfig

        config = PipelineConfig(n_workers=3, seed=99)
        serve = config.serve(max_batch=5)
        assert serve.n_workers == 3
        assert serve.seed == 99
        assert serve.max_batch == 5
        service = config.make_service()
        try:
            assert service.config.n_workers == 3
        finally:
            service.close()


class TestEngineWarm:
    def test_warm_is_idempotent_and_serial_safe(self):
        from repro.engine import ExecutionEngine

        with ExecutionEngine(n_workers=1, backend="serial") as engine:
            engine.warm()
            engine.warm()
            assert engine.map(_identity, [1, 2, 3]) == [1, 2, 3]

    def test_warm_starts_thread_pool(self):
        from repro.engine import ExecutionEngine

        with ExecutionEngine(n_workers=2, backend="thread") as engine:
            engine.warm()
            assert engine._pool is not None
            assert engine.map(_identity, [4, 5]) == [4, 5]

    def test_warm_actually_spawns_process_workers(self):
        # Executors spawn workers lazily on submit; warm() must force
        # the spawn, or the first request still pays pool startup.
        from repro.engine import ExecutionEngine

        with ExecutionEngine(n_workers=2, backend="process") as engine:
            engine.warm()
            assert len(engine._pool._processes) >= 1
            assert engine.map(_identity, [6]) == [6]


def _identity(x):
    return x


class TestBatcherUnit:
    """MicroBatcher in isolation, with an instrumented flush."""

    def test_flush_error_does_not_kill_consumer(self):
        import queue as queue_mod

        from repro.serve.batcher import MicroBatcher

        source: "queue_mod.Queue" = queue_mod.Queue()
        seen = []

        def flush(batch, reason):
            if len(seen) == 0:
                seen.append("boom")
                raise RuntimeError("first flush explodes")
            seen.append(list(batch))

        batcher = MicroBatcher(source, flush, max_batch=2, window_s=0.01)
        batcher.start()
        try:
            source.put("a")
            source.put("b")
            deadline = time.monotonic() + 5
            while batcher.stats.batches < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            source.put("c")
            deadline = time.monotonic() + 5
            while batcher.stats.batches < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            batcher.stop()
        assert batcher.stats.flush_errors == 1
        assert ["c"] in seen  # the consumer survived and kept flushing

    def test_invalid_parameters(self):
        import queue as queue_mod

        from repro.serve.batcher import MicroBatcher

        with pytest.raises(ValueError):
            MicroBatcher(queue_mod.Queue(), lambda b, r: None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(queue_mod.Queue(), lambda b, r: None, window_s=-1)


class TestMining:
    def test_mine_invariant_hints_shape(self):
        from repro.sva.mine import mine_invariant_hints
        from repro.verilog.compile import compile_source

        design = compile_source(MINI_SOURCE).design
        hints = mine_invariant_hints(design)
        assert [h.name for h in hints] == ["mined_y_def"]
        assert hints[0].consequent == "y == (a & b)"

    def test_mining_requires_clock_convention(self):
        from repro.sva.mine import mine_invariant_hints
        from repro.verilog.compile import compile_source

        source = ("module nc (input a, input b, output wire y);\n"
                  "  assign y = a | b;\nendmodule\n")
        design = compile_source(source).design
        assert mine_invariant_hints(design) == []

    def test_mined_proposals_round_trip_via_corpus(self):
        """Mined hints on a corpus design validate like template hints."""
        design = CorpusGenerator(seed=5).generate_one("counter")
        request = SolveRequest(design.source,
                               SolveOptions(mine_hints=True, **FAST))
        with AssertService(ServeConfig()) as service:
            response = service.solve(request, timeout=120)
        assert response.ok  # mined or empty, but never a crash


class TestDeadlines:
    """``SolveOptions.deadline_ms``: a request that exceeds its deadline —
    waiting in the queue or riding a batch — resolves to a structured
    ``timeout`` response instead of blocking ``result()`` forever."""

    def test_expired_in_queue_resolves_to_timeout(self):
        service = AssertService(ServeConfig(batch_window_ms=1.0))
        request = fast_request(MINI_SOURCE, deadline_ms=10.0)
        future = service.submit(request)
        time.sleep(0.05)  # expires while the consumer is not yet running
        try:
            service.start()
            response = future.result(timeout=10)
        finally:
            service.close()
        assert response.status == "timeout"
        assert not response.ok
        assert "deadline" in response.error
        assert response.request_key == request.cache_key()
        assert service.stats().timeouts == 1

    def test_generous_deadline_succeeds(self):
        with AssertService(ServeConfig()) as service:
            response = service.solve(
                fast_request(MINI_SOURCE, deadline_ms=60_000.0), timeout=60)
            assert response.ok
            assert service.stats().timeouts == 0

    def test_deadline_is_not_part_of_the_content_key(self):
        tight = fast_request(MINI_SOURCE, deadline_ms=5.0)
        loose = fast_request(MINI_SOURCE, deadline_ms=5_000.0)
        plain = fast_request(MINI_SOURCE)
        assert tight.cache_key() == loose.cache_key() == plain.cache_key()

    def test_timeout_responses_are_not_cached(self):
        service = AssertService(ServeConfig(batch_window_ms=1.0))
        expired = service.submit(fast_request(MINI_SOURCE, deadline_ms=5.0))
        time.sleep(0.05)
        try:
            service.start()
            assert expired.result(timeout=10).status == "timeout"
            # The same design solved afresh must not see a stale timeout.
            clean = service.solve(fast_request(MINI_SOURCE), timeout=60)
        finally:
            service.close()
        assert clean.ok
        assert service.stats().timeouts == 1

    def test_deadline_validation(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            SolveOptions(deadline_ms=0).validate()
        with pytest.raises(ValueError, match="deadline_ms"):
            SolveOptions(deadline_ms=-5.0).validate()
        SolveOptions(deadline_ms=None).validate()  # default: no deadline


class TestTimerDeadlines:
    """The monotonic-deadline timer wheel: an expired request fails
    *while it still waits* — before any batch flush, even before the
    service starts — instead of at flush time (PR 4's first cut)."""

    def test_queued_expiry_fires_before_any_flush(self):
        # Batch window and size chosen so no flush can possibly happen
        # before the deadline: only the timer can resolve this future.
        config = ServeConfig(max_batch=64, batch_window_ms=30_000)
        with AssertService(config) as service:
            future = service.submit(
                fast_request(MINI_SOURCE, deadline_ms=30.0))
            response = future.result(timeout=5)
            stats = service.stats()
        assert response.status == "timeout"
        assert "deadline" in response.error
        assert stats.batches == 0  # timer-driven: no flush had occurred
        assert stats.timeouts == 1

    def test_expiry_fires_even_before_start(self):
        # The timer starts with the first deadline-carrying submit, not
        # with the consumer: a never-started service still times out.
        service = AssertService(ServeConfig())
        try:
            future = service.submit(
                fast_request(MINI_SOURCE, deadline_ms=20.0))
            response = future.result(timeout=5)
            assert response.status == "timeout"
            assert service.stats().timeouts == 1
        finally:
            service.close()

    def test_expired_request_is_never_computed(self):
        # The dead entry still travels through the queue, but its batch
        # slot must not waste compute on a response nobody will get.
        service = AssertService(ServeConfig(batch_window_ms=1.0))
        future = service.submit(fast_request(MINI_SOURCE, deadline_ms=5.0))
        assert future.result(timeout=5).status == "timeout"
        try:
            service.start()
            deadline = time.monotonic() + 5
            while service.stats().batches < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            assert service.stats().solved == 0
        finally:
            service.close()


class TestCancellation:
    """Client-initiated cancellation via ``AssertService.cancel``."""

    def tagged(self, request_id: str) -> SolveRequest:
        return SolveRequest(MINI_SOURCE, SolveOptions(**FAST),
                            request_id=request_id)

    def test_cancel_queued_request_drops_it(self):
        service = AssertService(ServeConfig())  # not started: stays queued
        request = self.tagged("job-1")
        future = service.submit(request)
        assert service.cancel("job-1") == 1
        response = future.result(timeout=5)
        assert response.status == "cancelled"
        assert not response.ok
        assert response.request_key == request.cache_key()
        try:
            service.start()
            deadline = time.monotonic() + 5
            while service.stats().batches < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            stats = service.stats()
            assert stats.cancelled == 1
            assert stats.solved == 0  # dropped before any compute
            assert stats.inflight == 0
        finally:
            service.close()

    def test_cancel_unknown_or_untagged(self):
        service = AssertService(ServeConfig())
        try:
            service.submit(fast_request(MINI_SOURCE))  # no request_id
            assert service.cancel("nope") == 0
            assert service.cancel("") == 0
        finally:
            service.close()

    def test_cancel_resolves_each_request_once(self):
        service = AssertService(ServeConfig())
        try:
            service.submit(self.tagged("dup"))
            service.submit(self.tagged("dup"))
            assert service.cancel("dup") == 2
            assert service.cancel("dup") == 0  # nothing left to cancel
            assert service.stats().cancelled == 2
        finally:
            service.close()

    def test_cancel_racing_batch_is_cached_but_not_delivered(self):
        # Cancel lands after the batch formed and compute began: the
        # client's future resolves to ``cancelled`` immediately, while
        # the computed response still lands in the result cache — it is
        # a valid answer for future repeats of the same content.
        config = ServeConfig(batch_window_ms=1.0, result_cache=True)
        service = AssertService(config).start()
        try:
            real_map = service._engine.map
            compute_started = threading.Event()
            release = threading.Event()

            def gated_map(fn, tasks, **kwargs):
                compute_started.set()
                assert release.wait(10), "flush never released"
                return real_map(fn, tasks, **kwargs)

            service._engine.map = gated_map
            future = service.submit(self.tagged("race"))
            assert compute_started.wait(10)  # batch formed, compute running
            assert service.cancel("race") == 1
            assert future.result(timeout=5).status == "cancelled"
            release.set()
            deadline = time.monotonic() + 10
            while service.stats().solved < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.005)
            service._engine.map = real_map
            # The abandoned response was cached: a repeat of the same
            # content is a cache hit, not a recompute.
            repeat = service.solve(fast_request(MINI_SOURCE), timeout=60)
            stats = service.stats()
        finally:
            service.close()
        assert repeat.ok
        assert stats.solved == 1
        assert stats.cache_hits == 1
        assert stats.cancelled == 1


class TestSaturationGauges:
    def test_inflight_and_capacity_gauges(self):
        service = AssertService(ServeConfig(max_queue=8))
        futures = [service.submit(fast_request(MINI_SOURCE))
                   for _ in range(3)]
        stats = service.stats()
        assert stats.inflight == 3  # accepted, nothing resolved yet
        assert stats.queue_depth == 3
        assert stats.queue_capacity == 8
        try:
            service.start()
            for future in futures:
                assert future.result(timeout=60).ok
            assert service.stats().inflight == 0
        finally:
            service.close()

    def test_statsz_payload_without_store(self):
        with AssertService(ServeConfig()) as service:
            service.solve(fast_request(MINI_SOURCE), timeout=60)
            payload = service.statsz()
        assert payload["store"] is None
        for gauge in ("inflight", "queue_depth", "queue_capacity",
                      "cancelled", "timeouts", "submitted"):
            assert gauge in payload["service"]

    def test_statsz_payload_with_store(self):
        from repro.store import StoreConfig

        config = ServeConfig(store=StoreConfig())
        with AssertService(config) as service:
            service.solve(fast_request(MINI_SOURCE), timeout=60)
            payload = service.statsz()
        store_info = payload["store"]
        assert store_info is not None
        for counter in ("hits", "misses", "writes", "entries"):
            assert counter in store_info
