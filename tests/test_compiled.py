"""Differential fuzz: the compiled tier vs the AST interpreter.

``sim_mode`` is a pure execution knob, so every observable artifact —
traces, BMC verdicts, dataset bundle fingerprints, serve responses —
must be byte-identical between the two tiers.  This suite checks that
contract over *every* corpus template family, on golden and mutated
designs, serially and across a process pool.
"""

from __future__ import annotations

import random

import pytest

from repro.bugs.injector import BugInjector
from repro.corpus.generator import CorpusGenerator
from repro.corpus.registry import TEMPLATE_FAMILIES
from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine.rng import derive_rng
from repro.oracles.sva import SvaOracle
from repro.serve import AssertService, ServeConfig, SolveOptions, SolveRequest
from repro.sim import compiled as compiled_mod
from repro.sim.compiled import (
    SIM_MODES,
    CompiledSimulator,
    UnsupportedDesign,
    make_simulator,
)
from repro.sim.simulator import Simulator
from repro.sim.stimulus import reset_sequence, toggle_sequence
from repro.sva.bmc import BmcConfig, bounded_check, bounded_check_batch
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source

FAMILIES = sorted(TEMPLATE_FAMILIES)

#: Small search budget: verdict equivalence is the point, not coverage.
FAST_BMC = dict(depth=6, random_trials=4)


def _bmc(sim_mode: str) -> BmcConfig:
    return BmcConfig(sim_mode=sim_mode, **FAST_BMC)


@pytest.fixture(scope="module", params=FAMILIES)
def family_design(request):
    """One asserted design per corpus family: golden source + oracle SVAs."""
    seed = CorpusGenerator(seed=77).generate_one(family=request.param)
    oracle = SvaOracle(derive_rng(77, "test_compiled", request.param))
    proposals = oracle.propose(seed)
    blocks = [block for p in proposals for block in p.blocks()]
    result = compile_with_sva(seed.source, blocks)
    if not result.ok:  # pragma: no cover - depends on oracle output
        result = compile_source(seed.source)
        assert result.ok, result.failure_summary()
    return request.param, seed, result.design


class TestTraceEquivalence:
    def test_traces_identical(self, family_design):
        family, seed, design = family_design
        sim_c = make_simulator(design, "compiled")
        sim_i = make_simulator(design, "interp")
        assert isinstance(sim_i, Simulator)
        for stimulus in (toggle_sequence(design, 12, 0, 2),
                         toggle_sequence(design, 12, 1, 2),
                         reset_sequence(design, 12, random.Random(3), 2)):
            tc = sim_c.run(stimulus)
            ti = sim_i.run(stimulus)
            assert tc.signal_names == ti.signal_names, family
            assert tc.snapshots == ti.snapshots, family
            assert tc.inputs_applied == ti.inputs_applied, family


def _check_key(result):
    return (result.failed, result.stimuli_tried, result.sim_error,
            [f.log_line() for f in result.failures])


def _batch_key(result):
    return (result.failed_labels, result.error_labels,
            result.stimuli_tried, result.design_error)


class TestVerdictEquivalence:
    def test_bounded_check_identical(self, family_design):
        family, seed, design = family_design
        assert _check_key(bounded_check(design, _bmc("compiled"))) == \
            _check_key(bounded_check(design, _bmc("interp"))), family

    def test_bounded_check_batch_identical(self, family_design):
        family, seed, design = family_design
        assert _batch_key(bounded_check_batch(design, _bmc("compiled"))) == \
            _batch_key(bounded_check_batch(design, _bmc("interp"))), family

    def test_mutated_design_verdicts_identical(self, family_design):
        """Injected bugs produce counterexamples: FAIL verdicts must agree
        (including the failing cycle embedded in every log line)."""
        family, seed, design = family_design
        record = BugInjector(random.Random(5)).inject(seed.source, seed.name)
        if record is None:  # pragma: no cover - family with no mutation site
            pytest.skip(f"no mutation applies to {family}")
        oracle = SvaOracle(derive_rng(77, "test_compiled", family))
        blocks = [block for p in oracle.propose(seed) for block in p.blocks()]
        buggy = compile_with_sva(record.buggy_source, blocks)
        if not buggy.ok:  # pragma: no cover - mutation broke compilation
            pytest.skip(f"buggy {family} variant does not compile")
        assert _check_key(bounded_check(buggy.design, _bmc("compiled"))) == \
            _check_key(bounded_check(buggy.design, _bmc("interp"))), family
        assert _batch_key(
            bounded_check_batch(buggy.design, _bmc("compiled"))) == \
            _batch_key(
                bounded_check_batch(buggy.design, _bmc("interp"))), family


class TestPipelineFingerprint:
    COMMON = dict(n_designs=6, bugs_per_design=2, seed=31,
                  bmc_depth=6, bmc_random_trials=6)

    def test_bundle_fingerprint_identical_serial(self):
        interp = run_pipeline(DatagenConfig(sim_mode="interp", **self.COMMON))
        compiled = run_pipeline(DatagenConfig(sim_mode="compiled",
                                              **self.COMMON))
        assert interp.fingerprint() == compiled.fingerprint()

    def test_bundle_fingerprint_identical_process_pool(self):
        serial = run_pipeline(DatagenConfig(sim_mode="compiled",
                                            **self.COMMON))
        pooled = run_pipeline(DatagenConfig(sim_mode="compiled", n_workers=2,
                                            backend="process", **self.COMMON))
        assert serial.fingerprint() == pooled.fingerprint()


class TestServeEquivalence:
    def test_responses_byte_identical_across_modes(self):
        seeds = CorpusGenerator(seed=13).generate(3)
        requests = [SolveRequest(s.source,
                                 SolveOptions.for_design(
                                     s, bmc_depth=6, bmc_random_trials=6))
                    for s in seeds]
        bodies = {}
        for mode in SIM_MODES:
            config = ServeConfig(sim_mode=mode, result_cache=False)
            with AssertService(config) as service:
                futures = [service.submit(r) for r in requests]
                bodies[mode] = [f.result(timeout=120).to_json()
                                for f in futures]
        assert bodies["compiled"] == bodies["interp"]


class TestFallback:
    def test_unsupported_design_falls_back_to_interpreter(self, monkeypatch):
        def refuse(design):
            raise UnsupportedDesign("forced by test")

        monkeypatch.setattr(compiled_mod, "compile_program", refuse)
        seed = CorpusGenerator(seed=9).generate_one()
        design = compile_source(seed.source).design
        simulator = make_simulator(design, "compiled")
        assert isinstance(simulator, Simulator)
        assert not isinstance(simulator, CompiledSimulator)
        # The knob itself is validated.
        with pytest.raises(ValueError):
            make_simulator(design, "jit")

    def test_modes_registry(self):
        assert set(SIM_MODES) == {"compiled", "interp"}
