"""HTTP transport: server, client, status mapping, lifecycle over the wire.

Covers the transport contract:

- every ``SolveResponse`` status maps to its HTTP code (200/422/504/409)
  and every transport refusal to its own (400/413/429/503);
- the response body for a solved request is byte-identical to the
  in-process ``SolveResponse.to_json()`` for the same content hash —
  the transport must not fork determinism;
- backpressure surfaces as 429 with a ``Retry-After`` header;
- ``DELETE /v1/solve/{request_id}`` cancels queued work, and a client
  handle's ``cancel()`` round-trips it;
- graceful drain: a server closed mid-request still answers the
  in-flight client before releasing its sockets.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import pytest

from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    HttpConfig,
    ServeConfig,
    ServiceOverloaded,
    SolveOptions,
    SolveRequest,
    request_from_json,
    request_to_json,
    response_from_json,
)

MINI_SOURCE = """
module mini (
  input clk,
  input rst_n,
  input a,
  input b,
  output wire y
);
  assign y = a & b;
endmodule
"""

FAST = dict(bmc_depth=6, bmc_random_trials=8)


def fast_request(source: str, **overrides) -> SolveRequest:
    options = dict(FAST)
    options.update(overrides)
    return SolveRequest(source, SolveOptions(**options))


@contextmanager
def http_server(http_config: HttpConfig = None, **serve_overrides):
    """A started server + aimed client over a fresh service."""
    service = AssertService(ServeConfig(**serve_overrides))
    server = AssertHttpServer(service, http_config or HttpConfig())
    server.start()
    try:
        yield server, AssertClient.for_server(server)
    finally:
        server.close()


@pytest.fixture(scope="module")
def shared():
    """One server shared by the read-mostly tests."""
    with http_server() as (server, client):
        yield server, client


class TestSolveRoundTrip:
    def test_ok_response_parses(self, shared):
        _, client = shared
        response = client.solve(fast_request(MINI_SOURCE))
        assert response.ok
        assert response.proposals
        scores = [p.score for p in response.proposals]
        assert scores == sorted(scores, reverse=True)

    def test_http_body_byte_identical_to_in_process(self, shared):
        # The acceptance criterion: for one request content hash, the
        # bytes on the wire ARE the in-process serialization.
        server, client = shared
        request = fast_request(MINI_SOURCE)
        status, _, body = client._request(
            "POST", "/v1/solve", request_to_json(request).encode("utf-8"))
        assert status == 200
        in_process = server.service.solve(request, timeout=60)
        assert body == in_process.to_json().encode("utf-8")
        # And the client's parse round-trips to the same bytes.
        assert response_from_json(body.decode()).to_json().encode() == body

    def test_compile_error_maps_to_422(self, shared):
        server, client = shared
        status, _, body = client._request(
            "POST", "/v1/solve",
            request_to_json(SolveRequest("utter garbage ;;;")).encode())
        assert status == 422
        response = response_from_json(body.decode())
        assert response.status == "compile_error"
        assert response.error  # compiler diagnostics travel the wire
        # 422 bodies are byte-deterministic too.
        in_process = server.service.solve(
            SolveRequest("utter garbage ;;;"), timeout=60)
        assert body == in_process.to_json().encode("utf-8")

    def test_solve_returns_structured_compile_error(self, shared):
        _, client = shared
        response = client.solve("module broken (")
        assert response.status == "compile_error"
        assert not response.ok


class TestMalformedRequests:
    @pytest.mark.parametrize("body", [
        b"{not json",
        b"[1, 2, 3]",
        b'"just a string"',
        b'{"options": {}}',                              # no design_source
        b'{"design_source": 42}',                        # wrong type
        b'{"design_source": ""}',                        # empty
        b'{"design_source": "module m; endmodule", "surprise": 1}',
        b'{"design_source": "module m; endmodule", '
        b'"options": {"unknown_knob": 1}}',
        b'{"design_source": "module m; endmodule", '
        b'"options": {"hallucination_rate": 2.0}}',      # fails validate()
        b'{"design_source": "module m; endmodule", '
        b'"options": {"hints": [["short"]]}}',           # malformed hint
    ])
    def test_maps_to_400(self, shared, body):
        _, client = shared
        status, _, data = client._request("POST", "/v1/solve", body)
        assert status == 400
        assert b"error" in data

    def test_client_raises_value_error_on_400(self, shared):
        _, client = shared
        with pytest.raises(ValueError, match="400"):
            client.solve(SolveRequest(MINI_SOURCE,
                                      SolveOptions(hallucination_rate=2.0)))

    def test_unknown_endpoints_404(self, shared):
        _, client = shared
        for method, path in (("GET", "/nope"), ("POST", "/v1/other"),
                             ("DELETE", "/v1/unknown/x")):
            status, _, _ = client._request(method, path)
            assert status == 404

    @pytest.mark.parametrize("length", ["-5", "-1", "nonsense", ""])
    def test_bad_content_length_maps_to_400(self, shared, length):
        # A negative or unparsable Content-Length must be a structured
        # 400, never a handler crash or a read-until-timeout stall.
        import http.client

        _, client = shared
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/v1/solve")
            conn.putheader("Content-Type", "application/json")
            if length:
                conn.putheader("Content-Length", length)
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            conn.close()

    def test_oversized_body_maps_to_413(self):
        with http_server(HttpConfig(max_body_bytes=256)) as (_, client):
            request = fast_request(MINI_SOURCE)  # well over 256 bytes
            status, _, _ = client._request(
                "POST", "/v1/solve", request_to_json(request).encode())
            assert status == 413
            with pytest.raises(ValueError, match="413"):
                client.solve(request)


class TestDeadlineOverHttp:
    def test_expired_request_maps_to_504_before_any_flush(self):
        # Window so long only the deadline timer can resolve the
        # request: the 504 proves timer-driven expiry works end to end.
        with http_server(max_batch=64, batch_window_ms=30_000) \
                as (server, client):
            status, _, body = client._request(
                "POST", "/v1/solve",
                request_to_json(
                    fast_request(MINI_SOURCE, deadline_ms=40.0)).encode())
            assert status == 504
            response = response_from_json(body.decode())
            assert response.status == "timeout"
            assert server.service.stats().batches == 0
            assert server.service.stats().timeouts == 1


class TestBackpressureOverHttp:
    def test_queue_full_maps_to_429_and_delete_frees_it(self):
        # The service is never started (manage_service=False), so its
        # 1-slot queue cannot drain: the first request parks, the
        # second must bounce with 429 + Retry-After.
        service = AssertService(ServeConfig(max_queue=1))
        server = AssertHttpServer(service, HttpConfig(),
                                  manage_service=False)
        server.start()
        client = AssertClient.for_server(server)
        try:
            handle = client.submit(SolveRequest(
                MINI_SOURCE, SolveOptions(**FAST), request_id="stuck"))
            deadline = time.monotonic() + 5
            while service.stats().queue_depth < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.002)
            assert service.stats().queue_depth == 1

            status, headers, _ = client._request(
                "POST", "/v1/solve",
                request_to_json(fast_request(MINI_SOURCE)).encode())
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            with pytest.raises(ServiceOverloaded):
                client.solve(fast_request(MINI_SOURCE))

            # Client-initiated cancellation frees the parked request:
            # its in-flight POST resolves to 409/cancelled.
            assert handle.cancel() == 1
            response = handle.result(timeout=5)
            assert response.status == "cancelled"
            assert service.stats().cancelled == 1
            assert handle.cancel() == 0  # nothing left under that tag
        finally:
            server.close()
            service.close()

    def test_delete_unknown_request_id_404(self, shared):
        _, client = shared
        status, _, body = client._request("DELETE", "/v1/solve/never-seen")
        assert status == 404
        assert b'"cancelled": 0' in body
        assert client.cancel("never-seen") == 0


class TestOperatorEndpoints:
    def test_healthz(self, shared):
        _, client = shared
        payload = client.healthz()
        assert payload["http_status"] == 200
        assert payload["status"] == "ok"

    def test_statsz_exposes_gauges_and_store(self, shared):
        _, client = shared
        client.solve(fast_request(MINI_SOURCE))
        payload = client.statsz()
        service_stats = payload["service"]
        for gauge in ("inflight", "queue_depth", "queue_capacity",
                      "cancelled", "timeouts", "submitted", "cache_hits"):
            assert gauge in service_stats
        assert service_stats["submitted"] >= 1
        assert "store" in payload  # None without a configured store


class TestLifecycle:
    def test_graceful_drain_answers_inflight_requests(self):
        service = AssertService(ServeConfig(batch_window_ms=5))
        server = AssertHttpServer(service, HttpConfig()).start()
        client = AssertClient.for_server(server)
        handle = client.submit(fast_request(MINI_SOURCE))
        deadline = time.monotonic() + 5
        while service.stats().inflight < 1 and time.monotonic() < deadline:
            time.sleep(0.002)
        server.close()  # drain: in-flight work is answered, not reset
        response = handle.result(timeout=10)
        assert response.ok
        # ...and afterwards the socket is really gone.
        with pytest.raises(OSError):
            client.healthz()

    def test_drain_grace_bounds_close_on_unmanaged_service(self):
        # manage_service=False and a service that will never resolve the
        # parked request: close() must reclaim the blocked handler after
        # drain_grace_s (503 to that client) instead of hanging until
        # the server's full wait budget.
        service = AssertService(ServeConfig())  # never started
        server = AssertHttpServer(
            service, HttpConfig(default_timeout_s=120, drain_grace_s=0.5),
            manage_service=False)
        server.start()
        client = AssertClient.for_server(server)
        handle = client.submit(fast_request(MINI_SOURCE))
        deadline = time.monotonic() + 5
        while service.stats().inflight < 1 and time.monotonic() < deadline:
            time.sleep(0.002)
        started = time.monotonic()
        server.close()
        assert time.monotonic() - started < 30  # bounded, not 120s
        from repro.serve import ServiceClosed

        with pytest.raises(ServiceClosed, match="drained"):
            handle.result(timeout=5)
        service.close()

    def test_close_is_idempotent(self):
        service = AssertService(ServeConfig())
        server = AssertHttpServer(service, HttpConfig()).start()
        server.close()
        server.close()

    def test_pipeline_config_serve_http(self):
        from repro.core.api import PipelineConfig

        server = PipelineConfig(n_workers=2, seed=7).serve_http(
            max_batch=4)
        assert server.service.config.n_workers == 2
        assert server.service.config.seed == 7
        assert server.service.config.max_batch == 4
        try:
            server.start()
            assert AssertClient.for_server(server).healthz()["status"] == "ok"
        finally:
            server.close()


class TestWireCodecs:
    def test_request_round_trip(self):
        request = SolveRequest(
            MINI_SOURCE,
            SolveOptions(hints=(("n", "y == 1", None, 0, "msg"),),
                         mine_hints=False, max_proposals=3,
                         hallucination_rate=0.25, bmc_depth=7,
                         bmc_random_trials=9, deadline_ms=1500.0),
            request_id="abc")
        decoded = request_from_json(request_to_json(request).encode())
        assert decoded == request
        assert decoded.cache_key() == request.cache_key()

    def test_decoded_defaults_match_python_defaults(self):
        decoded = request_from_json(
            b'{"design_source": "module m; endmodule"}')
        assert decoded.options == SolveOptions()
        assert decoded.request_id == ""
