"""Def-use graph and fan-in cone analysis."""

from repro.verilog.analysis import DefUse
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module

SOURCE = """
module chain (input clk, input rst_n, input a, input en, output wire out);
  reg s1;
  reg s2;
  wire mid;
  assign mid = s1 & a;
  assign out = s2;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      s1 <= 1'b0;
      s2 <= 1'b0;
    end
    else if (en) begin
      s1 <= a;
      s2 <= mid;
    end
  end
endmodule
"""


def make():
    canonical = write_module(parse_module(SOURCE))
    return parse_module(canonical), canonical


class TestDefUse:
    def test_direct_drivers(self):
        module, _ = make()
        defuse = DefUse(module)
        assert defuse.drivers["mid"] == {"s1", "a"}
        assert defuse.drivers["out"] == {"s2"}

    def test_guard_signals_counted_as_drivers(self):
        module, _ = make()
        defuse = DefUse(module)
        # s1's update is gated by rst_n and en.
        assert {"en", "rst_n", "a"} <= defuse.drivers["s1"]

    def test_def_lines_sorted(self):
        module, _ = make()
        defuse = DefUse(module)
        for lines in defuse.def_lines.values():
            assert lines == sorted(lines)

    def test_fanin_cone_transitive(self):
        module, _ = make()
        defuse = DefUse(module)
        cone = defuse.fanin_cone(["out"])
        assert {"out", "s2", "mid", "s1", "a"} <= cone

    def test_cone_of_input_is_itself(self):
        module, _ = make()
        defuse = DefUse(module)
        assert defuse.fanin_cone(["a"]) == {"a"}

    def test_cone_lines_are_definition_or_guard_sites(self):
        module, canonical = make()
        defuse = DefUse(module)
        lines = defuse.cone_lines(["out"])
        text = canonical.splitlines()
        for line in lines:
            # Every cone line assigns something or gates an assignment.
            content = text[line - 1]
            assert ("<=" in content or "assign" in content
                    or "if" in content), content

    def test_guard_lines_in_cone(self):
        module, canonical = make()
        defuse = DefUse(module)
        lines = defuse.cone_lines(["out"])
        guard_line = next(i for i, t in enumerate(canonical.splitlines())
                          if "else if (en)" in t) + 1
        assert guard_line in lines

    def test_depth_limit_respected(self):
        module, _ = make()
        defuse = DefUse(module)
        shallow = defuse.fanin_cone(["out"], max_depth=1)
        assert "s2" in shallow
        assert "a" not in shallow  # a is 3 hops away
