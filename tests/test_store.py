"""Persistent artifact store: integrity, eviction, concurrency, wiring.

The store's contract is deliberately strict, so the tests are too:

- writes are atomic (tempfile + rename): a reader — even in another
  process — sees the old blob or the new blob, never a torn one;
- a corrupted or truncated entry is *never served*: digest-verified
  reads quarantine it and count a miss (regression: deliberately
  bit-flipped blobs);
- eviction keeps total bytes under budget, least-recently-used first;
- the tiers compose: CompileCache / ResultCache spill to and refill
  from a backing store with consistent monotonic counters, and a warm
  pipeline re-run against a populated DiskStore reproduces the cold
  run's ``DatasetBundle.fingerprint()`` byte for byte.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.serve import AssertService, ResultCache, ServeConfig, SolveOptions, SolveRequest
from repro.store import (
    NS_COMPILE,
    NS_SERVE,
    NS_STAGE,
    DiskStore,
    MemoryStore,
    StoreConfig,
    TieredStore,
    content_key,
    unit_memo_key,
)
from repro.verilog.compile import CompileCache

GOLDEN = """
module and_gate (
  input clk,
  input a,
  input b,
  output wire y
);
  assign y = a & b;
endmodule
"""

BROKEN = "module broken (\n  input a\n;\nendmodule\n"

#: Tiny-but-real pipeline scale: behaviour, not statistical power.
PIPELINE_KNOBS = dict(n_designs=4, bugs_per_design=2, bmc_depth=4,
                      bmc_random_trials=4)


def fill(store, count: int, size: int = 64, namespace: str = NS_STAGE,
         prefix: str = "entry"):
    keys = []
    for i in range(count):
        key = content_key(f"{prefix}-{i}")
        store.put(namespace, key, "x" * size)
        keys.append(key)
    return keys


class TestContentAddressing:
    def test_content_key_is_stable_and_collision_free(self):
        assert content_key("a", "b") == content_key("a", "b")
        assert content_key("ab", "c") != content_key("a", "bc")
        assert content_key("a") != content_key("a", "")

    def test_unit_memo_key_separates_every_component(self):
        base = unit_memo_key("stage1", "mod", "digest", 1)
        assert unit_memo_key("stage2", "mod", "digest", 1) != base
        assert unit_memo_key("stage1", "mod2", "digest", 1) != base
        assert unit_memo_key("stage1", "mod", "other", 1) != base
        assert unit_memo_key("stage1", "mod", "digest", 2) != base
        assert unit_memo_key("stage1", "mod", "digest", 1, 0) != base

    def test_namespace_and_key_validation(self, tmp_path):
        store = DiskStore(tmp_path)
        with pytest.raises(ValueError, match="namespace"):
            store.get("../escape", content_key("x"))
        with pytest.raises(ValueError, match="hex"):
            store.get(NS_STAGE, "../../etc/passwd")
        with pytest.raises(ValueError, match="hex"):
            store.put(NS_STAGE, "UPPER", 1)


class TestMemoryStore:
    def test_roundtrip_and_counters(self):
        store = MemoryStore(max_entries=8)
        key = content_key("k")
        assert store.get(NS_STAGE, key) is None
        store.put(NS_STAGE, key, {"v": 1})
        assert store.get(NS_STAGE, key) == {"v": 1}
        assert store.counters() == {"hits": 1, "misses": 1, "writes": 1,
                                    "evictions": 0, "corrupt": 0}

    def test_lru_eviction_prefers_recently_used(self):
        store = MemoryStore(max_entries=2)
        a, b = fill(store, 2)
        assert store.get(NS_STAGE, a) is not None  # a is now most recent
        c = content_key("entry-c")
        store.put(NS_STAGE, c, "z")
        assert store.get(NS_STAGE, b) is None
        assert store.get(NS_STAGE, a) is not None
        assert store.evictions == 1

    def test_namespaces_do_not_collide(self):
        store = MemoryStore()
        key = content_key("shared")
        store.put(NS_COMPILE, key, "compile")
        store.put(NS_SERVE, key, "serve")
        assert store.get(NS_COMPILE, key) == "compile"
        assert store.get(NS_SERVE, key) == "serve"


class TestDiskStore:
    def test_roundtrip_persists_across_instances(self, tmp_path):
        key = content_key("payload")
        DiskStore(tmp_path).put(NS_STAGE, key, {"nested": [1, "two"]})
        fresh = DiskStore(tmp_path)
        assert fresh.get(NS_STAGE, key) == {"nested": [1, "two"]}
        assert fresh.hits == 1

    def test_put_leaves_no_tempfiles(self, tmp_path):
        store = DiskStore(tmp_path)
        fill(store, 5)
        leftovers = [p for p in tmp_path.rglob(".tmp-*")]
        assert leftovers == []

    def test_bitflip_is_quarantined_never_served(self, tmp_path):
        """Regression: a corrupted on-disk entry counts as a miss and is
        deleted — it must never raise into (or reach) the caller."""
        store = DiskStore(tmp_path)
        key = content_key("victim")
        store.put(NS_STAGE, key, "precious")
        path = store._blob_path(NS_STAGE, key)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x40  # flip one payload bit
        path.write_bytes(bytes(blob))

        fresh = DiskStore(tmp_path)
        assert fresh.get(NS_STAGE, key) is None
        assert fresh.corrupt == 1
        assert fresh.misses == 1
        assert not path.exists(), "quarantine must remove the entry"
        # The slot is immediately reusable.
        fresh.put(NS_STAGE, key, "recovered")
        assert fresh.get(NS_STAGE, key) == "recovered"

    def test_truncated_blob_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        key = content_key("short")
        store.put(NS_STAGE, key, list(range(100)))
        path = store._blob_path(NS_STAGE, key)
        path.write_bytes(path.read_bytes()[:-7])
        assert store.get(NS_STAGE, key) is None
        assert store.corrupt == 1
        assert not path.exists()

    def test_garbage_file_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        key = content_key("garbage")
        path = store._blob_path(NS_STAGE, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a store blob at all")
        assert store.get(NS_STAGE, key) is None
        assert store.corrupt == 1

    def test_unpickled_garbage_payload_is_a_miss(self, tmp_path):
        """A verifying header over an unloadable payload (schema drift,
        hostile write) is still corruption, not an exception."""
        import hashlib

        store = DiskStore(tmp_path)
        key = content_key("drift")
        payload = b"\x80\x04stream-that-is-not-a-pickle."
        header = b" ".join((b"repro-store/1",
                            hashlib.sha256(payload).hexdigest().encode(),
                            str(len(payload)).encode())) + b"\n"
        path = store._blob_path(NS_STAGE, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(header + payload)
        assert store.get(NS_STAGE, key) is None
        assert store.corrupt == 1

    def test_inflight_tempfile_is_invisible(self, tmp_path):
        """A crashed writer's partial tempfile is never read as an entry."""
        store = DiskStore(tmp_path)
        key = content_key("inflight")
        path = store._blob_path(NS_STAGE, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        (path.parent / ".tmp-abandoned").write_bytes(b"partial write")
        assert store.get(NS_STAGE, key) is None
        assert store.corrupt == 0  # a missing entry, not a corrupt one

    def test_size_budgeted_lru_eviction(self, tmp_path):
        store = DiskStore(tmp_path, max_bytes=1500)
        keys = fill(store, 12, size=200)
        assert store.total_bytes() <= 1500
        assert store.evictions > 0
        # Newest entries survive; oldest were evicted.
        assert store.get(NS_STAGE, keys[-1]) is not None
        assert store.get(NS_STAGE, keys[0]) is None

    def test_recently_read_entries_survive_eviction(self, tmp_path):
        store = DiskStore(tmp_path, max_bytes=1200)
        keys = fill(store, 4, size=200)
        for round_no in range(3):
            assert store.get(NS_STAGE, keys[0]) is not None  # keep hot
            fill(store, 1, size=200, prefix=f"extra-{round_no}")
        assert store.get(NS_STAGE, keys[0]) is not None

    def test_corrupt_index_rebuilds_by_scanning(self, tmp_path):
        store = DiskStore(tmp_path)
        key = content_key("survivor")
        store.put(NS_STAGE, key, "alive")
        (tmp_path / "index.json").write_text("{ not json !")
        fresh = DiskStore(tmp_path)
        assert fresh.get(NS_STAGE, key) == "alive"
        assert fresh.total_bytes() > 0

    def test_clear_empties_store(self, tmp_path):
        store = DiskStore(tmp_path)
        keys = fill(store, 3)
        store.clear()
        assert len(store) == 0
        assert store.get(NS_STAGE, keys[0]) is None


class TestConcurrentWriters:
    def test_threads_racing_on_shared_keys(self, tmp_path):
        """Readers must observe complete values or misses, never torn or
        mixed writes — under contention on the same keys."""
        store = DiskStore(tmp_path)
        keys = [content_key(f"slot-{i}") for i in range(4)]
        errors = []

        def worker(worker_id: int):
            try:
                for round_no in range(25):
                    for key in keys:
                        # Every writer writes the same value per key:
                        # content addressing means a key determines its
                        # payload, as in real (content-hash) usage.
                        store.put(NS_STAGE, key, f"value-for-{key}")
                        got = store.get(NS_STAGE, key)
                        if got is not None and got != f"value-for-{key}":
                            errors.append((worker_id, round_no, got))
            except Exception as exc:  # noqa: BLE001
                errors.append((worker_id, repr(exc)))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for key in keys:
            assert store.get(NS_STAGE, key) == f"value-for-{key}"

    def test_two_instances_share_one_directory(self, tmp_path):
        """Separate handles (stand-ins for separate processes) interleave
        writes safely: atomic renames govern visibility."""
        a, b = DiskStore(tmp_path), DiskStore(tmp_path)
        key_a, key_b = content_key("from-a"), content_key("from-b")
        a.put(NS_STAGE, key_a, "A")
        b.put(NS_STAGE, key_b, "B")
        assert a.get(NS_STAGE, key_b) == "B"
        assert b.get(NS_STAGE, key_a) == "A"
        # Same-key writes from both handles: last complete write wins,
        # readers never see a blend.
        shared = content_key("shared")
        a.put(NS_STAGE, shared, "same")
        b.put(NS_STAGE, shared, "same")
        assert DiskStore(tmp_path).get(NS_STAGE, shared) == "same"


def blob_bytes_on_disk(root) -> int:
    """Combined blob bytes as the filesystem sees them (all writers)."""
    return sum(p.stat().st_size for p in root.rglob("*")
               if p.is_file() and p.name != "index.json"
               and not p.name.startswith(".tmp-")
               and p.name != ".compact-lock")


class TestCrossProcessBudget:
    """Regression: long-lived instances each enforce ``max_bytes`` from
    their *own* index (which stops seeing foreign writes after load), so
    a fleet's combined writes used to exceed the budget unboundedly.
    ``compact()`` closes this with a lock-file-guarded rescan+evict."""

    BUDGET = 4_000

    def two_writers(self, tmp_path, count: int = 12, size: int = 300):
        # Both handles load from an empty directory, then interleave:
        # neither index ever sees the other's writes.
        a = DiskStore(tmp_path, max_bytes=self.BUDGET, compact_every=0)
        b = DiskStore(tmp_path, max_bytes=self.BUDGET, compact_every=0)
        for i in range(count):
            a.put(NS_STAGE, content_key(f"writer-a-{i}"), "x" * size)
            b.put(NS_STAGE, content_key(f"writer-b-{i}"), "y" * size)
        return a, b

    def test_combined_writes_exceed_budget_without_compaction(self, tmp_path):
        a, b = self.two_writers(tmp_path)
        # Each instance believes it is under budget...
        assert a.total_bytes() <= self.BUDGET
        assert b.total_bytes() <= self.BUDGET
        # ...while the directory holds roughly twice the budget: the bug.
        assert blob_bytes_on_disk(tmp_path) > self.BUDGET

    def test_compact_restores_combined_budget(self, tmp_path):
        a, _ = self.two_writers(tmp_path)
        evicted = a.compact()
        assert evicted > 0
        assert blob_bytes_on_disk(tmp_path) <= self.BUDGET
        assert a.counters()["compactions"] == 1
        # The reconciled index now covers every surviving blob, and the
        # persisted index lets a fresh handle see the true total.
        assert a.total_bytes() == blob_bytes_on_disk(tmp_path)
        fresh = DiskStore(tmp_path, max_bytes=self.BUDGET)
        assert fresh.total_bytes() <= self.BUDGET

    def test_put_triggers_compaction_automatically(self, tmp_path):
        # b floods the directory compaction-free; a's own puts cross
        # compact_every and trigger the fleet-wide pass on their own.
        b = DiskStore(tmp_path, max_bytes=self.BUDGET, compact_every=0)
        for i in range(10):
            b.put(NS_STAGE, content_key(f"flood-{i}"), "z" * 300)
        a = DiskStore(tmp_path, max_bytes=self.BUDGET, compact_every=4)
        for i in range(8):
            a.put(NS_STAGE, content_key(f"auto-{i}"), "w" * 300)
        assert a.compactions >= 1
        assert blob_bytes_on_disk(tmp_path) <= self.BUDGET

    def test_compact_respects_recency_across_writers(self, tmp_path):
        a, b = self.two_writers(tmp_path)
        hot = content_key("writer-b-11")  # b's newest write
        assert a.get(NS_STAGE, hot) is not None  # freshens mtime via a
        a.compact()
        assert a.get(NS_STAGE, hot) is not None  # survived the pass

    def test_contended_lock_skips_and_leaves_holder_alone(self, tmp_path):
        a, _ = self.two_writers(tmp_path)
        lock = tmp_path / ".compact-lock"
        lock.write_text("held-by-another-process")
        assert a.compact() == 0  # someone else is walking; don't double up
        assert lock.exists()  # never releases a lock it doesn't hold
        assert blob_bytes_on_disk(tmp_path) > self.BUDGET

    def test_stale_lock_is_broken(self, tmp_path):
        import os

        a, _ = self.two_writers(tmp_path)
        lock = tmp_path / ".compact-lock"
        lock.write_text("crashed-holder")
        ancient = time.time() - 3600.0
        os.utime(lock, (ancient, ancient))
        assert a.compact() > 0  # broke the stale lock and did the work
        assert not lock.exists()
        assert blob_bytes_on_disk(tmp_path) <= self.BUDGET

    def test_lock_file_is_invisible_to_rescans(self, tmp_path):
        store = DiskStore(tmp_path, max_bytes=self.BUDGET)
        store.put(NS_STAGE, content_key("only"), "value")
        (tmp_path / ".compact-lock").write_text("held")
        fresh = DiskStore(tmp_path, max_bytes=self.BUDGET)
        assert len(fresh) == 1  # the lock never counts as a blob


class TestTieredStore:
    def test_promote_on_disk_hit(self, tmp_path):
        key = content_key("promoted")
        DiskStore(tmp_path).put(NS_STAGE, key, 42)
        tiered = TieredStore(MemoryStore(), DiskStore(tmp_path))
        assert tiered.get(NS_STAGE, key) == 42
        assert tiered.back.hits == 1
        assert tiered.get(NS_STAGE, key) == 42
        assert tiered.front.hits == 1  # served from memory the second time
        assert tiered.counters()["hits"] == 2

    def test_write_through_and_refill_after_front_eviction(self, tmp_path):
        tiered = TieredStore(MemoryStore(max_entries=1),
                             DiskStore(tmp_path))
        keys = fill(tiered, 3)
        # Front only holds the newest; older entries refill from disk.
        assert tiered.get(NS_STAGE, keys[0]) is not None
        assert tiered.back.hits >= 1
        assert tiered.misses == 0


class TestStoreConfig:
    def test_memory_only_default(self):
        assert isinstance(StoreConfig().make_store(), MemoryStore)
        assert StoreConfig().store_path() == ""

    def test_disk_backed_tiers(self, tmp_path):
        tiered = StoreConfig(path=tmp_path).make_store()
        assert isinstance(tiered, TieredStore)
        assert isinstance(tiered.back, DiskStore)
        disk = StoreConfig(path=tmp_path, memory_entries=0).make_store()
        assert isinstance(disk, DiskStore)
        assert StoreConfig(path=tmp_path).store_path() == str(tmp_path)

    def test_disabled_makes_nothing(self, tmp_path):
        config = StoreConfig(path=tmp_path, enabled=False)
        assert config.make_store() is None
        assert config.store_path() == ""

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            StoreConfig(path=tmp_path, max_bytes=0)
        with pytest.raises(ValueError, match="memory_entries"):
            StoreConfig(path=tmp_path, memory_entries=-1)
        with pytest.raises(ValueError, match="nothing to store"):
            StoreConfig(memory_entries=0)


class TestCompileCachePersistence:
    def test_refill_across_cache_instances(self, tmp_path):
        store = DiskStore(tmp_path)
        first = CompileCache(store=store)
        result = first.get_or_compile(GOLDEN)
        assert result.ok
        assert first.counters() == {"hits": 0, "misses": 1, "evictions": 0,
                                    "store_hits": 0}

        second = CompileCache(store=store)  # fresh memory tier
        refilled = second.get_or_compile(GOLDEN)
        assert refilled.ok
        assert refilled.failure_summary() == result.failure_summary()
        assert refilled.design.name == result.design.name
        assert second.counters() == {"hits": 0, "misses": 0, "evictions": 0,
                                     "store_hits": 1}
        # Now resident in memory: the next lookup is a plain hit.
        assert second.get_or_compile(GOLDEN) is refilled
        assert second.hits == 1

    def test_failures_are_cached_persistently_too(self, tmp_path):
        store = DiskStore(tmp_path)
        CompileCache(store=store).get_or_compile(BROKEN)
        second = CompileCache(store=store)
        cached = second.get_or_compile(BROKEN)
        assert not cached.ok
        assert cached.failure_summary()
        assert second.store_hits == 1

    def test_tier_counters_stay_consistent(self, tmp_path):
        """Satellite: spill-refill round trip keeps hit/miss counters
        monotonic and mutually consistent across tiers."""
        store = DiskStore(tmp_path)
        cache = CompileCache(max_entries=1, store=store)
        sources = [GOLDEN, BROKEN, GOLDEN.replace("and_gate", "other_gate")]
        snapshots = []
        for _ in range(3):
            for source in sources:  # max_entries=1 forces constant spill
                cache.get_or_compile(source)
                snapshots.append(cache.counters())
        lookups = 3 * len(sources)
        final = snapshots[-1]
        assert final["hits"] + final["store_hits"] + final["misses"] == lookups
        # Every memory miss consulted the store exactly once.
        assert store.hits + store.misses == final["store_hits"] + final["misses"]
        assert store.hits == final["store_hits"]
        for before, after in zip(snapshots, snapshots[1:]):
            for counter in ("hits", "misses", "store_hits", "evictions"):
                assert after[counter] >= before[counter], "non-monotonic"


class TestResultCacheSpillRefill:
    def test_refill_and_counter_consistency(self, tmp_path):
        """Satellite: ResultCache stats after a spill-refill round trip."""
        store = DiskStore(tmp_path)
        writer = ResultCache(max_entries=4, store=store)
        key = content_key("response")
        writer.put(key, {"status": "ok", "n": 1})

        reader = ResultCache(max_entries=4, store=store)
        assert reader.get(key) == {"status": "ok", "n": 1}
        assert reader.counters() == {"hits": 0, "misses": 0, "evictions": 0,
                                     "store_hits": 1}
        assert reader.get(key) == {"status": "ok", "n": 1}
        assert reader.hits == 1
        assert reader.hit_rate == 1.0
        missing = reader.get(content_key("absent"))
        assert missing is None
        final = reader.counters()
        assert final["hits"] + final["store_hits"] + final["misses"] == 3
        assert store.hits + store.misses \
            == final["store_hits"] + final["misses"]

    def test_memory_eviction_refills_from_store(self, tmp_path):
        cache = ResultCache(max_entries=1, store=DiskStore(tmp_path))
        first, second = content_key("one"), content_key("two")
        cache.put(first, "response-1")
        cache.put(second, "response-2")  # evicts `first` from memory
        assert cache.evictions == 1
        assert cache.get(first) == "response-1"  # refilled, not lost
        assert cache.store_hits == 1

    def test_without_store_misses_stay_misses(self):
        cache = ResultCache(max_entries=4)
        assert cache.get(content_key("nothing")) is None
        assert cache.counters() == {"hits": 0, "misses": 1, "evictions": 0,
                                    "store_hits": 0}


class TestIncrementalPipeline:
    def test_warm_rerun_is_fingerprint_identical(self, tmp_path):
        """The acceptance criterion's correctness half: a re-run with an
        unchanged config against a populated DiskStore serves every stage
        unit from the store and reproduces the bundle byte for byte."""
        config = dict(seed=77, store=StoreConfig(path=tmp_path),
                      **PIPELINE_KNOBS)
        cold = run_pipeline(DatagenConfig(**config))
        assert cold.stats["store"]["stage_memo_hits"] == 0
        assert cold.stats["store"]["stage_memo_misses"] > 0

        warm = run_pipeline(DatagenConfig(**config))
        assert warm.fingerprint() == cold.fingerprint()
        assert warm.comparable() == cold.comparable()
        assert warm.stats["store"]["stage_memo_misses"] == 0
        assert warm.stats["store"]["stage_memo_hits"] \
            == cold.stats["store"]["stage_memo_misses"]

    def test_warm_parallel_hits_what_serial_stored(self, tmp_path):
        """Memo keys exclude execution knobs, so a process-pool re-run
        reuses a serial run's stored units (and vice versa)."""
        common = dict(seed=78, store=StoreConfig(path=tmp_path),
                      **PIPELINE_KNOBS)
        cold = run_pipeline(DatagenConfig(n_workers=1, **common))
        warm = run_pipeline(DatagenConfig(n_workers=2, backend="process",
                                          **common))
        assert warm.fingerprint() == cold.fingerprint()
        assert warm.stats["store"]["stage_memo_misses"] == 0

    def test_semantic_change_does_not_reuse_stale_units(self, tmp_path):
        store_config = StoreConfig(path=tmp_path)
        first = run_pipeline(DatagenConfig(seed=79, store=store_config,
                                           **PIPELINE_KNOBS))
        changed = run_pipeline(DatagenConfig(seed=80, store=store_config,
                                             **PIPELINE_KNOBS))
        assert changed.fingerprint() != first.fingerprint()
        assert changed.stats["store"]["stage_memo_hits"] == 0

    def test_store_never_changes_results(self, tmp_path):
        config = dict(seed=81, **PIPELINE_KNOBS)
        plain = run_pipeline(DatagenConfig(**config))
        stored = run_pipeline(DatagenConfig(
            store=StoreConfig(path=tmp_path), **config))
        assert plain.fingerprint() == stored.fingerprint()

    def test_semantic_digest_tracks_only_semantic_knobs(self):
        base = DatagenConfig(**PIPELINE_KNOBS)
        same = DatagenConfig(n_workers=4, backend="process",
                             compile_cache=False, **PIPELINE_KNOBS)
        assert base.semantic_digest() == same.semantic_digest()
        other = DatagenConfig(**{**PIPELINE_KNOBS, "seed": 9999})
        assert base.semantic_digest() != other.semantic_digest()

    def test_semantic_digest_includes_code_version(self, monkeypatch):
        """Regression: stage implementations evolve across releases, so
        a long-lived store must not serve another version's units."""
        import repro

        base = DatagenConfig(**PIPELINE_KNOBS).semantic_digest()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert DatagenConfig(**PIPELINE_KNOBS).semantic_digest() != base


class TestServiceResponsePooling:
    OPTIONS = SolveOptions(bmc_depth=4, bmc_random_trials=4)
    SOURCE = GOLDEN

    def _config(self, tmp_path) -> ServeConfig:
        return ServeConfig(n_workers=1, backend="serial", seed=5,
                           batch_window_ms=1.0,
                           store=StoreConfig(path=tmp_path))

    def test_second_instance_serves_from_the_shared_store(self, tmp_path):
        with AssertService(self._config(tmp_path)) as first:
            original = first.solve(SolveRequest(self.SOURCE, self.OPTIONS))
            assert first.stats().solved == 1

        with AssertService(self._config(tmp_path)) as second:
            pooled = second.solve(SolveRequest(self.SOURCE, self.OPTIONS))
            stats = second.stats()
        assert stats.solved == 0, "must not recompute"
        assert stats.cache_store_hits == 1
        assert pooled.to_json() == original.to_json(), \
            "pooled response must be byte-identical"

    def test_store_survives_pickle_of_responses(self, tmp_path):
        with AssertService(self._config(tmp_path)) as service:
            response = service.solve(SolveRequest(self.SOURCE, self.OPTIONS))
        clone = pickle.loads(pickle.dumps(response))
        assert clone.to_json() == response.to_json()


class TestStoreSurvivesWorkerProcesses:
    def test_process_pool_workers_share_the_compile_store(self, tmp_path):
        """Workers attach their compile caches to the shared directory via
        the engine initializer; artifacts they compile persist after the
        pool is gone."""
        config = DatagenConfig(seed=83, n_workers=2, backend="process",
                               store=StoreConfig(path=tmp_path),
                               **PIPELINE_KNOBS)
        run_pipeline(config)
        compile_dir = tmp_path / "compile" / "v1"
        assert compile_dir.is_dir()
        assert any(compile_dir.rglob("*")), \
            "worker compile artifacts must land in the shared store"


class TestEvictionSurvivesStaleIndexes:
    def test_fresh_handle_sees_other_handles_writes(self, tmp_path):
        """Regression: two handles on one root (e.g. the stage-memo store
        and the compile tier of one run, or two processes) each persist
        an index knowing only their own entries; a later handle must
        reconcile against the filesystem, not trust the stale index —
        otherwise the size budget silently stops being enforced."""
        a, b = DiskStore(tmp_path), DiskStore(tmp_path)
        fill(a, 4, size=200, prefix="a")
        fill(b, 4, size=200, prefix="b")
        # Simulate the worst case: the surviving index knows nothing.
        (tmp_path / "index.json").write_text('{"version": 1, "entries": {}}')
        fresh = DiskStore(tmp_path)
        assert len(fresh) == 8
        assert fresh.total_bytes() == a.total_bytes() + b.total_bytes()

    def test_budget_enforced_across_restarts(self, tmp_path):
        for round_no in range(4):
            store = DiskStore(tmp_path, max_bytes=1500)
            fill(store, 4, size=200, prefix=f"round-{round_no}")
        assert DiskStore(tmp_path).total_bytes() <= 1500

    def test_saved_last_used_times_survive_reload(self, tmp_path):
        store = DiskStore(tmp_path)
        key = content_key("timed")
        store.put(NS_STAGE, key, "v")
        future_time = 4_000_000_000.0  # newer than any mtime
        store._index[store._rel(store._blob_path(NS_STAGE, key))][1] = \
            future_time
        store._persist_index_locked()
        fresh = DiskStore(tmp_path)
        rel = fresh._rel(fresh._blob_path(NS_STAGE, key))
        assert fresh._index[rel][1] == future_time


class TestCompileCacheGlobalConfig:
    def test_store_budget_restores_exactly(self, tmp_path):
        """Regression: the settings tuple returned by
        ``configure_compile_cache`` must round-trip ``store_max_bytes``
        — a later store attachment must not inherit a stale budget."""
        from repro.store.disk import DEFAULT_MAX_BYTES
        from repro.verilog import compile as compile_mod
        from repro.verilog.compile import configure_compile_cache

        previous = configure_compile_cache(store_path=str(tmp_path),
                                           store_max_bytes=123_456)
        try:
            assert compile_mod._DEFAULT_CACHE.store.max_bytes == 123_456
        finally:
            configure_compile_cache(*previous)
        assert compile_mod._DEFAULT_CACHE.store is None
        # A fresh attachment without an explicit budget gets the default,
        # not the 123_456 leftover.
        second = configure_compile_cache(store_path=str(tmp_path))
        try:
            assert compile_mod._DEFAULT_CACHE.store.max_bytes \
                == DEFAULT_MAX_BYTES
        finally:
            configure_compile_cache(*second)
        assert compile_mod._DEFAULT_CACHE.store is None

    def test_hit_rate_counts_store_refills(self, tmp_path):
        store = DiskStore(tmp_path)
        CompileCache(store=store).get_or_compile(GOLDEN)
        warm = CompileCache(store=store)
        warm.get_or_compile(GOLDEN)  # store refill, zero recompiles
        assert warm.hit_rate == 1.0


class TestSerialServeCompileTier:
    def test_serial_service_persists_compile_artifacts(self, tmp_path):
        """Regression: under the serial backend no engine initializer
        runs, so the service itself must attach the compile store in its
        own process — and detach it again on close."""
        from repro.verilog.compile import default_compile_cache

        config = ServeConfig(n_workers=1, backend="serial", seed=3,
                             batch_window_ms=1.0,
                             store=StoreConfig(path=tmp_path))
        with AssertService(config) as service:
            assert default_compile_cache().store is not None
            response = service.solve(SolveRequest(
                GOLDEN, SolveOptions(bmc_depth=4, bmc_random_trials=4)))
            assert response.ok
        assert default_compile_cache().store is None, \
            "close() must restore the process-global cache settings"
        compile_dir = tmp_path / "compile" / "v1"
        assert compile_dir.is_dir() and any(compile_dir.rglob("*"))
