"""Lexer unit + property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.verilog.errors import VerilogLexError
from repro.verilog.lexer import Token, parse_number_literal, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_keywords_and_identifiers(self):
        tokens = kinds("module foo endmodule")
        assert tokens == [("kw", "module"), ("id", "foo"), ("kw", "endmodule")]

    def test_eof_terminates_stream(self):
        assert tokenize("")[-1].kind == "eof"

    def test_operators_maximal_munch(self):
        tokens = [t.text for t in tokenize("a <= b <<< 2 == c")[:-1]]
        assert tokens == ["a", "<=", "b", "<<<", "2", "==", "c"]

    def test_implication_operators(self):
        tokens = [t.text for t in tokenize("a |-> b |=> c ##1 d")[:-1]]
        assert "|->" in tokens and "|=>" in tokens and "##" in tokens

    def test_system_task_token(self):
        tokens = kinds("$error $past")
        assert tokens == [("sys", "$error"), ("sys", "$past")]

    def test_string_literal(self):
        tokens = tokenize('"hello world";')
        assert tokens[0].kind == "str"
        assert tokens[0].text == "hello world"

    def test_string_with_escape(self):
        tokens = tokenize(r'"a\"b"')
        assert tokens[0].text == 'a"b'

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens[:-1]]
        assert lines == [1, 2, 4]


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_block_comment_preserves_lines(self):
        tokens = tokenize("/* one\ntwo */ a")
        assert tokens[0].line == 2

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("/* never closed")

    def test_directive_skipped(self):
        assert kinds("`timescale 1ns/1ps\na") == [("id", "a")]


class TestNumbers:
    def test_plain_decimal(self):
        assert parse_number_literal("42") == (None, 42, 0)

    def test_sized_binary(self):
        assert parse_number_literal("4'b1010") == (4, 10, 0)

    def test_sized_decimal(self):
        assert parse_number_literal("8'd255") == (8, 255, 0)

    def test_sized_hex(self):
        assert parse_number_literal("12'hABC") == (12, 0xABC, 0)

    def test_underscores_ignored(self):
        assert parse_number_literal("8'b1010_1010") == (8, 0xAA, 0)

    def test_x_bits_masked(self):
        width, value, xmask = parse_number_literal("4'b1x0x")
        assert width == 4
        assert xmask == 0b0101
        assert value == 0b1000

    def test_truncation_to_width(self):
        width, value, _ = parse_number_literal("4'd255")
        assert value == 15

    def test_signed_marker_accepted(self):
        assert parse_number_literal("8'sd5") == (8, 5, 0)

    def test_bad_base_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("4'q1010")

    def test_missing_digits_raises(self):
        with pytest.raises(VerilogLexError):
            tokenize("4'b;")

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_binary_literals(self, width, value):
        value &= (1 << width) - 1
        text = f"{width}'b{value:0{width}b}"
        parsed_width, parsed_value, xmask = parse_number_literal(text)
        assert parsed_width == width
        assert parsed_value == value
        assert xmask == 0

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=65535))
    def test_roundtrip_decimal_literals(self, width, value):
        value &= (1 << width) - 1
        parsed = parse_number_literal(f"{width}'d{value}")
        assert parsed == (width, value, 0)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(VerilogLexError):
            tokenize("a \\ b")

    def test_unterminated_string(self):
        with pytest.raises(VerilogLexError):
            tokenize('"never closed')

    def test_newline_in_string(self):
        with pytest.raises(VerilogLexError):
            tokenize('"line\nbreak"')


class TestTokenHelpers:
    def test_is_op(self):
        token = Token("op", "+", 1)
        assert token.is_op("+", "-")
        assert not token.is_op("*")

    def test_is_kw(self):
        token = Token("kw", "module", 1)
        assert token.is_kw("module")
        assert not token.is_kw("endmodule")
