"""Evaluation layer: pass@k estimator properties, runner, buckets, reports."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.baselines.engine import make_baseline
from repro.baselines.profiles import case_difficulty, get_profile
from repro.eval.buckets import bucket_pass_at, bug_type_buckets, length_buckets
from repro.eval.cases import case_digest, cases_from_json, cases_to_json
from repro.eval.config import EvalConfig
from repro.eval.histogram import extremity_mass, histogram_series
from repro.eval.passk import aggregate_pass_at_k, pass_at_k
from repro.eval.report import EvalReport
from repro.eval.reporting import render_table1, render_table3, render_table4
from repro.eval.runner import (
    eval_memo_key,
    evaluate_model,
    is_correct,
    model_digest,
    run_eval,
)
from repro.model.assertsolver import SolverResponse
from repro.store import NS_EVAL, MemoryStore


class TestPassAtK:
    def test_all_correct(self):
        assert pass_at_k(20, 20, 1) == 1.0
        assert pass_at_k(20, 20, 5) == 1.0

    def test_none_correct(self):
        assert pass_at_k(20, 0, 1) == 0.0
        assert pass_at_k(20, 0, 5) == 0.0

    def test_pass1_equals_fraction(self):
        assert pass_at_k(20, 5, 1) == pytest.approx(0.25)

    def test_known_value(self):
        # n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6
        assert pass_at_k(4, 2, 2) == pytest.approx(1 - 1 / 6)

    def test_k_geq_n(self):
        assert pass_at_k(5, 1, 5) == 1.0
        assert pass_at_k(5, 0, 9) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 0)

    @given(st.integers(1, 40), st.integers(0, 40), st.integers(1, 10))
    def test_bounds(self, n, c, k):
        c = min(c, n)
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 40), st.integers(0, 39), st.integers(1, 10))
    def test_monotone_in_c(self, n, c, k):
        c = min(c, n - 1)
        assert pass_at_k(n, c + 1, k) >= pass_at_k(n, c, k)

    @given(st.integers(2, 40), st.integers(0, 40), st.integers(1, 9))
    def test_monotone_in_k(self, n, c, k):
        c = min(c, n)
        assert pass_at_k(n, c, k + 1) >= pass_at_k(n, c, k)

    def test_aggregate_average(self):
        counts = [(20, 20), (20, 0)]
        assert aggregate_pass_at_k(counts, 1) == pytest.approx(0.5)

    def test_aggregate_empty(self):
        assert aggregate_pass_at_k([], 1) == 0.0


class TestCorrectness:
    def test_is_correct_matches_line_and_fix(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        good = SolverResponse(record.line, record.buggy_line,
                              record.fixed_line)
        assert is_correct(good, case)

    def test_whitespace_normalised(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        spaced = SolverResponse(record.line, record.buggy_line,
                                "  " + record.fixed_line.replace(" ", "  "))
        assert is_correct(spaced, case)

    def test_wrong_line_rejected(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        wrong = SolverResponse(record.line + 1, record.buggy_line,
                               record.fixed_line)
        assert not is_correct(wrong, case)

    def test_wrong_fix_rejected(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        wrong = SolverResponse(record.line, record.buggy_line,
                               record.fixed_line + " // nope")
        assert not is_correct(wrong, case)


class TestRunner:
    def test_evaluate_model_counts(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=8)
        assert len(result.outcomes) == len(small_bundle.sva_eval_machine)
        for outcome in result.outcomes:
            assert 0 <= outcome.c <= outcome.n == 8

    def test_histogram_total(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=8)
        series = histogram_series(result, n=8)
        assert sum(series) == len(result.outcomes)
        assert 0.0 <= extremity_mass(result, n=8) <= 1.0

    def test_origin_split(self, small_bundle, trained_models, human_cases):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine + human_cases[:4]
        result = evaluate_model(sft, cases, n=6)
        assert result.pass_at_origin(1, "machine") >= 0.0
        assert result.pass_at_origin(1, "human") >= 0.0


class SerializationCountingModel:
    """Picklable model that records how often it is serialized.

    The count lives on the class, so only parent-process pickling is
    observed (workers re-import the class with a fresh counter).
    """

    pickle_count = 0
    name = "SerializationCounter"

    def generate_case(self, case, n):
        from repro.model.assertsolver import SolverResponse

        return [SolverResponse(case.record.line, case.record.buggy_line,
                               case.record.fixed_line) for _ in range(n)]

    def __getstate__(self):
        type(self).pickle_count += 1
        return {}

    def __setstate__(self, state):
        pass


class TestModelTransport:
    """evaluate_model must serialize the model once per run, not per chunk."""

    def test_process_run_pickles_model_once(self, small_bundle):
        from repro.engine import ExecutionEngine

        cases = small_bundle.sva_eval_machine
        assert len(cases) > 1
        model = SerializationCountingModel()
        SerializationCountingModel.pickle_count = 0
        serial = evaluate_model(model, cases, n=4, seed=9)
        assert SerializationCountingModel.pickle_count == 0
        with ExecutionEngine(n_workers=2, backend="process") as engine:
            parallel = evaluate_model(model, cases, n=4, seed=9,
                                      engine=engine)
            # However many chunks fan out, the object graph is walked
            # exactly twice per run: once for transport, once for the
            # after-run fingerprint assertion — never once per chunk.
            assert SerializationCountingModel.pickle_count == 2
        assert [(o.n, o.c) for o in serial.outcomes] == \
               [(o.n, o.c) for o in parallel.outcomes]

    def test_thread_run_never_pickles(self, small_bundle):
        from repro.engine import ExecutionEngine

        model = SerializationCountingModel()
        SerializationCountingModel.pickle_count = 0
        with ExecutionEngine(n_workers=2, backend="thread") as engine:
            evaluate_model(model, small_bundle.sva_eval_machine, n=2,
                           seed=9, engine=engine)
        assert SerializationCountingModel.pickle_count == 0

    def test_trained_model_parallel_matches_serial(self, small_bundle,
                                                   trained_models):
        from repro.engine import ExecutionEngine

        _, sft, _ = trained_models
        serial = evaluate_model(sft, small_bundle.sva_eval_machine, n=4,
                                seed=3)
        with ExecutionEngine(n_workers=2, backend="process") as engine:
            parallel = evaluate_model(sft, small_bundle.sva_eval_machine,
                                      n=4, seed=3, engine=engine)
        assert [(o.n, o.c) for o in serial.outcomes] == \
               [(o.n, o.c) for o in parallel.outcomes]


class TestBuckets:
    def test_bug_type_buckets_partition_axes(self, small_bundle,
                                             trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        buckets = bug_type_buckets(result)
        n = len(result.outcomes)
        assert len(buckets["Direct"]) + len(buckets["Indirect"]) == n
        assert len(buckets["Cond"]) + len(buckets["Non_cond"]) == n

    def test_length_buckets_cover_all(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        buckets = length_buckets(result)
        assert sum(len(v) for v in buckets.values()) == len(result.outcomes)

    def test_bucket_pass_at_unknown_axis(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        with pytest.raises(ValueError):
            bucket_pass_at(result, 1, by="colour")


class TestBaselines:
    def test_profiles_exist_for_paper_models(self):
        for name in ("Claude-3.5", "GPT-4", "o1-preview", "CodeLlama-7b",
                     "Llama-3.1-8b", "Deepseek-coder-6.7b"):
            assert get_profile(name).name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("GPT-17")

    def test_deterministic_per_case(self, small_bundle):
        model = make_baseline("GPT-4", seed=1)
        case = small_bundle.sva_eval_machine[0]
        a = [r.to_json() for r in model.generate_case(case, n=10)]
        b = [r.to_json() for r in model.generate_case(case, n=10)]
        assert a == b

    def test_difficulty_monotone_in_length(self):
        easy = case_difficulty("Value", "Direct", "Non_cond", 0, False)
        hard = case_difficulty("Value", "Direct", "Non_cond", 4, False)
        assert hard > easy

    def test_human_cases_harder(self):
        machine = case_difficulty("Op", "Direct", "Cond", 1, False)
        human = case_difficulty("Op", "Direct", "Cond", 1, True)
        assert human > machine

    def test_ordering_on_benchmark(self, small_bundle, human_cases):
        """The published ordering must hold: o1 ~ Claude > GPT-4 >>
        Llama-3.1 > CodeLlama ~ Deepseek."""
        cases = small_bundle.sva_eval_machine + human_cases
        scores = {}
        for name in ("o1-preview", "Claude-3.5", "GPT-4", "Llama-3.1-8b",
                     "CodeLlama-7b", "Deepseek-coder-6.7b"):
            model = make_baseline(name, seed=0)
            result = evaluate_model(model, cases, n=20)
            scores[name] = result.pass_at(1)
        assert scores["o1-preview"] > scores["GPT-4"]
        assert scores["Claude-3.5"] > scores["GPT-4"]
        assert scores["GPT-4"] > scores["Llama-3.1-8b"]
        assert scores["Llama-3.1-8b"] > scores["CodeLlama-7b"]
        assert scores["Llama-3.1-8b"] > scores["Deepseek-coder-6.7b"]

    def test_format_errors_produce_wrong_answers(self, small_bundle):
        model = make_baseline("Deepseek-coder-6.7b", seed=0)
        case = small_bundle.sva_eval_machine[0]
        responses = model.generate_case(case, n=40)
        assert any(r.fix == "<malformed response>" for r in responses)


class TestEvalConfig:
    def test_defaults_match_legacy_positional_knobs(self):
        config = EvalConfig()
        assert (config.n_samples, config.seed) == (20, 123)
        assert config.k_values == (1, 5)
        assert config.semantic_check is False
        assert config.deadline_ms is None

    def test_list_k_values_coerced_to_tuple(self):
        assert EvalConfig(k_values=[1, 5, 10]).k_values == (1, 5, 10)

    @pytest.mark.parametrize("kwargs", [
        {"n_samples": 0},
        {"n_samples": 2.5},
        {"n_samples": True},
        {"seed": "x"},
        {"k_values": ()},
        {"k_values": (0,)},
        {"k_values": (5, 1)},
        {"k_values": (1, 1)},
        {"semantic_check": 1},
        {"deadline_ms": 0},
        {"deadline_ms": -5.0},
    ])
    def test_malformed_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EvalConfig(**kwargs)

    def test_unknown_knob_rejected(self):
        with pytest.raises(TypeError):
            EvalConfig(samples=4)

    def test_digest_stable_across_instances(self):
        assert EvalConfig(n_samples=6, seed=9).semantic_digest() == \
               EvalConfig(n_samples=6, seed=9).semantic_digest()

    def test_digest_tracks_scoring_knobs(self):
        base = EvalConfig(n_samples=6, seed=9)
        assert base.semantic_digest() != \
               EvalConfig(n_samples=7, seed=9).semantic_digest()
        assert base.semantic_digest() != \
               EvalConfig(n_samples=6, seed=10).semantic_digest()
        assert base.semantic_digest() != \
               EvalConfig(n_samples=6, seed=9,
                          semantic_check=True).semantic_digest()

    def test_digest_ignores_aggregation_and_qos_knobs(self):
        base = EvalConfig(n_samples=6, seed=9)
        assert base.semantic_digest() == \
               EvalConfig(n_samples=6, seed=9,
                          k_values=(1, 2, 3)).semantic_digest()
        assert base.semantic_digest() == \
               EvalConfig(n_samples=6, seed=9,
                          deadline_ms=250.0).semantic_digest()

    def test_canonical_excludes_deadline(self):
        assert EvalConfig(deadline_ms=100.0).canonical() == \
               EvalConfig().canonical()


class TestCaseCodec:
    def test_round_trip_preserves_digests(self, small_bundle):
        cases = small_bundle.sva_eval_machine
        restored = cases_from_json(cases_to_json(cases))
        assert [case_digest(c) for c in restored] == \
               [case_digest(c) for c in cases]

    def test_round_trip_scores_identically(self, small_bundle,
                                           trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        original = run_eval(sft, cases, config=config)
        restored = run_eval(sft, cases_from_json(cases_to_json(cases)),
                            config=config)
        assert restored.to_json() == original.to_json()


class TestEvalMemo:
    def test_cold_then_warm_is_byte_identical(self, small_bundle,
                                              trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        cold = run_eval(sft, cases, config=config, store=store)
        assert cold.stats == {"cases": len(cases), "memo_hits": 0,
                              "computed": len(cases)}
        warm = run_eval(sft, cases, config=config, store=store)
        assert warm.stats == {"cases": len(cases),
                              "memo_hits": len(cases), "computed": 0}
        assert warm.to_json() == cold.to_json()

    def test_warm_process_pool_matches_serial_cold(self, small_bundle,
                                                   trained_models):
        from repro.engine import ExecutionEngine

        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        cold = run_eval(sft, cases, config=config, store=store)
        with ExecutionEngine(n_workers=2, backend="process") as engine:
            warm = run_eval(sft, cases, config=config, engine=engine,
                            store=store)
        assert warm.stats["computed"] == 0
        assert warm.to_json() == cold.to_json()

    def test_new_cases_recompute_only_the_new(self, small_bundle,
                                              trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        assert len(cases) >= 2
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        run_eval(sft, cases[:-1], config=config, store=store)
        grown = run_eval(sft, cases, config=config, store=store)
        assert grown.stats == {"cases": len(cases),
                               "memo_hits": len(cases) - 1, "computed": 1}

    @pytest.mark.parametrize("override", [
        {"seed": 6}, {"n_samples": 5},
    ])
    def test_scoring_knob_change_invalidates(self, small_bundle,
                                             trained_models, override):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        store = MemoryStore()
        run_eval(sft, cases, config=EvalConfig(n_samples=4, seed=5),
                 store=store)
        changed = run_eval(sft, cases,
                           config=EvalConfig(**{"n_samples": 4, "seed": 5,
                                                **override}),
                           store=store)
        assert changed.stats["memo_hits"] == 0
        assert changed.stats["computed"] == len(cases)

    def test_model_change_invalidates(self, small_bundle, trained_models):
        base, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        run_eval(sft, cases, config=config, store=store)
        other = run_eval(base, cases, config=config, store=store)
        assert other.stats["memo_hits"] == 0

    def test_k_values_change_hits_every_outcome(self, small_bundle,
                                                trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        store = MemoryStore()
        run_eval(sft, cases, config=EvalConfig(n_samples=4, seed=5),
                 store=store)
        rescored = run_eval(sft, cases,
                            config=EvalConfig(n_samples=4, seed=5,
                                              k_values=(1, 2, 3)),
                            store=store)
        assert rescored.stats == {"cases": len(cases),
                                  "memo_hits": len(cases), "computed": 0}
        assert list(rescored.k_values) == [1, 2, 3]

    def test_memo_artifacts_live_under_eval_namespace(self, small_bundle,
                                                      trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        run_eval(sft, cases, config=config, store=store)
        digest = model_digest(sft)
        key = eval_memo_key(case_digest(cases[0]), digest, config)
        stored = store.get(NS_EVAL, key)
        assert isinstance(stored, tuple) and len(stored) == 2
        assert stored[0] == config.n_samples

    def test_corrupt_memo_entry_recomputed(self, small_bundle,
                                           trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        config = EvalConfig(n_samples=4, seed=5)
        store = MemoryStore()
        cold = run_eval(sft, cases, config=config, store=store)
        key = eval_memo_key(case_digest(cases[0]), model_digest(sft), config)
        store.put(NS_EVAL, key, {"not": "a tuple"})
        healed = run_eval(sft, cases, config=config, store=store)
        assert healed.stats["computed"] == 1
        assert healed.to_json() == cold.to_json()


class TestEvalReport:
    def test_report_json_round_trip_is_byte_stable(self, small_bundle,
                                                   trained_models):
        _, sft, _ = trained_models
        report = run_eval(sft, small_bundle.sva_eval_machine,
                          config=EvalConfig(n_samples=4, seed=5))
        assert EvalReport.from_json(report.to_json()).to_json() == \
               report.to_json()

    def test_report_json_is_canonical(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        report = run_eval(sft, small_bundle.sva_eval_machine,
                          config=EvalConfig(n_samples=4, seed=5))
        text = report.to_json()
        assert text == json.dumps(json.loads(text), sort_keys=True)

    def test_empty_origin_returns_none_and_is_omitted(self, small_bundle,
                                                      trained_models):
        _, sft, _ = trained_models
        report = run_eval(sft, small_bundle.sva_eval_machine,
                          config=EvalConfig(n_samples=4, seed=5))
        assert report.result.pass_at_origin(1, "human") is None
        assert "human" not in json.loads(report.to_json())["origins"]

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            EvalReport.from_json(json.dumps({"schema": "eval/v0"}))


class TestDeprecatedShim:
    def test_evaluate_model_warns_and_matches_run_eval(self, small_bundle,
                                                       trained_models):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine
        with pytest.warns(DeprecationWarning):
            legacy = evaluate_model(sft, cases, n=4, seed=5)
        modern = run_eval(sft, cases, config=EvalConfig(n_samples=4, seed=5))
        assert [(o.n, o.c) for o in legacy.outcomes] == \
               [(o.n, o.c) for o in modern.result.outcomes]


class TestReporting:
    def test_table1_renders_all_types(self):
        text = render_table1()
        for name in ("Direct", "Indirect", "Var", "Value", "Op", "Cond",
                     "Non_cond"):
            assert name in text

    def test_table3_includes_paper_numbers(self, small_bundle,
                                           trained_models):
        base, sft, solver = trained_models
        results = {
            "Base Model": evaluate_model(base,
                                         small_bundle.sva_eval_machine, n=4),
            "SFT Model": evaluate_model(sft,
                                        small_bundle.sva_eval_machine, n=4),
            "AssertSolver": evaluate_model(solver,
                                           small_bundle.sva_eval_machine,
                                           n=4),
        }
        text = render_table3(results)
        assert "paper 88.54" in text
        assert "pass@1" in text and "pass@5" in text

    def test_table4_renders(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        text = render_table4({"AssertSolver": result})
        assert "Machine@1" in text and "(paper)" in text
