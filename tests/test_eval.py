"""Evaluation layer: pass@k estimator properties, runner, buckets, reports."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.engine import make_baseline
from repro.baselines.profiles import case_difficulty, get_profile
from repro.eval.buckets import bucket_pass_at, bug_type_buckets, length_buckets
from repro.eval.histogram import extremity_mass, histogram_series
from repro.eval.passk import aggregate_pass_at_k, pass_at_k
from repro.eval.reporting import render_table1, render_table3, render_table4
from repro.eval.runner import evaluate_model, is_correct
from repro.model.assertsolver import SolverResponse


class TestPassAtK:
    def test_all_correct(self):
        assert pass_at_k(20, 20, 1) == 1.0
        assert pass_at_k(20, 20, 5) == 1.0

    def test_none_correct(self):
        assert pass_at_k(20, 0, 1) == 0.0
        assert pass_at_k(20, 0, 5) == 0.0

    def test_pass1_equals_fraction(self):
        assert pass_at_k(20, 5, 1) == pytest.approx(0.25)

    def test_known_value(self):
        # n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6
        assert pass_at_k(4, 2, 2) == pytest.approx(1 - 1 / 6)

    def test_k_geq_n(self):
        assert pass_at_k(5, 1, 5) == 1.0
        assert pass_at_k(5, 0, 9) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 2, 0)

    @given(st.integers(1, 40), st.integers(0, 40), st.integers(1, 10))
    def test_bounds(self, n, c, k):
        c = min(c, n)
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 40), st.integers(0, 39), st.integers(1, 10))
    def test_monotone_in_c(self, n, c, k):
        c = min(c, n - 1)
        assert pass_at_k(n, c + 1, k) >= pass_at_k(n, c, k)

    @given(st.integers(2, 40), st.integers(0, 40), st.integers(1, 9))
    def test_monotone_in_k(self, n, c, k):
        c = min(c, n)
        assert pass_at_k(n, c, k + 1) >= pass_at_k(n, c, k)

    def test_aggregate_average(self):
        counts = [(20, 20), (20, 0)]
        assert aggregate_pass_at_k(counts, 1) == pytest.approx(0.5)

    def test_aggregate_empty(self):
        assert aggregate_pass_at_k([], 1) == 0.0


class TestCorrectness:
    def test_is_correct_matches_line_and_fix(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        good = SolverResponse(record.line, record.buggy_line,
                              record.fixed_line)
        assert is_correct(good, case)

    def test_whitespace_normalised(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        spaced = SolverResponse(record.line, record.buggy_line,
                                "  " + record.fixed_line.replace(" ", "  "))
        assert is_correct(spaced, case)

    def test_wrong_line_rejected(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        wrong = SolverResponse(record.line + 1, record.buggy_line,
                               record.fixed_line)
        assert not is_correct(wrong, case)

    def test_wrong_fix_rejected(self, small_bundle):
        case = small_bundle.sva_eval_machine[0]
        record = case.record
        wrong = SolverResponse(record.line, record.buggy_line,
                               record.fixed_line + " // nope")
        assert not is_correct(wrong, case)


class TestRunner:
    def test_evaluate_model_counts(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=8)
        assert len(result.outcomes) == len(small_bundle.sva_eval_machine)
        for outcome in result.outcomes:
            assert 0 <= outcome.c <= outcome.n == 8

    def test_histogram_total(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=8)
        series = histogram_series(result, n=8)
        assert sum(series) == len(result.outcomes)
        assert 0.0 <= extremity_mass(result, n=8) <= 1.0

    def test_origin_split(self, small_bundle, trained_models, human_cases):
        _, sft, _ = trained_models
        cases = small_bundle.sva_eval_machine + human_cases[:4]
        result = evaluate_model(sft, cases, n=6)
        assert result.pass_at_origin(1, "machine") >= 0.0
        assert result.pass_at_origin(1, "human") >= 0.0


class SerializationCountingModel:
    """Picklable model that records how often it is serialized.

    The count lives on the class, so only parent-process pickling is
    observed (workers re-import the class with a fresh counter).
    """

    pickle_count = 0
    name = "SerializationCounter"

    def generate_case(self, case, n):
        from repro.model.assertsolver import SolverResponse

        return [SolverResponse(case.record.line, case.record.buggy_line,
                               case.record.fixed_line) for _ in range(n)]

    def __getstate__(self):
        type(self).pickle_count += 1
        return {}

    def __setstate__(self, state):
        pass


class TestModelTransport:
    """evaluate_model must serialize the model once per run, not per chunk."""

    def test_process_run_pickles_model_once(self, small_bundle):
        from repro.engine import ExecutionEngine

        cases = small_bundle.sva_eval_machine
        assert len(cases) > 1
        model = SerializationCountingModel()
        SerializationCountingModel.pickle_count = 0
        serial = evaluate_model(model, cases, n=4, seed=9)
        assert SerializationCountingModel.pickle_count == 0
        with ExecutionEngine(n_workers=2, backend="process") as engine:
            parallel = evaluate_model(model, cases, n=4, seed=9,
                                      engine=engine)
            # However many chunks fan out, the object graph is walked
            # exactly twice per run: once for transport, once for the
            # after-run fingerprint assertion — never once per chunk.
            assert SerializationCountingModel.pickle_count == 2
        assert [(o.n, o.c) for o in serial.outcomes] == \
               [(o.n, o.c) for o in parallel.outcomes]

    def test_thread_run_never_pickles(self, small_bundle):
        from repro.engine import ExecutionEngine

        model = SerializationCountingModel()
        SerializationCountingModel.pickle_count = 0
        with ExecutionEngine(n_workers=2, backend="thread") as engine:
            evaluate_model(model, small_bundle.sva_eval_machine, n=2,
                           seed=9, engine=engine)
        assert SerializationCountingModel.pickle_count == 0

    def test_trained_model_parallel_matches_serial(self, small_bundle,
                                                   trained_models):
        from repro.engine import ExecutionEngine

        _, sft, _ = trained_models
        serial = evaluate_model(sft, small_bundle.sva_eval_machine, n=4,
                                seed=3)
        with ExecutionEngine(n_workers=2, backend="process") as engine:
            parallel = evaluate_model(sft, small_bundle.sva_eval_machine,
                                      n=4, seed=3, engine=engine)
        assert [(o.n, o.c) for o in serial.outcomes] == \
               [(o.n, o.c) for o in parallel.outcomes]


class TestBuckets:
    def test_bug_type_buckets_partition_axes(self, small_bundle,
                                             trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        buckets = bug_type_buckets(result)
        n = len(result.outcomes)
        assert len(buckets["Direct"]) + len(buckets["Indirect"]) == n
        assert len(buckets["Cond"]) + len(buckets["Non_cond"]) == n

    def test_length_buckets_cover_all(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        buckets = length_buckets(result)
        assert sum(len(v) for v in buckets.values()) == len(result.outcomes)

    def test_bucket_pass_at_unknown_axis(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        with pytest.raises(ValueError):
            bucket_pass_at(result, 1, by="colour")


class TestBaselines:
    def test_profiles_exist_for_paper_models(self):
        for name in ("Claude-3.5", "GPT-4", "o1-preview", "CodeLlama-7b",
                     "Llama-3.1-8b", "Deepseek-coder-6.7b"):
            assert get_profile(name).name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("GPT-17")

    def test_deterministic_per_case(self, small_bundle):
        model = make_baseline("GPT-4", seed=1)
        case = small_bundle.sva_eval_machine[0]
        a = [r.to_json() for r in model.generate_case(case, n=10)]
        b = [r.to_json() for r in model.generate_case(case, n=10)]
        assert a == b

    def test_difficulty_monotone_in_length(self):
        easy = case_difficulty("Value", "Direct", "Non_cond", 0, False)
        hard = case_difficulty("Value", "Direct", "Non_cond", 4, False)
        assert hard > easy

    def test_human_cases_harder(self):
        machine = case_difficulty("Op", "Direct", "Cond", 1, False)
        human = case_difficulty("Op", "Direct", "Cond", 1, True)
        assert human > machine

    def test_ordering_on_benchmark(self, small_bundle, human_cases):
        """The published ordering must hold: o1 ~ Claude > GPT-4 >>
        Llama-3.1 > CodeLlama ~ Deepseek."""
        cases = small_bundle.sva_eval_machine + human_cases
        scores = {}
        for name in ("o1-preview", "Claude-3.5", "GPT-4", "Llama-3.1-8b",
                     "CodeLlama-7b", "Deepseek-coder-6.7b"):
            model = make_baseline(name, seed=0)
            result = evaluate_model(model, cases, n=20)
            scores[name] = result.pass_at(1)
        assert scores["o1-preview"] > scores["GPT-4"]
        assert scores["Claude-3.5"] > scores["GPT-4"]
        assert scores["GPT-4"] > scores["Llama-3.1-8b"]
        assert scores["Llama-3.1-8b"] > scores["CodeLlama-7b"]
        assert scores["Llama-3.1-8b"] > scores["Deepseek-coder-6.7b"]

    def test_format_errors_produce_wrong_answers(self, small_bundle):
        model = make_baseline("Deepseek-coder-6.7b", seed=0)
        case = small_bundle.sva_eval_machine[0]
        responses = model.generate_case(case, n=40)
        assert any(r.fix == "<malformed response>" for r in responses)


class TestReporting:
    def test_table1_renders_all_types(self):
        text = render_table1()
        for name in ("Direct", "Indirect", "Var", "Value", "Op", "Cond",
                     "Non_cond"):
            assert name in text

    def test_table3_includes_paper_numbers(self, small_bundle,
                                           trained_models):
        base, sft, solver = trained_models
        results = {
            "Base Model": evaluate_model(base,
                                         small_bundle.sva_eval_machine, n=4),
            "SFT Model": evaluate_model(sft,
                                        small_bundle.sva_eval_machine, n=4),
            "AssertSolver": evaluate_model(solver,
                                           small_bundle.sva_eval_machine,
                                           n=4),
        }
        text = render_table3(results)
        assert "paper 88.54" in text
        assert "pass@1" in text and "pass@5" in text

    def test_table4_renders(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        result = evaluate_model(sft, small_bundle.sva_eval_machine, n=4)
        text = render_table4({"AssertSolver": result})
        assert "Machine@1" in text and "(paper)" in text
