"""Simulator semantics: NBA timing, reset, settling, case variants."""

import pytest

from repro.sim.simulator import SimulationError, Simulator
from repro.sim.stimulus import Stimulus
from repro.verilog.compile import compile_source


def run(source, vectors, signals=None, reset_cycles=2):
    result = compile_source(source)
    assert result.ok, result.failure_summary()
    sim = Simulator(result.design)
    return sim.run(Stimulus(vectors, reset_cycles), signals)


COUNTER = """
module counter (input clk, input rst_n, input en, output reg [3:0] count);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 4'd0;
    else if (en) count <= count + 4'd1;
  end
endmodule
"""


class TestSequentialBasics:
    def test_reset_clears_counter(self):
        trace = run(COUNTER, [{"en": 0}])
        assert trace.value("count", 1).to_int() == 0

    def test_counter_counts_when_enabled(self):
        trace = run(COUNTER, [{"en": 1}] * 5)
        # snapshots are pre-edge: count at cycle k reflects k-2 enabled edges
        values = [trace.value("count", i).to_int() for i in range(2, 7)]
        assert values == [0, 1, 2, 3, 4]

    def test_counter_holds_when_disabled(self):
        trace = run(COUNTER, [{"en": 1}] * 3 + [{"en": 0}] * 3)
        held = trace.value("count", 6).to_int()
        assert trace.value("count", 7).to_int() == held

    def test_counter_wraps(self):
        trace = run(COUNTER, [{"en": 1}] * 18)
        assert trace.value("count", 18).to_int() == 0  # 16 edges -> wrap

    def test_uninitialized_reg_is_x_before_reset(self):
        result = compile_source(COUNTER)
        sim = Simulator(result.design)
        assert sim.env["count"].all_x


class TestNbaSemantics:
    SWAP = """
module swapper (input clk, input rst_n, output reg [3:0] a, output reg [3:0] b);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      a <= 4'd1;
      b <= 4'd2;
    end
    else begin
      a <= b;
      b <= a;
    end
  end
endmodule
"""

    def test_nonblocking_swap(self):
        """The classic: both NBAs read pre-edge values, so a/b swap."""
        trace = run(self.SWAP, [{}] * 3)
        assert (trace.value("a", 2).to_int(), trace.value("b", 2).to_int()) == (1, 2)
        assert (trace.value("a", 3).to_int(), trace.value("b", 3).to_int()) == (2, 1)
        assert (trace.value("a", 4).to_int(), trace.value("b", 4).to_int()) == (1, 2)

    PIPELINE = """
module pipe2 (input clk, input rst_n, input [3:0] din, output reg [3:0] s1, output reg [3:0] s2);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      s1 <= 4'd0;
      s2 <= 4'd0;
    end
    else begin
      s1 <= din;
      s2 <= s1;
    end
  end
endmodule
"""

    def test_pipeline_stages_delay_by_one(self):
        trace = run(self.PIPELINE, [{"din": v} for v in (5, 6, 7, 8)])
        assert trace.value("s1", 4).to_int() == 6
        assert trace.value("s2", 4).to_int() == 5


class TestCombinational:
    def test_assign_settles(self):
        source = """
module comb (input [3:0] a, input [3:0] b, output wire [3:0] x,
             output wire [3:0] y, input clk, input rst_n);
  assign x = a & b;
  assign y = x | 4'd1;
endmodule
"""
        trace = run(source, [{"a": 0b1100, "b": 0b1010}])
        assert trace.value("x", 2).to_int() == 0b1000
        assert trace.value("y", 2).to_int() == 0b1001

    def test_comb_always_block(self):
        source = """
module comb2 (input [1:0] sel, input [3:0] a, input [3:0] b,
              output reg [3:0] out, input clk, input rst_n);
  always @(*) begin
    if (sel == 2'd0) out = a;
    else out = b;
  end
endmodule
"""
        trace = run(source, [{"sel": 0, "a": 3, "b": 9},
                             {"sel": 1, "a": 3, "b": 9}])
        assert trace.value("out", 2).to_int() == 3
        assert trace.value("out", 3).to_int() == 9

    def test_comb_loop_settles_to_x(self):
        """With pessimistic 4-state evaluation an inverter loop converges
        to X immediately (X in -> X out), so the engine settles rather
        than oscillating; the loop guard exists for blocking-assignment
        pathologies."""
        source = """
module loop (input clk, input rst_n, output wire a, output wire b);
  assign a = ~b;
  assign b = ~a;
endmodule
"""
        result = compile_source(source)
        sim = Simulator(result.design)
        trace = sim.run(Stimulus([{}]))
        assert trace.value("a", 0).has_x
        assert trace.value("b", 0).has_x


class TestCaseStatements:
    def test_case_selects(self):
        source = """
module mux (input clk, input rst_n, input [1:0] sel, output reg [3:0] out);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) out <= 4'd0;
    else begin
      case (sel)
      2'd0: out <= 4'd10;
      2'd1: out <= 4'd11;
      default: out <= 4'd15;
      endcase
    end
  end
endmodule
"""
        trace = run(source, [{"sel": 0}, {"sel": 1}, {"sel": 3}, {"sel": 3}])
        assert trace.value("out", 3).to_int() == 10
        assert trace.value("out", 4).to_int() == 11
        assert trace.value("out", 5).to_int() == 15

    def test_casez_wildcards(self):
        source = """
module cz (input clk, input rst_n, input [2:0] code, output reg hit);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) hit <= 1'b0;
    else begin
      casez (code)
      3'b1zz: hit <= 1'b1;
      default: hit <= 1'b0;
      endcase
    end
  end
endmodule
"""
        trace = run(source, [{"code": 0b101}, {"code": 0b011}, {"code": 0b011}])
        assert trace.value("hit", 3).to_int() == 1
        assert trace.value("hit", 4).to_int() == 0


class TestAssignmentTargets:
    def test_bit_select_target(self):
        source = """
module bits (input clk, input rst_n, input din, output reg [3:0] r);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) r <= 4'd0;
    else r[2] <= din;
  end
endmodule
"""
        trace = run(source, [{"din": 1}, {"din": 1}])
        assert trace.value("r", 3).to_int() == 0b0100

    def test_part_select_target(self):
        source = """
module parts (input clk, input rst_n, input [1:0] din, output reg [3:0] r);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) r <= 4'd0;
    else r[3:2] <= din;
  end
endmodule
"""
        trace = run(source, [{"din": 0b11}, {"din": 0b11}])
        assert trace.value("r", 3).to_int() == 0b1100

    def test_shift_register_concat_rhs(self):
        source = """
module sr (input clk, input rst_n, input din, output reg [3:0] r);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) r <= 4'd0;
    else r <= {r[2:0], din};
  end
endmodule
"""
        trace = run(source, [{"din": 1}, {"din": 0}, {"din": 1}, {"din": 1}])
        assert trace.value("r", 5).to_int() == 0b101


class TestResetBehaviour:
    def test_active_high_reset_detected(self):
        source = """
module hi_rst (input clk, input reset, output reg [3:0] q);
  always @(posedge clk or posedge reset) begin
    if (reset) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
"""
        result = compile_source(source)
        assert result.ok
        assert "reset" in result.design.resets
        sim = Simulator(result.design)
        trace = sim.run(Stimulus([{}] * 3))
        assert trace.value("q", 2).to_int() == 0
        assert trace.value("q", 4).to_int() == 2

    def test_drive_unknown_input_raises(self):
        result = compile_source(COUNTER)
        sim = Simulator(result.design)
        with pytest.raises(SimulationError):
            sim.run(Stimulus([{"ghost": 1}]))


class TestDeterminism:
    def test_same_stimulus_same_trace(self, corpus_samples):
        import random

        from repro.sim.stimulus import reset_sequence

        for seed in corpus_samples[:4]:
            result = compile_source(seed.source)
            assert result.ok
            stim = reset_sequence(result.design, 6, random.Random(3))
            t1 = Simulator(result.design).run(stim)
            t2 = Simulator(result.design).run(stim)
            assert all(t1[i] == t2[i] for i in range(len(t1)))
