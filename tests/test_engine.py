"""The stage-graph execution engine: RNG derivation, backends, graphs,
compile caching, config validation, and the parallel==serial guarantee."""

import pytest

from repro.datagen.pipeline import (
    VOLATILE_STAT_KEYS,
    DatagenConfig,
    build_stage_graph,
    run_pipeline,
)
from repro.engine import (
    BACKENDS,
    ExecutionEngine,
    StageContext,
    StageGraph,
    derive_rng,
    derive_seed,
)
from repro.eval.runner import evaluate_model
from repro.verilog.compile import CompileCache, compile_source


def _square(x):
    return x * x


def _double(x):
    return 2 * x


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, "stage1", "mod_a") == \
            derive_seed(7, "stage1", "mod_a")

    def test_sensitive_to_every_part(self):
        base = derive_seed(7, "stage1", "mod_a")
        assert derive_seed(8, "stage1", "mod_a") != base
        assert derive_seed(7, "stage2", "mod_a") != base
        assert derive_seed(7, "stage1", "mod_b") != base

    def test_type_sensitive(self):
        assert derive_seed(1) != derive_seed("1")

    def test_no_boundary_collision(self):
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_derive_rng_streams_independent(self):
        a = derive_rng(1, "s", "u")
        b = derive_rng(1, "s", "u")
        assert [a.random() for _ in range(4)] == \
            [b.random() for _ in range(4)]

    def test_unit_ids_disambiguate_name_collisions(self):
        from repro.corpus.meta import DesignSeed
        from repro.datagen.stage1 import unit_ids

        seeds = [DesignSeed("adder_7", "src_a", None),
                 DesignSeed("adder_7", "src_b", None),
                 DesignSeed("mux_3", "src_c", None)]
        assert unit_ids(seeds) == ["adder_7", "adder_7#1", "mux_3"]

    def test_stage_context_labels(self):
        ctx = StageContext(2025, "stage2", "mod_x")
        assert ctx.rng("sva").random() != ctx.rng("bugs").random()
        assert ctx.seed_for("sva") == \
            StageContext(2025, "stage2", "mod_x").seed_for("sva")


class TestExecutionEngine:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_order(self, backend):
        with ExecutionEngine(n_workers=3, backend=backend) as engine:
            assert engine.map(_square, list(range(20))) == \
                [x * x for x in range(20)]

    def test_auto_degrades_to_serial_when_no_cores(self, monkeypatch):
        import repro.engine.executor as executor
        monkeypatch.setattr(executor, "available_cpus", lambda: 1)
        engine = executor.ExecutionEngine(n_workers=8, backend="auto")
        assert engine.backend == "serial"
        assert engine.requested_workers == 8

    def test_single_worker_is_serial(self):
        assert ExecutionEngine(n_workers=1, backend="process").backend \
            == "serial"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionEngine(backend="gpu")
        with pytest.raises(ValueError, match="n_workers"):
            ExecutionEngine(n_workers=0)

    def test_stats_accumulate_per_stage(self):
        with ExecutionEngine() as engine:
            engine.map(_square, [1, 2], stage="alpha")
            engine.map(_square, [3], stage="alpha")
            engine.map(_double, [4], stage="beta")
            stats = engine.stats()
        assert stats["stages"]["alpha"]["units"] == 3
        assert stats["stages"]["beta"]["units"] == 1
        assert stats["backend"] in BACKENDS

    def test_closed_engine_refuses_work(self):
        engine = ExecutionEngine()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.map(_square, [1])


class TestStageGraph:
    def test_runs_in_dependency_order(self):
        graph = StageGraph("g")
        graph.add_stage("a", lambda inputs: 2)
        graph.add_stage("b", lambda inputs: inputs["a"] + 3, deps=("a",))
        with ExecutionEngine() as engine:
            outputs = graph.run(engine)
        assert outputs == {"a": 2, "b": 5}

    def test_stage_fans_out_through_engine(self):
        graph = StageGraph("g")
        graph.add_stage("items", lambda inputs: [1, 2, 3])
        graph.add_stage("squares", lambda inputs: sum(
            inputs.engine.map(_square, inputs["items"], stage="squares")),
            deps=("items",))
        with ExecutionEngine(n_workers=2, backend="thread") as engine:
            outputs = graph.run(engine)
        assert outputs["squares"] == 14

    def test_undeclared_dependency_rejected(self):
        graph = StageGraph("g")
        with pytest.raises(ValueError, match="undeclared"):
            graph.add_stage("b", lambda inputs: 1, deps=("missing",))

    def test_duplicate_stage_rejected(self):
        graph = StageGraph("g")
        graph.add_stage("a", lambda inputs: 1)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_stage("a", lambda inputs: 2)

    def test_non_dependency_access_rejected(self):
        graph = StageGraph("g")
        graph.add_stage("a", lambda inputs: 1)
        graph.add_stage("b", lambda inputs: 2)
        graph.add_stage("c", lambda inputs: inputs["a"], deps=("b",))
        with ExecutionEngine() as engine:
            with pytest.raises(KeyError, match="declared"):
                graph.run(engine)

    def test_only_runs_requested_subgraph(self):
        ran = []
        graph = StageGraph("g")
        graph.add_stage("a", lambda inputs: ran.append("a"))
        graph.add_stage("b", lambda inputs: ran.append("b"), deps=("a",))
        graph.add_stage("c", lambda inputs: ran.append("c"))
        with ExecutionEngine() as engine:
            graph.run(engine, only=["b"])
        assert ran == ["a", "b"]

    def test_datagen_graph_shape(self):
        graph = build_stage_graph(DatagenConfig(n_designs=1))
        assert graph.stage_names() == \
            ["corpus", "stage1", "stage2", "split", "stage3"]
        assert "stage2 <- stage1" in graph.describe()


class TestCompileCache:
    GOLDEN = ("module t (input clk, input a, output reg q);\n"
              "  always @(posedge clk) q <= a;\nendmodule\n")

    def test_repeated_golden_compiles_hit(self):
        cache = CompileCache()
        first = cache.get_or_compile(self.GOLDEN)
        again = cache.get_or_compile(self.GOLDEN)
        assert first.ok
        assert again is first
        assert cache.counters() == {"hits": 1, "misses": 1,
                                    "evictions": 0, "store_hits": 0}
        assert cache.hit_rate == 0.5

    def test_failures_cached_too(self):
        cache = CompileCache()
        bad = "module broken (\n"
        assert not cache.get_or_compile(bad).ok
        assert not cache.get_or_compile(bad).ok
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = CompileCache(max_entries=1)
        cache.get_or_compile(self.GOLDEN)
        cache.get_or_compile("module other ();\n  assign 1;\nendmodule\n")
        assert cache.evictions == 1
        assert len(cache) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CompileCache(max_entries=0)

    def test_compile_source_bypass(self):
        a = compile_source(self.GOLDEN)
        b = compile_source(self.GOLDEN, use_cache=False)
        assert b is not a
        assert b.ok == a.ok


class TestDatagenConfigValidation:
    def test_defaults_valid(self):
        DatagenConfig()

    @pytest.mark.parametrize("field,value", [
        ("n_designs", 0), ("bugs_per_design", 0), ("bmc_depth", 0),
        ("bmc_random_trials", -1), ("n_workers", 0),
        ("compile_cache_size", 0), ("break_rate", 1.5),
        ("hallucination_rate", -0.1), ("train_fraction", 2.0),
        ("backend", "gpu"),
    ])
    def test_offending_field_named(self, field, value):
        with pytest.raises(ValueError, match=field):
            DatagenConfig(**{field: value})

    def test_mutated_config_revalidated_by_run(self):
        config = DatagenConfig(n_designs=2)
        config.train_fraction = 3.0
        with pytest.raises(ValueError, match="train_fraction"):
            run_pipeline(config)


class TestParallelDeterminism:
    CONFIG = dict(n_designs=8, bugs_per_design=2, seed=23,
                  bmc_depth=6, bmc_random_trials=8)

    def test_parallel_equals_serial(self):
        serial = run_pipeline(DatagenConfig(n_workers=1, **self.CONFIG))
        parallel = run_pipeline(DatagenConfig(n_workers=4,
                                              backend="process",
                                              **self.CONFIG))
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.comparable() == parallel.comparable()
        # The volatile keys exist on both sides but are allowed to differ.
        for key in VOLATILE_STAT_KEYS:
            assert key in serial.stats and key in parallel.stats
        assert parallel.stats["engine"]["backend"] == "process"

    def test_thread_backend_equals_serial(self):
        serial = run_pipeline(DatagenConfig(n_workers=1, **self.CONFIG))
        threaded = run_pipeline(DatagenConfig(n_workers=3, backend="thread",
                                              **self.CONFIG))
        assert serial.fingerprint() == threaded.fingerprint()

    def test_cache_disabled_same_datasets(self):
        cached = run_pipeline(DatagenConfig(**self.CONFIG))
        uncached = run_pipeline(DatagenConfig(compile_cache=False,
                                              **self.CONFIG))
        assert cached.fingerprint() == uncached.fingerprint()
        assert uncached.stats["compile_cache"]["hits"] == 0

    def test_pipeline_reports_cache_hits(self):
        bundle = run_pipeline(DatagenConfig(**self.CONFIG))
        assert bundle.stats["compile_cache"]["hits"] > 0
        assert 0.0 < bundle.stats["compile_cache"]["hit_rate"] <= 1.0


class TestBatchedSvaValidation:
    """The batched validator must reproduce per-proposal verdicts exactly."""

    def test_batched_matches_per_proposal(self):
        from repro.corpus.generator import CorpusGenerator
        from repro.datagen.stage2 import validate_svas
        from repro.oracles.sva import SvaOracle
        from repro.sva.bmc import BmcConfig

        bmc = BmcConfig(depth=6, random_trials=8)
        designs = CorpusGenerator(seed=51).generate(10)
        compared = 0
        for design in designs:
            # A high distortion rate exercises every rejection path:
            # syntax-broken, failing, and monitor-error proposals.
            oracle = SvaOracle(derive_rng(51, design.name),
                               hallucination_rate=0.6)
            proposals = oracle.propose(design)
            batched_valid, batched_rejected = validate_svas(
                design, proposals, bmc, mode="batched")
            ref_valid, ref_rejected = validate_svas(
                design, proposals, bmc, mode="per_proposal")
            assert [p.name for p in batched_valid] == \
                [p.name for p in ref_valid]
            assert batched_rejected == ref_rejected
            compared += len(proposals)
        assert compared > 0

    def test_invalid_mode_rejected(self):
        from repro.datagen.stage2 import validate_svas

        with pytest.raises(ValueError, match="sva_validation"):
            validate_svas(None, [], None, mode="turbo")

    def test_pipeline_identical_across_modes(self):
        config = dict(n_designs=6, bugs_per_design=2, seed=29,
                      bmc_depth=6, bmc_random_trials=8)
        batched = run_pipeline(DatagenConfig(**config))
        reference = run_pipeline(DatagenConfig(
            sva_validation="per_proposal", **config))
        assert batched.fingerprint() == reference.fingerprint()


class TestParallelEvaluation:
    def test_parallel_eval_equals_serial(self, small_bundle):
        from repro.baselines.engine import make_baseline

        cases = small_bundle.sva_eval_machine
        if not cases:
            pytest.skip("no machine cases at this scale")
        model = make_baseline("GPT-4", seed=3)
        serial = evaluate_model(model, cases, n=6, seed=11)
        with ExecutionEngine(n_workers=3, backend="process") as engine:
            parallel = evaluate_model(model, cases, n=6, seed=11,
                                      engine=engine)
        assert [(o.n, o.c) for o in serial.outcomes] == \
            [(o.n, o.c) for o in parallel.outcomes]
