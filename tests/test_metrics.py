"""Engine metrics provider registry: the edge cases around workers.

The registry's contract is deceptively small — register, snapshot,
delta, accumulate — but the engine leans on its corners: a provider
registered *after* a unit's "before" snapshot was taken (import-time
registration inside a worker), snapshots whose key sets drifted between
before and after, and accumulation over empty deltas.  These are the
cases that corrupt fleet-wide counters silently when they regress, so
they get pinned here.
"""

from __future__ import annotations

import pytest

from repro.engine import metrics


@pytest.fixture()
def provider_sandbox(monkeypatch):
    """Register test providers without leaking into other tests.

    ``monkeypatch.setitem`` restores ``_PROVIDERS`` entries on teardown;
    the fixture hands back a helper that both registers and schedules
    the cleanup.
    """
    def install(name, fn):
        monkeypatch.setitem(metrics._PROVIDERS, name, fn)

    return install


class TestProviderRegistry:
    def test_snapshot_copies_provider_dicts(self, provider_sandbox):
        counters = {"hits": 1}
        provider_sandbox("copytest", lambda: counters)
        snap = metrics.snapshot()
        counters["hits"] = 99
        # The snapshot is a copy — later provider mutation can't rewrite
        # an already-taken "before" snapshot.
        assert snap["copytest"]["hits"] == 1

    def test_register_provider_replaces(self, provider_sandbox):
        provider_sandbox("replacetest", lambda: {"v": 1})
        metrics.register_provider("replacetest", lambda: {"v": 2})
        assert metrics.snapshot()["replacetest"] == {"v": 2}

    def test_provider_registered_mid_run_appears_as_full_delta(
            self, provider_sandbox):
        # A worker imports a subsystem lazily: its provider shows up only
        # in the "after" snapshot.  The whole value must count as the
        # delta — there was no baseline to subtract.
        before = metrics.snapshot()
        assert "midrun" not in before
        provider_sandbox("midrun", lambda: {"compiles": 3, "hits": 0})
        after = metrics.snapshot()
        diff = metrics.delta(before, after)
        assert diff["midrun"] == {"compiles": 3}  # zero-delta keys dropped

    def test_provider_gone_from_after_is_dropped_not_negative(
            self, provider_sandbox):
        provider_sandbox("transient", lambda: {"n": 5})
        before = metrics.snapshot()
        del metrics._PROVIDERS["transient"]
        after = metrics.snapshot()
        # delta() only walks "after": a vanished provider contributes
        # nothing rather than a nonsense negative.
        assert "transient" not in metrics.delta(before, after)


class TestDelta:
    def test_missing_keys_on_either_side(self):
        before = {"p": {"a": 2, "gone": 7}}
        after = {"p": {"a": 5, "fresh": 3, "gone": 7}}
        diff = metrics.delta(before, after)
        # New key counts in full; unchanged key is elided; a key only in
        # "before" never yields a phantom negative.
        assert diff == {"p": {"a": 3, "fresh": 3}}

    def test_all_zero_deltas_elide_the_provider(self):
        snap = {"p": {"a": 1}, "q": {"b": 2}}
        assert metrics.delta(snap, snap) == {}

    def test_negative_movement_is_reported_not_masked(self):
        # Providers promise monotonic counters; if one breaks the
        # promise the delta surfaces it (a -1 in totals is debuggable,
        # a silently clamped 0 is not).
        diff = metrics.delta({"p": {"a": 5}}, {"p": {"a": 4}})
        assert diff == {"p": {"a": -1}}


class TestAccumulate:
    def test_accumulate_over_empty_snapshots(self):
        total = {}
        metrics.accumulate(total, {})
        assert total == {}
        metrics.accumulate(total, {"p": {"a": 1}})
        assert total == {"p": {"a": 1}}
        metrics.accumulate(total, {})  # empty increment is a no-op
        assert total == {"p": {"a": 1}}

    def test_accumulate_merges_in_place_across_providers(self):
        total = {"p": {"a": 1}}
        metrics.accumulate(total, {"p": {"a": 2, "b": 10}, "q": {"c": 4}})
        metrics.accumulate(total, {"q": {"c": 1}})
        assert total == {"p": {"a": 3, "b": 10}, "q": {"c": 5}}

    def test_round_trip_delta_then_accumulate(self):
        # The engine's actual loop: accumulate(delta(before, after))
        # over units reproduces the direct counter movement.
        before = {"p": {"a": 10, "b": 1}}
        mid = {"p": {"a": 12, "b": 1}}
        after = {"p": {"a": 15, "b": 4}}
        total = {}
        metrics.accumulate(total, metrics.delta(before, mid))
        metrics.accumulate(total, metrics.delta(mid, after))
        assert total == metrics.delta(before, after)


class TestSolveProfile:
    def test_add_time_accumulates_microseconds(self):
        base = metrics.profile_counters().get("unittest_phase_us", 0)
        metrics.add_time("unittest_phase", 0.002)
        metrics.add_time("unittest_phase", 0.003)
        assert metrics.profile_counters()["unittest_phase_us"] \
            == base + 5000

    def test_sub_microsecond_times_are_ignored(self):
        before = dict(metrics.profile_counters())
        metrics.add_time("unittest_zero", 0.0)
        metrics.add_time("unittest_zero", 0.0000001)
        assert "unittest_zero_us" not in metrics.profile_counters()
        assert metrics.profile_counters() == before

    def test_profile_is_a_registered_provider(self):
        assert "solve_profile" in metrics.snapshot()
