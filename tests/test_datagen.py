"""Datagen stages: filtering, validation, split, CoT attachment, pipeline."""

import random

import pytest

from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.datagen.records import distribution_table
from repro.datagen.split import assert_disjoint, split_by_module_name
from repro.datagen.stage1 import is_filtered_out, run_stage1
from repro.datagen.stage3 import run_stage3


class TestStage1:
    def test_filter_incomplete(self):
        assert is_filtered_out("assign y = a;") == "incomplete"

    def test_filter_no_logic(self):
        assert is_filtered_out(
            "module s ();\nendmodule") == "no_functional_logic"

    def test_golden_designs_pass_filter(self, corpus_samples):
        for seed in corpus_samples:
            assert is_filtered_out(seed.source) is None

    def test_stage1_outputs(self, corpus_samples, rng):
        result = run_stage1(corpus_samples, rng, break_rate=0.5)
        assert result.compiled
        assert result.pt_entries
        assert result.filtered_count > 0          # junk was mixed in
        assert result.failed_compile_count > 0    # broken siblings exist

    def test_duplicates_removed(self, corpus_samples, rng):
        doubled = corpus_samples + corpus_samples[:3]
        result = run_stage1(doubled, rng, break_rate=0.0)
        assert result.duplicate_count >= 3

    def test_failing_entries_have_analysis(self, corpus_samples, rng):
        result = run_stage1(corpus_samples, rng, break_rate=1.0)
        failing = [e for e in result.pt_entries if not e.compiles]
        assert failing
        assert all(e.analysis for e in failing)


class TestStage2AndBundle:
    def test_bundle_structure(self, small_bundle):
        assert small_bundle.verilog_pt
        assert small_bundle.sva_bug_train
        assert small_bundle.stats["stage2_accepted_svas"] > 0

    def test_sva_bug_entries_well_formed(self, small_bundle):
        for entry in small_bundle.sva_bug_train:
            assert "failed assertion" in entry.logs
            assert entry.failing_labels
            assert entry.assertion_signals
            lines = entry.buggy_source_with_sva.splitlines()
            assert lines[entry.record.line - 1].strip() == entry.record.buggy_line

    def test_verilog_bug_entries_fired_nothing(self, small_bundle):
        # Verilog-Bug entries carry no logs by construction.
        for entry in small_bundle.verilog_bug[:10]:
            assert entry.record.buggy_line != entry.record.fixed_line

    def test_question_answer_rendering(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        question = entry.question_text()
        assert "Simulation logs:" in question
        assert "specification" in question
        answer = entry.answer_text()
        assert f"Buggy line {entry.record.line}" in answer
        if entry.step_by_step:
            assert "step by step" in question
            assert "Reasoning:" in answer

    def test_hallucination_rejections_counted(self, small_bundle):
        assert small_bundle.stats["stage2_rejected_svas"] >= 0
        total = (small_bundle.stats["stage2_rejected_svas"]
                 + small_bundle.stats["stage2_accepted_svas"])
        assert total > 0


class TestSplit:
    def test_disjoint_module_names(self, small_bundle):
        train_names = {e.record.design_name
                       for e in small_bundle.sva_bug_train}
        test_names = {c.record.design_name
                      for c in small_bundle.sva_eval_machine}
        assert not train_names & test_names

    def test_split_ratio_close_to_target(self, small_bundle):
        entries = (small_bundle.sva_bug_train
                   + [c.entry for c in small_bundle.sva_eval_machine])
        train, test = split_by_module_name(entries, random.Random(0),
                                           train_fraction=0.9)
        assert_disjoint(train, test)
        assert len(train) > len(test)

    def test_assert_disjoint_raises_on_overlap(self, small_bundle):
        entries = small_bundle.sva_bug_train
        if len(entries) >= 2:
            with pytest.raises(AssertionError):
                assert_disjoint(entries, entries)


class TestStage3:
    def test_cot_attached_to_valid_fraction(self, small_bundle):
        with_cot = [e for e in small_bundle.sva_bug_train if e.cot]
        without = [e for e in small_bundle.sva_bug_train if not e.cot]
        assert with_cot, "no CoTs were validated"
        assert without or len(with_cot) == len(small_bundle.sva_bug_train)

    def test_stage3_rate_reported(self, small_bundle):
        rate = small_bundle.stats["cot_validity_rate"]
        assert 0.0 < rate <= 1.0

    def test_rerun_is_idempotent_on_fields(self, small_bundle):
        entries = list(small_bundle.sva_bug_train)
        result = run_stage3(entries, seed=99)
        assert len(result.entries) == len(entries)


class TestDistributionTable:
    def test_counts_cover_all_axes(self, small_bundle):
        table = distribution_table(small_bundle.sva_bug_train)
        n = len(small_bundle.sva_bug_train)
        # Each entry lands in exactly one bucket per axis.
        relation_total = table.get("Direct", 0) + table.get("Indirect", 0)
        cond_total = table.get("Cond", 0) + table.get("Non_cond", 0)
        kind_total = (table.get("Var", 0) + table.get("Value", 0)
                      + table.get("Op", 0))
        assert relation_total == n
        assert cond_total == n
        assert kind_total == n


class TestPipelineScaling:
    def test_tiny_pipeline_runs(self):
        bundle = run_pipeline(DatagenConfig(n_designs=6, bugs_per_design=2,
                                            seed=31, bmc_depth=6,
                                            bmc_random_trials=8))
        assert bundle.verilog_pt
        assert bundle.summary()

    def test_deterministic_given_seed(self):
        config = DatagenConfig(n_designs=5, bugs_per_design=2, seed=17,
                               bmc_depth=6, bmc_random_trials=8)
        a = run_pipeline(config)
        b = run_pipeline(config)
        assert len(a.sva_bug_train) == len(b.sva_bug_train)
        if a.sva_bug_train:
            assert a.sva_bug_train[0].record.buggy_line == \
                b.sva_bug_train[0].record.buggy_line
