"""Expression evaluator semantics over 4-state environments."""

import pytest

from repro.sim.eval import EvalError, Evaluator
from repro.sim.values import FourState
from repro.verilog import ast
from repro.verilog.parser import parse_module


def make_evaluator(env, params=None):
    def lookup(name):
        try:
            return env[name]
        except KeyError:
            raise EvalError(name)
    return Evaluator(lookup, params or {})


def parse_rhs(text):
    module = parse_module(
        "module t (input [7:0] a, input [7:0] b, input c);\n"
        f"wire [15:0] w;\nassign w = {text};\nendmodule")
    assigns = [i for i in module.items
               if isinstance(i, ast.ContinuousAssign)]
    return assigns[-1].value


def evaluate(text, **values):
    env = {name: FourState(8, v) if not isinstance(v, FourState) else v
           for name, v in values.items()}
    return make_evaluator(env).eval(parse_rhs(text))


class TestOperators:
    def test_arithmetic(self):
        assert evaluate("a + b", a=3, b=4).to_int() == 7
        assert evaluate("a - b", a=3, b=4).to_int() == 255  # 8-bit wrap
        assert evaluate("a * b", a=5, b=5).to_int() == 25
        assert evaluate("a / b", a=9, b=2).to_int() == 4
        assert evaluate("a % b", a=9, b=2).to_int() == 1

    def test_bitwise(self):
        assert evaluate("a & b", a=0b1100, b=0b1010).to_int() == 0b1000
        assert evaluate("a | b", a=0b1100, b=0b1010).to_int() == 0b1110
        assert evaluate("a ^ b", a=0b1100, b=0b1010).to_int() == 0b0110
        assert evaluate("~a", a=0).to_int() == 255

    def test_comparisons(self):
        assert evaluate("a == b", a=4, b=4).is_true()
        assert evaluate("a != b", a=4, b=5).is_true()
        assert evaluate("a < b", a=4, b=5).is_true()
        assert evaluate("a >= b", a=5, b=5).is_true()

    def test_logical(self):
        assert evaluate("a && b", a=2, b=3).is_true()
        assert evaluate("a && b", a=0, b=3).is_false()
        assert evaluate("a || b", a=0, b=0).is_false()
        assert evaluate("!a", a=0).is_true()

    def test_shifts(self):
        assert evaluate("a << 2", a=1).to_int() == 4
        assert evaluate("a >> 1", a=4).to_int() == 2

    def test_reductions(self):
        assert evaluate("&a", a=255).is_true()
        assert evaluate("|a", a=0).is_false()
        assert evaluate("^a", a=0b0111).is_true()

    def test_ternary_known(self):
        assert evaluate("c ? a : b", c=1, a=10, b=20).to_int() == 10
        assert evaluate("c ? a : b", c=0, a=10, b=20).to_int() == 20

    def test_ternary_unknown_select_merges(self):
        out = evaluate("c ? a : b", c=FourState.unknown(1), a=10, b=10)
        assert out.to_int() == 10 and not out.has_x
        out = evaluate("c ? a : b", c=FourState.unknown(1), a=10, b=11)
        assert out.has_x

    def test_selects(self):
        assert evaluate("a[2]", a=0b0100).is_true()
        assert evaluate("a[3:1]", a=0b1010).to_int() == 0b101

    def test_concat_and_repeat(self):
        assert evaluate("{a[3:0], b[3:0]}", a=0xA, b=0x5).to_int() == 0xA5
        assert evaluate("{2{a[3:0]}}", a=0xF).to_int() == 0xFF

    def test_case_equality(self):
        x = FourState(8, 0, 0xFF)
        assert evaluate("a === b", a=x, b=x).is_true()
        assert evaluate("a !== b", a=x, b=3).is_true()

    def test_sized_literals(self):
        assert evaluate("a + 8'd10", a=5).to_int() == 15


class TestSysFunctions:
    def test_countones(self):
        assert evaluate("$countones(a)", a=0b1011).to_int() == 3

    def test_onehot(self):
        assert evaluate("$onehot(a)", a=0b0100).is_true()
        assert evaluate("$onehot(a)", a=0b0110).is_false()
        assert evaluate("$onehot0(a)", a=0).is_true()

    def test_temporal_requires_hook(self):
        with pytest.raises(EvalError):
            evaluate("$past(a)", a=1)


class TestParams:
    def test_parameter_lookup(self):
        evaluator = make_evaluator({}, params={"W": 12})
        value = evaluator.eval(ast.Ident("W"))
        assert value.to_int() == 12

    def test_unknown_identifier_raises(self):
        evaluator = make_evaluator({})
        with pytest.raises(EvalError):
            evaluator.eval(ast.Ident("ghost"))


class TestEvalBool:
    def test_truthiness(self):
        evaluator = make_evaluator({"x": FourState(8, 2)})
        assert evaluator.eval_bool(ast.Ident("x")).is_true()

    def test_unknown_propagates(self):
        evaluator = make_evaluator({"x": FourState.unknown(8)})
        assert evaluator.eval_bool(ast.Ident("x")).has_x
