"""Annotation oracles: spec writer, SVA hallucination model, CoT validity."""

import random

from repro.datagen.stage2 import validate_svas
from repro.oracles.cot import CotOracle
from repro.oracles.spec import analyze_compile_failure, write_spec
from repro.oracles.sva import SvaOracle
from repro.sva.bmc import BmcConfig


class TestSpecOracle:
    def test_spec_lists_ports(self, corpus_samples):
        seed = corpus_samples[0]
        spec = write_spec(seed.source, seed.meta)
        assert "## Ports" in spec and "## Function" in spec
        assert "clk" in spec

    def test_spec_includes_behaviour(self, corpus_samples):
        seed = corpus_samples[0]
        spec = write_spec(seed.source, seed.meta)
        for bullet in seed.meta.behaviour[:2]:
            assert bullet in spec

    def test_spec_without_meta(self, corpus_samples):
        spec = write_spec(corpus_samples[0].source, None)
        assert "## Ports" in spec

    def test_failure_analysis_empty_for_good_code(self, corpus_samples):
        assert analyze_compile_failure(corpus_samples[0].source) == ""

    def test_failure_analysis_explains(self):
        analysis = analyze_compile_failure(
            "module m ();\nassign ghost = 1'b0;\nendmodule")
        assert "Compilation fails" in analysis
        assert "Likely cause" in analysis


class TestSvaOracle:
    def test_no_hallucination_passes_validation(self, corpus_samples):
        oracle = SvaOracle(random.Random(1), hallucination_rate=0.0)
        seed = corpus_samples[0]
        proposals = oracle.propose(seed)
        assert all(p.distortion is None for p in proposals)
        valid, rejected = validate_svas(seed, proposals,
                                        BmcConfig(depth=8, random_trials=10))
        assert rejected == 0
        assert len(valid) == len(proposals)

    def test_full_hallucination_mostly_rejected(self, corpus_samples):
        oracle = SvaOracle(random.Random(2), hallucination_rate=1.0)
        total_rejected = 0
        total = 0
        for seed in corpus_samples[:6]:
            proposals = oracle.propose(seed)
            assert all(p.distortion is not None for p in proposals)
            valid, rejected = validate_svas(
                seed, proposals, BmcConfig(depth=8, random_trials=10))
            total_rejected += rejected
            total += len(proposals)
        # The whole point of Stage 2: hallucinations get filtered.  A few
        # distortions can survive as weaker-but-true properties.
        assert total_rejected >= total * 0.5

    def test_syntax_distortion_never_compiles(self, corpus_samples):
        from repro.sva.insert import compile_with_sva

        oracle = SvaOracle(random.Random(3), hallucination_rate=1.0)
        seed = corpus_samples[0]
        saw_syntax = False
        for _ in range(20):
            for proposal in oracle.propose(seed):
                if proposal.distortion == "syntax":
                    saw_syntax = True
                    assert not compile_with_sva(seed.source,
                                                proposal.blocks()).ok
        assert saw_syntax

    def test_deterministic(self, corpus_samples):
        seed = corpus_samples[0]
        a = SvaOracle(random.Random(7), 0.5).propose(seed)
        b = SvaOracle(random.Random(7), 0.5).propose(seed)
        assert [p.distortion for p in a] == [p.distortion for p in b]


class TestCotOracle:
    def _one_entry(self, small_bundle):
        return small_bundle.sva_bug_train[0]

    def test_correct_chain_concludes_golden(self, small_bundle):
        entry = self._one_entry(small_bundle)
        oracle = CotOracle(random.Random(1), validity_rate=1.0)
        proposal = oracle.generate(entry.record, entry.logs,
                                   entry.assertion_signals)
        assert proposal.is_correct_for(entry.record)
        assert "Step 1" in proposal.text
        assert str(entry.record.line) in proposal.text

    def test_derailed_chain_rejected(self, small_bundle):
        entry = self._one_entry(small_bundle)
        oracle = CotOracle(random.Random(1), validity_rate=0.0)
        proposal = oracle.generate(entry.record, entry.logs,
                                   entry.assertion_signals)
        assert not proposal.is_correct_for(entry.record)

    def test_validity_rate_calibration(self, small_bundle):
        """Observed validity over many generations approaches the paper's
        74.55% setting."""
        oracle = CotOracle(random.Random(5))
        entries = small_bundle.sva_bug_train
        correct = 0
        total = 0
        for _ in range(6):
            for entry in entries:
                proposal = oracle.generate(entry.record, entry.logs,
                                           entry.assertion_signals)
                total += 1
                correct += proposal.is_correct_for(entry.record)
        assert total >= 60
        assert 0.55 <= correct / total <= 0.92
