"""Shared fixtures.

Expensive artefacts (dataset bundle, trained models, human benchmark) are
session-scoped and built at a deliberately small scale — every test needs
behaviour, not statistical power.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus.generator import CorpusGenerator
from repro.datagen.pipeline import DatagenConfig, run_pipeline

ACCU_SOURCE = """
module accu (
  input clk,
  input rst_n,
  input [7:0] data_in,
  input valid_in,
  output reg valid_out,
  output reg [9:0] data_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = valid_in && (cnt == 2'd3);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= end_cnt ? 2'd0 : cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 1'b0;
    else if (end_cnt) valid_out <= 1'b1;
    else valid_out <= 1'b0;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) data_out <= 10'd0;
    else if (valid_in) data_out <= end_cnt ? {2'b00, data_in} : data_out + data_in;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out not high");
endmodule
"""

ACCU_BUGGY_SOURCE = ACCU_SOURCE.replace("else if (end_cnt) valid_out <= 1'b1;",
                                        "else if (!end_cnt) valid_out <= 1'b1;")


@pytest.fixture(scope="session")
def accu_source():
    return ACCU_SOURCE


@pytest.fixture(scope="session")
def accu_buggy_source():
    return ACCU_BUGGY_SOURCE


@pytest.fixture(scope="session")
def small_bundle():
    """A small but complete dataset bundle (shared across tests)."""
    return run_pipeline(DatagenConfig(n_designs=16, bugs_per_design=3,
                                      seed=7, bmc_depth=8,
                                      bmc_random_trials=12))


@pytest.fixture(scope="session")
def corpus_samples():
    """A couple dozen canonical golden designs."""
    generator = CorpusGenerator(seed=99)
    return generator.generate(24)


@pytest.fixture(scope="session")
def trained_models(small_bundle):
    """(base, sft, assertsolver) trained on the small bundle."""
    from repro.model.assertsolver import AssertSolver

    base = AssertSolver(seed=5, name="base")
    sft = AssertSolver(seed=5, name="sft")
    sft.pretrain(small_bundle.verilog_pt)
    sft.train_sft(small_bundle.sva_bug_train, small_bundle.verilog_bug,
                  epochs=8)
    solver = sft.clone_checkpoint("assertsolver")
    solver._train_examples = sft._train_examples
    solver.train_dpo(epochs=3)
    return base, sft, solver


@pytest.fixture(scope="session")
def human_cases():
    from repro.corpus.human import build_human_cases

    return build_human_cases()


@pytest.fixture()
def rng():
    return random.Random(1234)
