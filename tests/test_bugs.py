"""Bug taxonomy, mutators, injector and classification."""

import random

from repro.bugs.classify import (
    assertion_expr_signals,
    classify_conditionality,
    classify_relation,
    targets_of_line,
)
from repro.bugs.injector import BugInjector, single_line_diff
from repro.bugs.mutators import enumerate_mutations
from repro.bugs.taxonomy import (
    BUG_TYPE_ORDER,
    TABLE1_ROWS,
    BugKind,
    Conditionality,
    Relation,
    length_bin_label,
    length_bin_of,
)
from repro.verilog.compile import compile_source
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


class TestTaxonomy:
    def test_table1_has_seven_rows(self):
        assert len(TABLE1_ROWS) == 7
        assert [row[0] for row in TABLE1_ROWS] == BUG_TYPE_ORDER

    def test_length_bins(self):
        assert length_bin_of(30) == (0, 50)
        assert length_bin_of(50) == (0, 50)
        assert length_bin_of(51) == (50, 100)
        assert length_bin_of(150) == (100, 150)
        assert length_bin_of(500) == (200, None)

    def test_bin_labels(self):
        assert length_bin_label((0, 50)) == "(0, 50]"
        assert length_bin_label((200, None)) == "(200, +inf)"


class TestMutators:
    def test_enumeration_nonempty(self, corpus_samples):
        for seed in corpus_samples[:8]:
            module = parse_module(seed.source)
            assert enumerate_mutations(module)

    def test_apply_revert_restores_source(self, corpus_samples):
        module = parse_module(corpus_samples[0].source)
        baseline = write_module(module)
        for candidate in enumerate_mutations(module)[:100]:
            candidate.apply()
            candidate.revert()
        assert write_module(module) == baseline

    def test_mutation_changes_emission(self, corpus_samples):
        module = parse_module(corpus_samples[0].source)
        baseline = write_module(module)
        changed = 0
        for candidate in enumerate_mutations(module)[:50]:
            candidate.apply()
            if write_module(module) != baseline:
                changed += 1
            candidate.revert()
        assert changed > 40  # nearly all candidates are real edits

    def test_repair_only_ops_flagged(self, corpus_samples):
        # At least the deletion-style repair must be present somewhere in
        # the corpus sample set.
        all_ops = set()
        for seed in corpus_samples[:10]:
            m = parse_module(seed.source)
            all_ops.update(c.op_name for c in enumerate_mutations(m)
                           if c.repair_only)
        assert all_ops  # repair-only space is non-empty


class TestInjector:
    def test_single_line_diff(self):
        assert single_line_diff("a\nb\nc", "a\nX\nc") == 2
        assert single_line_diff("a\nb", "a\nb") is None
        assert single_line_diff("a\nb", "X\nY") is None
        assert single_line_diff("a\nb", "a\nb\nc") is None

    def test_inject_produces_single_line_bug(self, corpus_samples, rng):
        injector = BugInjector(rng)
        for seed in corpus_samples[:8]:
            record = injector.inject(seed.source, seed.name)
            assert record is not None
            assert single_line_diff(record.golden_source,
                                    record.buggy_source) == record.line

    def test_record_lines_match_sources(self, corpus_samples, rng):
        injector = BugInjector(rng)
        record = injector.inject(corpus_samples[0].source)
        buggy_line = record.buggy_source.splitlines()[record.line - 1]
        fixed_line = record.golden_source.splitlines()[record.line - 1]
        assert buggy_line.strip() == record.buggy_line
        assert fixed_line.strip() == record.fixed_line
        assert record.buggy_line != record.fixed_line

    def test_inject_many_distinct(self, corpus_samples, rng):
        injector = BugInjector(rng)
        records = injector.inject_many(corpus_samples[1].source, 5)
        keys = {(r.line, r.buggy_line) for r in records}
        assert len(keys) == len(records)

    def test_injected_bugs_compile(self, corpus_samples, rng):
        injector = BugInjector(rng)
        for seed in corpus_samples[:6]:
            for record in injector.inject_many(seed.source, 3, seed.name):
                assert compile_source(record.buggy_source).ok

    def test_kind_marginals_value_heavy(self, corpus_samples):
        """Injection follows the paper's Table II kind mix (Value-heavy)."""
        injector = BugInjector(random.Random(42))
        kinds = []
        for seed in corpus_samples:
            for record in injector.inject_many(seed.source, 4, seed.name):
                kinds.append(record.kind)
        total = len(kinds)
        assert total > 40
        value_share = sum(1 for k in kinds if k == BugKind.VALUE) / total
        var_share = sum(1 for k in kinds if k == BugKind.VAR) / total
        assert value_share > 0.4
        assert var_share < 0.25

    def test_closure_golden_fix_in_repair_space(self, corpus_samples):
        """The fault model is contained in the repair space."""
        from repro.model.candidates import enumerate_repairs

        injector = BugInjector(random.Random(8))
        total = found = 0
        for seed in corpus_samples[:10]:
            for record in injector.inject_many(seed.source, 3, seed.name):
                total += 1
                space = enumerate_repairs(record.buggy_source)
                if space.golden_index(record.line,
                                      record.fixed_line) is not None:
                    found += 1
        assert total > 0
        assert found == total


class TestClassification:
    SOURCE = """
module demo (input clk, input rst_n, input en, input [3:0] d, output reg [3:0] q, output wire flag);
  reg [3:0] shadow;
  assign flag = q == 4'd7;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      q <= 4'd0;
      shadow <= 4'd0;
    end
    else if (en) begin
      q <= d;
      shadow <= q;
    end
  end
endmodule
"""

    @staticmethod
    def _line_of(source, needle):
        for i, text in enumerate(source.splitlines()):
            if text.strip() == needle or needle in text:
                return i + 1
        raise AssertionError(f"{needle!r} not found")

    @classmethod
    def _canonical_module(cls):
        """AST line numbers must refer to the canonical emission, so (as
        the pipeline does everywhere) parse the canonical text."""
        canonical = write_module(parse_module(cls.SOURCE))
        return parse_module(canonical), canonical

    def test_targets_of_assignment_line(self):
        module, source = self._canonical_module()
        line_no = self._line_of(source, "q <= d;")
        assert targets_of_line(module, line_no) == ["q"]

    def test_targets_of_condition_line(self):
        module, source = self._canonical_module()
        cond_line = self._line_of(source, "else if (en)")
        targets = targets_of_line(module, cond_line)
        assert set(targets) >= {"q", "shadow"}

    def test_conditionality(self):
        module, source = self._canonical_module()
        cond_line = self._line_of(source, "else if (en)")
        assign_line = self._line_of(source, "q <= d;")
        assert classify_conditionality(module, cond_line) == Conditionality.COND
        assert classify_conditionality(module, assign_line) == Conditionality.NON_COND

    def test_relation_direct_vs_indirect(self):
        module, source = self._canonical_module()
        q_line = self._line_of(source, "q <= d;")
        shadow_line = self._line_of(source, "shadow <= q;")
        assert classify_relation(module, q_line, ["q"]) == Relation.DIRECT
        assert classify_relation(module, shadow_line, ["q"]) == Relation.INDIRECT

    def test_assertion_expr_signals(self, accu_source):
        module = parse_module(accu_source)  # label lookup is line-agnostic
        signals = assertion_expr_signals(module, "valid_out_check_assertion")
        assert set(signals) == {"end_cnt", "valid_out"}
