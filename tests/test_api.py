"""End-to-end pipeline API and paper-shape integration checks.

The shape assertions here are the reproduction's acceptance criteria:
Base << SFT <= AssertSolver on pass@1, extremity mass grows with DPO,
and the pipeline report renders every artefact.
"""

import pytest

from repro.core.api import AssertSolverPipeline, PipelineConfig
from repro.eval.histogram import extremity_mass


@pytest.fixture(scope="module")
def tiny_pipeline():
    config = PipelineConfig(n_designs=40, bugs_per_design=3, seed=41,
                            n_samples=10, include_human=False,
                            include_baselines=True)
    pipeline = AssertSolverPipeline(config)
    pipeline.evaluate()
    return pipeline


class TestPipelineApi:
    def test_lazy_stages(self, tiny_pipeline):
        assert tiny_pipeline.bundle is not None
        assert tiny_pipeline.assertsolver is not None
        assert tiny_pipeline.benchmark is not None

    def test_all_models_evaluated(self, tiny_pipeline):
        results = tiny_pipeline.evaluate()
        for name in ("Base Model", "SFT Model", "AssertSolver",
                     "GPT-4", "o1-preview"):
            assert name in results

    def test_table3_shape_base_far_below_sft(self, tiny_pipeline):
        results = tiny_pipeline.table3_results()
        base = results["Base Model"].pass_at(1)
        sft = results["SFT Model"].pass_at(1)
        solver = results["AssertSolver"].pass_at(1)
        assert base < 0.3
        assert sft > base + 0.2
        assert solver >= sft - 0.1  # DPO must not regress pass@1 materially

    def test_fig3_shape_dpo_extremity(self, tiny_pipeline):
        results = tiny_pipeline.evaluate()
        sft_mass = extremity_mass(results["SFT Model"],
                                  tiny_pipeline.config.n_samples)
        dpo_mass = extremity_mass(results["AssertSolver"],
                                  tiny_pipeline.config.n_samples)
        assert dpo_mass >= sft_mass - 0.1

    def test_report_renders_everything(self, tiny_pipeline):
        report = tiny_pipeline.report()
        for marker in ("Table I", "Table II", "Table III", "Table IV",
                       "Fig 3", "Fig 4", "Fig 5"):
            assert marker in report

    def test_repro_package_exports(self):
        import repro

        assert repro.AssertSolverPipeline is AssertSolverPipeline
        assert repro.PipelineConfig is PipelineConfig

    def test_shared_pipeline_cache(self):
        from repro.core.api import shared_pipeline

        config = PipelineConfig(n_designs=40, bugs_per_design=3, seed=41,
                                n_samples=10, include_human=False)
        assert shared_pipeline(config) is shared_pipeline(config)


class TestSemanticCheckExtension:
    def test_golden_fix_passes_semantic_check(self, tiny_pipeline):
        from repro.eval.runner import semantic_check
        from repro.model.assertsolver import SolverResponse

        cases = tiny_pipeline.build_benchmark().machine
        if not cases:
            pytest.skip("no machine cases at this scale")
        case = cases[0]
        record = case.record
        golden = SolverResponse(record.line, record.buggy_line,
                                record.fixed_line)
        assert semantic_check(golden, case)

    def test_noop_fix_fails_semantic_check(self, tiny_pipeline):
        from repro.eval.runner import semantic_check
        from repro.model.assertsolver import SolverResponse

        cases = tiny_pipeline.build_benchmark().machine
        if not cases:
            pytest.skip("no machine cases at this scale")
        case = cases[0]
        record = case.record
        noop = SolverResponse(record.line, record.buggy_line,
                              record.buggy_line)
        assert not semantic_check(noop, case)
