"""Coverage & assertion-quality telemetry.

The contract under test, layer by layer:

- **Tier identity** — a :class:`CoverageSink` fed by the interpreter and
  one fed by a compiled program emit *byte-identical* reports, over
  every corpus family, on golden and bug-injected designs, for both
  ``bounded_check`` and ``bounded_check_batch``.
- **Purity** — coverage is an execution knob: it never changes verdicts,
  response proposals, content keys or bundle fingerprints, and
  coverage-off responses serialize to exactly the pre-coverage bytes.
- **Semantics** — toggle counting is known-bits-only and never spans
  stimulus boundaries; block "fired" means a target signal changed;
  vacuous implication passes are counted apart from real ones.
- **Aggregation** — reports merge (counts add, covered bits max),
  worker-pool runs land in ``bundle.stats["coverage"]``, ``/covz``
  retains per-design reports with bounded LRU eviction, and the fleet
  router's merge counts every backend's report exactly once.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import cov
from repro.bugs.injector import BugInjector
from repro.corpus.generator import CorpusGenerator
from repro.corpus.registry import TEMPLATE_FAMILIES
from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine.rng import derive_rng
from repro.obs import metrics as obs_metrics
from repro.oracles.sva import SvaOracle
from repro.serve import (
    AssertClient,
    AssertHttpServer,
    AssertService,
    ServeConfig,
    SolveOptions,
    SolveRequest,
)
from repro.serve.service import SolveResponse
from repro.sim.values import FourState
from repro.sva.bmc import BmcConfig, bounded_check, bounded_check_batch
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source

FAMILIES = sorted(TEMPLATE_FAMILIES)

FAST_BMC = dict(depth=6, random_trials=4)


def _bmc(sim_mode: str, coverage: bool = True) -> BmcConfig:
    return BmcConfig(sim_mode=sim_mode, coverage=coverage, **FAST_BMC)


def _dump(report) -> str:
    return json.dumps(report, sort_keys=True)


@pytest.fixture(scope="module", params=FAMILIES)
def family_design(request):
    """One asserted design per corpus family: golden source + oracle SVAs."""
    seed = CorpusGenerator(seed=77).generate_one(family=request.param)
    oracle = SvaOracle(derive_rng(77, "test_cov", request.param))
    proposals = oracle.propose(seed)
    blocks = [block for p in proposals for block in p.blocks()]
    result = compile_with_sva(seed.source, blocks)
    if not result.ok:  # pragma: no cover - depends on oracle output
        result = compile_source(seed.source)
        assert result.ok, result.failure_summary()
    return request.param, seed, result.design


# -- tier identity -------------------------------------------------------------


class TestTierIdentity:
    def test_bounded_check_coverage_byte_identical(self, family_design):
        family, seed, design = family_design
        compiled = bounded_check(design, _bmc("compiled"))
        interp = bounded_check(design, _bmc("interp"))
        assert compiled.coverage is not None or not design.assertions
        assert _dump(compiled.coverage) == _dump(interp.coverage), family

    def test_bounded_check_batch_coverage_byte_identical(self, family_design):
        family, seed, design = family_design
        compiled = bounded_check_batch(design, _bmc("compiled"))
        interp = bounded_check_batch(design, _bmc("interp"))
        assert _dump(compiled.coverage) == _dump(interp.coverage), family

    def test_mutated_design_coverage_identical(self, family_design):
        """Bug-injected designs (FAIL verdicts, early exits) must agree
        too — early termination points are tier-identical by contract."""
        family, seed, design = family_design
        record = BugInjector(random.Random(5)).inject(seed.source, seed.name)
        if record is None:  # pragma: no cover - family with no mutation site
            pytest.skip(f"no mutation applies to {family}")
        oracle = SvaOracle(derive_rng(77, "test_cov", family))
        blocks = [block for p in oracle.propose(seed) for block in p.blocks()]
        buggy = compile_with_sva(record.buggy_source, blocks)
        if not buggy.ok:  # pragma: no cover - mutation broke compilation
            pytest.skip(f"buggy {family} variant does not compile")
        assert _dump(bounded_check(buggy.design, _bmc("compiled")).coverage) \
            == _dump(bounded_check(buggy.design, _bmc("interp")).coverage), \
            family
        assert _dump(
            bounded_check_batch(buggy.design, _bmc("compiled")).coverage) \
            == _dump(
                bounded_check_batch(buggy.design, _bmc("interp")).coverage), \
            family

    def test_coverage_never_changes_verdicts(self, family_design):
        family, seed, design = family_design
        plain = bounded_check(design, _bmc("compiled", coverage=False))
        covered = bounded_check(design, _bmc("compiled", coverage=True))
        assert plain.coverage is None
        assert (plain.failed, plain.stimuli_tried, plain.sim_error) == \
            (covered.failed, covered.stimuli_tried, covered.sim_error), family


# -- sink semantics ------------------------------------------------------------


def _sink_for(source: str):
    compiled = compile_source(source)
    assert compiled.ok, compiled.failure_summary()
    return cov.CoverageSink.for_design(compiled.design), compiled.design


TOGGLE_SOURCE = """
module tiny (
  input clk,
  input rst_n,
  input [3:0] d,
  output reg [3:0] q
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= d;
  end
endmodule
"""


class TestSinkSemantics:
    def test_toggles_count_rise_and_fall_separately(self):
        sink, design = _sink_for(TOGGLE_SOURCE)
        env = {name: FourState(design.symbols[name].width)
               for name in design.symbols}
        snapshots = [env,
                     dict(env, q=FourState(4, 0b0101)),   # two rises on q
                     dict(env, q=FourState(4, 0b0100))]   # one fall on q
        sink.begin_run(snapshots)
        report = sink.report()
        q = report["signals"]["q"]
        assert q["rise_bits"] == 2
        assert q["fall_bits"] == 1
        assert q["covered_bits"] == 1  # only bit 0 rose AND fell
        assert report["toggle_events"] == 3

    def test_unknown_bits_never_toggle(self):
        sink, design = _sink_for(TOGGLE_SOURCE)
        env = {name: FourState(design.symbols[name].width)
               for name in design.symbols}
        # q goes 0 -> X: no known transition on any bit.
        sink.begin_run([env, dict(env, q=FourState(4, 0, 0b1111))])
        assert sink.report()["toggle_events"] == 0

    def test_toggles_never_span_runs(self):
        sink, design = _sink_for(TOGGLE_SOURCE)
        zeros = {name: FourState(design.symbols[name].width)
                 for name in design.symbols}
        ones = dict(zeros, q=FourState(4, 0b1111))
        sink.begin_run([ones])
        sink.begin_run([zeros])  # first snapshot of a new run: no toggle
        report = sink.report()
        assert report["toggle_events"] == 0
        assert report["runs"] == 2
        assert report["cycles"] == 2

    def test_block_fires_on_target_change(self):
        sink, design = _sink_for(TOGGLE_SOURCE)
        env = {name: FourState(design.symbols[name].width)
               for name in design.symbols}
        snapshots = [env, dict(env)]  # nothing changed: no fire
        sink.begin_run(snapshots)
        assert sink.report()["blocks"] == {"seq[0]": 0}
        # The run keeps growing after a mid-run report: the sink resumes
        # from the last processed snapshot.
        snapshots.append(dict(env, q=FourState(4, 1)))
        report = sink.report()
        assert report["blocks"] == {"seq[0]": 1}
        assert report["blocks_fired"] == 1
        assert report["block_pct"] == 1.0

    def test_report_keys_are_sorted_for_byte_identity(self, family_design):
        family, seed, design = family_design
        report = bounded_check(design, _bmc("compiled")).coverage
        if report is None:  # pragma: no cover - assertion-free oracle output
            pytest.skip(f"{family} produced no assertions")
        assert json.dumps(report) == json.dumps(report, sort_keys=True)


# -- vacuity -------------------------------------------------------------------

#: The consequent only matters when the antecedent fired; driving req=0
#: makes every pass vacuous.
VACUOUS_SOURCE = """
module vac (
  input clk,
  input rst_n,
  input req,
  output reg ack
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) ack <= 1'b0;
    else ack <= req;
  end
  property req_ack;
    @(posedge clk) disable iff (!rst_n) req |-> ##1 ack;
  endproperty
  req_ack_assertion: assert property (req_ack) else $error("no ack");
endmodule
"""


class TestVacuity:
    def test_quality_counters_split_real_and_vacuous(self):
        design = compile_source(VACUOUS_SOURCE).design
        result = bounded_check(design, _bmc("compiled"))
        counters = result.coverage["assertions"]["req_ack_assertion"]
        assert counters["fails"] == 0
        assert counters["vacuous"] > 0          # req=0 cycles
        assert counters["real_passes"] > 0      # req=1 cycles
        assert counters["activations"] == counters["real_passes"]

    def test_quality_identical_across_tiers_and_drivers(self):
        design = compile_source(VACUOUS_SOURCE).design
        reports = [bounded_check(design, _bmc(mode)).coverage
                   for mode in ("compiled", "interp")]
        reports += [bounded_check_batch(design, _bmc(mode)).coverage
                    for mode in ("compiled", "interp")]
        quality = [r["assertions"] for r in reports]
        assert all(q == quality[0] for q in quality)

    def test_failing_assertion_counts_fails(self, accu_buggy_source):
        design = compile_source(accu_buggy_source).design
        result = bounded_check(design, BmcConfig(depth=8, random_trials=8,
                                                 coverage=True))
        assert result.failed
        counters = result.coverage["assertions"]["valid_out_check_assertion"]
        assert counters["fails"] >= 1


# -- merging and retention -----------------------------------------------------


class TestMerge:
    def test_counts_add_and_bits_max(self):
        design = compile_source(VACUOUS_SOURCE).design
        a = bounded_check(design, _bmc("compiled")).coverage
        assert a["cycles"] > 0
        merged = cov.merge_reports([a, a])
        assert merged["cycles"] == 2 * a["cycles"]
        assert merged["runs"] == 2 * a["runs"]
        assert merged["toggle_events"] == 2 * a["toggle_events"]
        for name, stats in merged["signals"].items():
            assert stats["covered_bits"] == a["signals"][name]["covered_bits"]
        assert merged["toggle_pct"] == a["toggle_pct"]

    def test_empty_and_single(self):
        assert cov.merge_reports([]) == {}
        sink, _ = _sink_for(TOGGLE_SOURCE)
        report = sink.report()
        assert cov.merge_reports([report]) == report

    def test_buffer_lru_eviction_and_limit(self):
        buffer = cov.CoverageBuffer(max_designs=2)
        for name in ("a", "b", "c"):
            sink, _ = _sink_for(TOGGLE_SOURCE)
            report = sink.report()
            report["design"] = name
            buffer.record(report)
        snap = buffer.snapshot()
        assert [d["design"] for d in snap["designs"]] == ["c", "b"]
        assert snap["dropped"] == 1
        assert snap["recorded"] == 3
        assert len(buffer.snapshot(limit=1)["designs"]) == 1
        buffer.clear()
        assert buffer.snapshot()["retained"] == 0

    def test_buffer_merges_repeat_designs(self):
        buffer = cov.CoverageBuffer()
        sink, _ = _sink_for(TOGGLE_SOURCE)
        report = sink.report()
        report["cycles"] = 5
        buffer.record(report)
        buffer.record(dict(report))
        snap = buffer.snapshot()
        assert snap["retained"] == 1
        assert snap["designs"][0]["cycles"] == 10

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            cov.CoverageBuffer(max_designs=0)

    def test_merge_covz_payloads_counts_once(self):
        sink, _ = _sink_for(TOGGLE_SOURCE)
        report = sink.report()
        report["cycles"] = 7
        one = {"designs": [report], "recorded": 1, "dropped": 0,
               "retained": 1}
        other = {"designs": [dict(report)], "recorded": 2, "dropped": 1,
                 "retained": 1}
        merged = cov.merge_covz_payloads([one, other])
        assert merged["recorded"] == 3
        assert merged["dropped"] == 1
        assert merged["retained"] == 1
        assert merged["designs"][0]["cycles"] == 14


# -- pipeline aggregation ------------------------------------------------------


class TestPipelineAggregation:
    COMMON = dict(n_designs=4, bugs_per_design=2, seed=41,
                  bmc_depth=6, bmc_random_trials=6)

    def test_stats_carry_coverage_and_digest_is_unchanged(self):
        off = run_pipeline(DatagenConfig(**self.COMMON))
        on = run_pipeline(DatagenConfig(coverage=True, **self.COMMON))
        assert on.fingerprint() == off.fingerprint()
        assert "coverage" in on.stats
        assert on.stats["coverage"]["reports_total"] > 0
        assert on.stats["coverage"]["toggles_total"] > 0
        assert on.stats["coverage"]["vacuous_total"] >= 0
        # Off-runs report zero collection activity for the run itself.
        assert off.stats["coverage"]["reports_total"] == 0

    def test_process_pool_totals_match_serial(self):
        serial = run_pipeline(DatagenConfig(coverage=True, **self.COMMON))
        pooled = run_pipeline(DatagenConfig(coverage=True, n_workers=2,
                                            backend="process", **self.COMMON))
        assert pooled.fingerprint() == serial.fingerprint()
        assert pooled.stats["coverage"] == serial.stats["coverage"]


# -- serve layer ---------------------------------------------------------------


def _serve_config(**overrides) -> ServeConfig:
    config = dict(n_workers=1, backend="serial", result_cache=False)
    config.update(overrides)
    return ServeConfig(**config)


class TestServeCoverage:
    @pytest.fixture(scope="class")
    def corpus(self):
        generator = CorpusGenerator(seed=19)
        return [generator.generate_one(family=f)
                for f in ("counter", "alu", "handshake")]

    def _solve_all(self, config, seeds):
        with AssertService(config) as service:
            return [service.solve(SolveRequest(
                s.source, SolveOptions.for_design(s, bmc_depth=6,
                                                  bmc_random_trials=6)))
                    for s in seeds]

    def test_coverage_off_bytes_unchanged(self, corpus):
        off = self._solve_all(_serve_config(), corpus)
        on = self._solve_all(_serve_config(coverage=True), corpus)
        for r_off, r_on in zip(off, on):
            assert "coverage" not in json.loads(r_off.to_json())
            stripped = json.loads(r_on.to_json())
            stripped.pop("coverage", None)
            assert json.dumps(stripped, sort_keys=True) == r_off.to_json()

    def test_coverage_identical_across_sim_modes(self, corpus):
        compiled = self._solve_all(
            _serve_config(coverage=True, sim_mode="compiled"), corpus)
        interp = self._solve_all(
            _serve_config(coverage=True, sim_mode="interp"), corpus)
        assert [r.to_json() for r in compiled] == \
            [r.to_json() for r in interp]

    def test_vacuity_penalized_scores_bounded_by_score(self, corpus):
        for response in self._solve_all(_serve_config(coverage=True), corpus):
            scores = response.coverage["scores"]
            structural = {p.name: p.score for p in response.proposals}
            assert set(scores) == set(structural)
            for name, value in scores.items():
                assert 0.0 <= value <= structural[name]

    def test_response_codec_roundtrips_coverage(self):
        from repro.serve.http import response_from_json

        response = SolveResponse("ok", "k" * 8, coverage={"report": {},
                                                          "scores": {}})
        parsed = response_from_json(response.to_json())
        assert parsed.to_json() == response.to_json()
        plain = SolveResponse("ok", "k" * 8)
        assert response_from_json(plain.to_json()).coverage is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(coverage="yes")
        with pytest.raises(ValueError):
            DatagenConfig(coverage=1)


class TestHttpCovz:
    @pytest.fixture(scope="class")
    def server(self):
        with AssertHttpServer(
                AssertService(_serve_config(coverage=True))) as server:
            seed = CorpusGenerator(seed=23).generate_one(family="counter")
            client = AssertClient.for_server(server)
            client.solve(SolveRequest(
                seed.source, SolveOptions.for_design(
                    seed, bmc_depth=6, bmc_random_trials=6)))
            yield server

    def test_covz_retains_solved_designs(self, server):
        payload = AssertClient.for_server(server).covz()
        assert payload["retained"] == 1
        assert payload["recorded"] >= 1
        report = payload["designs"][0]
        assert report["cycles"] > 0
        assert 0.0 <= report["toggle_pct"] <= 1.0

    def test_covz_limit_param(self, server):
        client = AssertClient.for_server(server)
        assert client.covz(limit=0)["designs"] == []
        assert len(client.covz(limit=5)["designs"]) == 1

    def test_tracez_limit_params(self, server):
        payload = AssertClient.for_server(server).tracez(limit=0, slowest=0)
        assert payload["recent"] == []
        assert payload["slowest"] == []

    def test_bad_query_param_is_400(self, server):
        client = AssertClient.for_server(server)
        status, _, data = client._request("GET", "/covz?limit=nope")
        assert status == 400
        assert "limit" in data.decode("utf-8")
        status, _, _ = client._request("GET", "/tracez?slowest=-1")
        assert status == 400

    def test_metricsz_exposes_coverage_counters(self, server):
        parsed = obs_metrics.parse_prometheus_text(
            AssertClient.for_server(server).metricsz())
        assert parsed.value("repro_coverage_reports_total") >= 1
        assert parsed.value("repro_coverage_toggles_total") > 0


class TestFleetCovz:
    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.core.api import FleetConfig, make_fleet

        cov.reset()  # the router's local payload reads the global buffer
        router = make_fleet(FleetConfig(n_backends=3),
                            _serve_config(coverage=True))
        with router:
            generator = CorpusGenerator(seed=29)
            client = AssertClient(host=router.address[0], port=router.port)
            responses = [client.solve(SolveRequest(
                s.source, SolveOptions.for_design(
                    s, bmc_depth=6, bmc_random_trials=6)))
                for s in (generator.generate_one(family=f)
                          for f in ("counter", "alu", "shift_register"))]
            yield router, client, responses

    def test_covz_merges_without_double_count(self, fleet):
        router, client, responses = fleet
        payload = client.covz()
        assert payload["backends_reached"] == 3
        assert payload["recorded"] == len(responses)
        want = sum(r.coverage["report"]["toggle_events"] for r in responses)
        got = sum(d["toggle_events"] for d in payload["designs"])
        assert got == want

    def test_router_metricsz_counts_ejections_once(self, fleet):
        router, client, _ = fleet
        parsed = obs_metrics.parse_prometheus_text(client.metricsz())
        stats = router.stats()
        assert parsed.value("repro_router_ejections_total") == \
            stats["ejections"]
        assert parsed.value("repro_router_readmissions_total") == \
            stats["readmissions"]

    def test_router_forwards_limit_on_fan_out(self, fleet):
        router, client, _ = fleet
        assert client.covz(limit=0)["designs"] == []
        assert len(client.covz(limit=1)["designs"]) == 1
