"""The scenario template families (FSM/memory/arbiter) and the corpus as
a parallel engine stage: per-design seed derivation, family selection and
weighting knobs, and the parallel==serial byte-equality guarantee."""

import random

import pytest

from repro.corpus.generator import (
    DEFAULT_FAMILY_WEIGHTS,
    CorpusGenerator,
    resolve_families,
)
from repro.corpus.registry import (
    SCENARIO_FAMILIES,
    TEMPLATE_FAMILIES,
    make_instance,
)
from repro.datagen.pipeline import DatagenConfig, run_pipeline
from repro.engine import ExecutionEngine
from repro.sva.bmc import BmcConfig, bounded_check_batch
from repro.sva.insert import compile_with_sva
from repro.verilog.compile import compile_source


class TestScenarioFamilies:
    def test_all_registered(self):
        assert set(SCENARIO_FAMILIES) <= set(TEMPLATE_FAMILIES)
        assert {"moore_handshake", "mealy_handshake", "sync_fifo",
                "skid_buffer", "round_robin_arbiter", "priority_arbiter"} \
            == set(SCENARIO_FAMILIES)

    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_compiles(self, family):
        for trial in range(3):
            seed = make_instance(family, random.Random(trial))
            result = compile_source(seed.source)
            assert result.ok, f"{family}: {result.failure_summary()}"

    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_golden_svas_pass_batched_check(self, family):
        """Every hint of every scenario family must survive one shared
        bounded check (the pipeline's batched validation path)."""
        canonical = CorpusGenerator(seed=41).generate_one(family)
        blocks = []
        for hint in canonical.meta.sva_hints:
            blocks.append(hint.property_source())
            blocks.append(hint.assertion_source())
        combined = compile_with_sva(canonical.source, blocks)
        assert combined.ok, combined.failure_summary()
        outcome = bounded_check_batch(
            combined.design, BmcConfig(depth=10, random_trials=24))
        assert outcome.design_error is None
        rejected = [hint.name for hint in canonical.meta.sva_hints
                    if outcome.rejects(f"{hint.name}_assertion")]
        assert not rejected, f"{family}: rejected {rejected}"

    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    def test_meta_family_matches_registry_key(self, family):
        seed = make_instance(family, random.Random(1))
        assert seed.meta.family == family
        assert seed.meta.sva_hints and seed.meta.behaviour


class TestFamilySelection:
    def test_resolve_defaults_cover_registry(self):
        names, weights = resolve_families()
        assert names == tuple(sorted(TEMPLATE_FAMILIES))
        assert len(weights) == len(names)
        assert weights[names.index("register_file")] == \
            DEFAULT_FAMILY_WEIGHTS["register_file"]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown template family"):
            resolve_families(["not_a_family"])

    def test_empty_selection_rejected(self):
        """Explicitly empty is an error; only None means 'all families'."""
        with pytest.raises(ValueError, match="empty"):
            resolve_families(())
        with pytest.raises(ValueError, match="empty"):
            DatagenConfig(template_families=())

    def test_duplicate_selection_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            resolve_families(["fsm", "fsm"])

    def test_weight_for_unselected_family_rejected(self):
        with pytest.raises(ValueError, match="unselected"):
            resolve_families(["fsm"], {"sync_fifo": 2.0})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            resolve_families(["fsm"], {"fsm": 0.0})

    def test_generator_samples_only_selected(self):
        chosen = ["sync_fifo", "round_robin_arbiter"]
        designs = CorpusGenerator(seed=9, families=chosen).generate(20)
        assert {d.meta.family for d in designs} == set(chosen)

    def test_weights_shift_distribution(self):
        chosen = ["moore_handshake", "skid_buffer"]
        heavy = CorpusGenerator(seed=9, families=chosen,
                                weights={"skid_buffer": 50.0}).generate(40)
        counts = {}
        for design in heavy:
            counts[design.meta.family] = counts.get(design.meta.family, 0) + 1
        assert counts.get("skid_buffer", 0) > counts.get("moore_handshake", 0)

    def test_datagen_config_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown template family"):
            DatagenConfig(template_families=("bogus_family",))
        with pytest.raises(ValueError, match="unknown template family"):
            DatagenConfig(family_weights={"bogus_family": 2.0})


class TestCorpusEngineStage:
    def test_parallel_generation_equals_serial(self):
        serial = CorpusGenerator(seed=33).generate(16)
        with ExecutionEngine(n_workers=4, backend="process") as engine:
            parallel = CorpusGenerator(seed=33).generate(16, engine=engine)
        assert [(d.name, d.source) for d in serial] == \
            [(d.name, d.source) for d in parallel]

    def test_generate_one_walk_matches_batch(self):
        batch = CorpusGenerator(seed=33).generate(8)
        walker = CorpusGenerator(seed=33)
        walk = [walker.generate_one() for _ in range(8)]
        assert [d.source for d in walk] == [d.source for d in batch]

    def test_corpus_stage_counted_by_engine(self):
        config = DatagenConfig(n_designs=4, bugs_per_design=2, seed=3,
                               bmc_depth=6, bmc_random_trials=8)
        bundle = run_pipeline(config)
        assert bundle.stats["engine"]["stages"]["corpus"]["units"] == 4

    def test_scenario_pipeline_parallel_equals_serial(self):
        """Acceptance: a bundle built from the three new scenario family
        groups is byte-identical between n_workers=1 and n_workers=4 and
        contains designs from each group."""
        families = ("moore_handshake", "mealy_handshake", "sync_fifo",
                    "skid_buffer", "round_robin_arbiter", "priority_arbiter")
        common = dict(n_designs=9, bugs_per_design=2, seed=19,
                      bmc_depth=6, bmc_random_trials=8,
                      template_families=families,
                      family_weights={"sync_fifo": 1.5})
        serial = run_pipeline(DatagenConfig(n_workers=1, **common))
        parallel = run_pipeline(DatagenConfig(n_workers=4, backend="process",
                                              **common))
        assert serial.fingerprint() == parallel.fingerprint()
        produced = set(serial.stats["corpus_families"])
        assert produced <= set(families)
        assert produced & {"moore_handshake", "mealy_handshake"}
        assert produced & {"sync_fifo", "skid_buffer"}
        assert produced & {"round_robin_arbiter", "priority_arbiter"}
