"""Parser unit tests: structure, precedence, SVA layer, diagnostics."""

import pytest

from repro.verilog import ast
from repro.verilog.errors import VerilogParseError
from repro.verilog.parser import parse_module, parse_source
from repro.verilog.writer import write_expr


def parse_expr(text):
    module = parse_module(f"module t (input a, input b, input c);\n"
                          f"wire [7:0] x;\nwire [7:0] y;\nwire [7:0] z;\n"
                          f"wire [7:0] w;\nassign w = {text};\nendmodule")
    assigns = [i for i in module.items if isinstance(i, ast.ContinuousAssign)]
    return assigns[-1].value


class TestModuleStructure:
    def test_simple_module(self):
        module = parse_module("module m (input a, output b);\n"
                              "assign b = a;\nendmodule")
        assert module.name == "m"
        assert [p.name for p in module.ports] == ["a", "b"]

    def test_port_directions_and_widths(self):
        module = parse_module(
            "module m (input [7:0] a, output reg [3:0] b, inout c);\n"
            "endmodule")
        a, b, c = module.ports
        assert (a.direction, a.msb, a.lsb) == ("input", 7, 0)
        assert b.is_reg and b.width == 4
        assert c.direction == "inout"

    def test_parameterized_range(self):
        module = parse_module(
            "module m (input clk);\nparameter W = 8;\n"
            "reg [W-1:0] r;\nalways @(posedge clk)\nr <= 0;\nendmodule")
        decl = module.decls()[0]
        assert isinstance(decl.msb, ast.Binary)  # folded at elaboration

    def test_multiple_decls_one_statement(self):
        module = parse_module("module m ();\nwire a, b, c;\nendmodule")
        assert [d.name for d in module.decls()] == ["a", "b", "c"]

    def test_decl_with_init(self):
        module = parse_module("module m ();\nreg r = 1'b1;\nendmodule")
        assert module.decls()[0].init is not None

    def test_missing_endmodule(self):
        with pytest.raises(VerilogParseError):
            parse_source("module m ();")

    def test_empty_source(self):
        with pytest.raises(VerilogParseError):
            parse_source("// nothing here")

    def test_two_modules(self):
        source = parse_source("module a ();\nendmodule\n"
                              "module b ();\nendmodule")
        assert [m.name for m in source.modules] == ["a", "b"]

    def test_instance_parsed(self):
        module = parse_module(
            "module top (input x, output y);\n"
            "sub u0 (.a(x), .b(y));\nendmodule")
        inst = [i for i in module.items if isinstance(i, ast.Instance)][0]
        assert inst.module_name == "sub"
        assert [c[0] for c in inst.connections] == ["a", "b"]


class TestStatements:
    def _always_body(self, body):
        module = parse_module(
            f"module m (input clk, input a, input b);\n"
            f"reg [3:0] r;\nreg [3:0] s;\n"
            f"always @(posedge clk) {body}\nendmodule")
        blocks = [i for i in module.items if isinstance(i, ast.AlwaysBlock)]
        return blocks[0].body

    def test_nonblocking_assignment(self):
        stmt = self._always_body("r <= a;")
        assert isinstance(stmt, ast.Assignment) and not stmt.blocking

    def test_blocking_assignment(self):
        stmt = self._always_body("r = a;")
        assert stmt.blocking

    def test_if_else_chain(self):
        stmt = self._always_body(
            "begin if (a) r <= 0; else if (b) r <= 1; else r <= 2; end")
        outer = stmt.stmts[0]
        assert isinstance(outer, ast.If)
        assert isinstance(outer.other, ast.If)

    def test_case_with_default(self):
        stmt = self._always_body(
            "case (r)\n2'd0: s <= 1;\n2'd1, 2'd2: s <= 2;\n"
            "default: s <= 0;\nendcase")
        assert isinstance(stmt, ast.Case)
        assert len(stmt.items) == 3
        assert stmt.items[1].labels and len(stmt.items[1].labels) == 2
        assert stmt.items[2].is_default

    def test_empty_statement(self):
        stmt = self._always_body(";")
        assert isinstance(stmt, ast.Block) and not stmt.stmts

    def test_sensitivity_list_edges(self):
        module = parse_module(
            "module m (input clk, input rst_n);\nreg r;\n"
            "always @(posedge clk or negedge rst_n) r <= 1;\nendmodule")
        block = [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0]
        assert [(e.edge, e.signal) for e in block.edges] == \
            [("posedge", "clk"), ("negedge", "rst_n")]

    def test_comb_star(self):
        module = parse_module("module m (input a);\nreg r;\n"
                              "always @(*) r = a;\nendmodule")
        block = [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0]
        assert block.comb

    def test_missing_semicolon_raises(self):
        with pytest.raises(VerilogParseError):
            parse_module("module m (input a);\nwire w\nendmodule")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("x + y * z")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_precedence_compare_over_logical(self):
        expr = parse_expr("x == y && a")
        assert expr.op == "&&"
        assert expr.lhs.op == "=="

    def test_parenthesized_grouping(self):
        expr = parse_expr("(x + y) * z")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_ternary(self):
        expr = parse_expr("a ? x : y")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        expr = parse_expr("a ? x : b ? y : z")
        assert isinstance(expr.other, ast.Ternary)

    def test_unary_reduction(self):
        expr = parse_expr("^x")
        assert isinstance(expr, ast.Unary) and expr.op == "^"

    def test_bit_select(self):
        expr = parse_expr("x[3]")
        assert isinstance(expr, ast.BitSelect)

    def test_part_select(self):
        expr = parse_expr("x[7:4]")
        assert isinstance(expr, ast.PartSelect)

    def test_concat(self):
        expr = parse_expr("{x, y, z}")
        assert isinstance(expr, ast.Concat) and len(expr.parts) == 3

    def test_replication(self):
        expr = parse_expr("{4{a}}")
        assert isinstance(expr, ast.Repeat)

    def test_syscall_in_expression(self):
        expr = parse_expr("$countones(x)")
        assert isinstance(expr, ast.SysCall) and expr.name == "$countones"

    def test_write_expr_minimal_parens(self):
        expr = parse_expr("(x + y) * z")
        assert write_expr(expr) == "(x + y) * z"
        expr2 = parse_expr("x + y * z")
        assert write_expr(expr2) == "x + y * z"


class TestSvaParsing:
    SOURCE = """
module m (input clk, input rst_n, input a, input b);
  property p1;
    @(posedge clk) disable iff (!rst_n) a |-> ##1 b;
  endproperty
  p1_assert: assert property (p1) else $error("message text");
  inline_check: assert property (@(posedge clk) a |=> b);
endmodule
"""

    def test_property_declaration(self):
        module = parse_module(self.SOURCE)
        prop = module.properties()[0]
        assert prop.name == "p1"
        assert prop.clock.signal == "clk"
        assert prop.disable is not None

    def test_implication_structure(self):
        module = parse_module(self.SOURCE)
        body = module.properties()[0].body
        assert isinstance(body, ast.PropImplication) and body.overlapped
        assert isinstance(body.consequent, ast.PropDelay)
        assert body.consequent.lo == 1

    def test_assertion_binding(self):
        module = parse_module(self.SOURCE)
        assertion = module.assertions()[0]
        assert assertion.label == "p1_assert"
        assert assertion.property_name == "p1"
        assert assertion.message == "message text"

    def test_inline_assertion(self):
        module = parse_module(self.SOURCE)
        inline = module.assertions()[1]
        assert inline.inline is not None
        body = inline.inline.body
        assert isinstance(body, ast.PropImplication) and not body.overlapped

    def test_delay_range(self):
        module = parse_module(
            "module m (input clk, input a, input b);\n"
            "property p;\n@(posedge clk) a |-> ##[1:3] b;\nendproperty\n"
            "c: assert property (p);\nendmodule")
        body = module.properties()[0].body
        assert (body.consequent.lo, body.consequent.hi) == (1, 3)

    def test_not_property(self):
        module = parse_module(
            "module m (input clk, input a);\n"
            "property p;\n@(posedge clk) not (a);\nendproperty\n"
            "c: assert property (p);\nendmodule")
        assert isinstance(module.properties()[0].body, ast.PropNot)
