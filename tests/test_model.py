"""Model stack: tokenizer, LM, candidates, features, SFT, DPO, inference."""

import random

import numpy as np
import pytest

from repro.model.assertsolver import AssertSolver, Problem, SolverResponse
from repro.model.candidates import enumerate_repairs
from repro.model.dpo import calibrate_margin, mine_challenging, sample_indices, train_dpo
from repro.model.features import DIM, FEATURE_NAMES, CaseContext, parse_failing_labels
from repro.model.ngram_lm import NgramLM
from repro.model.sft import TrainExample, softmax, train_sft
from repro.model.tokenizer import tokenize_line, tokenize_text


class TestTokenizer:
    def test_identifiers_kept_whole(self):
        assert "valid_out" in tokenize_line("valid_out <= 1'b1;")

    def test_small_numbers_distinct(self):
        a = tokenize_line("x <= 4'd3;")
        b = tokenize_line("x <= 4'd4;")
        assert a != b

    def test_large_numbers_bucketed(self):
        a = tokenize_line("x <= 8'd200;")
        b = tokenize_line("x <= 8'd201;")
        assert a == b

    def test_operators_single_tokens(self):
        tokens = tokenize_line("a <= b + c;")
        assert "<=" in tokens and "+" in tokens

    def test_blank_lines_skipped(self):
        assert len(tokenize_text("a;\n\n\nb;")) == 2


class TestNgramLm:
    def test_untrained_constant_score(self):
        lm = NgramLM()
        assert lm.line_surprisal("anything at all") == 10.0

    def test_training_lowers_seen_line_surprisal(self, small_bundle):
        lm = NgramLM()
        lm.train_texts(e.text() for e in small_bundle.verilog_pt)
        seen = "count <= count + 4'd1;"
        assert lm.line_surprisal(seen) < lm.line_surprisal(
            "weird_name_xyz <= other_weird + strange;")

    def test_mutated_line_scores_worse(self, small_bundle):
        """The PT mechanism: a mutated line is off-distribution."""
        lm = NgramLM()
        lm.train_texts(e.text() for e in small_bundle.verilog_pt)
        wins = 0
        total = 0
        for entry in small_bundle.sva_bug_train[:20]:
            good = lm.line_surprisal(entry.record.fixed_line)
            bad = lm.line_surprisal(entry.record.buggy_line)
            total += 1
            wins += bad >= good
        assert wins / total > 0.6

    def test_perplexity_finite_on_corpus(self, small_bundle, corpus_samples):
        lm = NgramLM()
        lm.train_texts(e.text() for e in small_bundle.verilog_pt)
        perplexity = lm.perplexity(corpus_samples[0].source)
        assert 1.0 < perplexity < 10000.0


class TestCandidates:
    def test_golden_in_space_for_train_entries(self, small_bundle):
        for entry in small_bundle.sva_bug_train:
            space = enumerate_repairs(entry.buggy_source_with_sva)
            assert space.golden_index(entry.record.line,
                                      entry.record.fixed_line) is not None

    def test_candidates_deduplicated(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        space = enumerate_repairs(entry.buggy_source_with_sva)
        keys = [c.key for c in space.candidates]
        assert len(keys) == len(set(keys))

    def test_candidates_are_real_edits(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        space = enumerate_repairs(entry.buggy_source_with_sva)
        for candidate in space.candidates:
            assert candidate.new_line != candidate.old_line

    def test_baseline_matches_input_source(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        space = enumerate_repairs(entry.buggy_source_with_sva)
        assert space.source == entry.buggy_source_with_sva

    def test_find_lookup(self, small_bundle):
        entry = small_bundle.sva_bug_train[0]
        space = enumerate_repairs(entry.buggy_source_with_sva)
        candidate = space.candidates[0]
        assert space.find(candidate.line, candidate.new_line) is candidate


class TestFeatures:
    def test_parse_failing_labels(self):
        logs = ("failed assertion m.check_a at cycle 4: msg\n"
                "failed assertion m.check_b at cycle 9")
        assert parse_failing_labels(logs) == ["check_a", "check_b"]

    def test_feature_dim_consistent(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        entry = small_bundle.sva_bug_train[0]
        space = enumerate_repairs(entry.buggy_source_with_sva)
        context = CaseContext(entry.buggy_source_with_sva, entry.spec,
                              entry.logs, sft.lm)
        matrix = context.matrix(space.candidates)
        assert matrix.shape == (len(space), DIM)
        assert len(FEATURE_NAMES) == DIM

    def test_cone_features_fire_for_golden(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        hits = 0
        for entry in small_bundle.sva_bug_train[:10]:
            space = enumerate_repairs(entry.buggy_source_with_sva)
            gold = space.golden_index(entry.record.line,
                                      entry.record.fixed_line)
            context = CaseContext(entry.buggy_source_with_sva, entry.spec,
                                  entry.logs, sft.lm)
            vector = context.vector(space.candidates[gold])
            in_cone = vector[FEATURE_NAMES.index("in_cone")]
            hits += in_cone > 0
        assert hits >= 7  # the buggy line is nearly always in the cone


class TestSftTraining:
    def test_softmax_sums_to_one(self):
        logits = np.array([1.0, 2.0, 3.0])
        assert softmax(logits).sum() == pytest.approx(1.0)

    def test_training_reduces_loss(self, trained_models):
        _, sft, _ = trained_models
        losses = sft.sft_stats.epoch_losses
        assert losses[-1] < losses[0]

    def test_training_accuracy_beats_chance(self, trained_models):
        _, sft, _ = trained_models
        assert sft.sft_stats.final_train_accuracy > 0.5

    def test_gold_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TrainExample(np.zeros((3, DIM)), 5)

    def test_empty_training_returns_zero_weights(self):
        weights, stats = train_sft([])
        assert not weights.any()


class TestDpo:
    def test_sampling_distribution_respects_logits(self):
        rng = random.Random(0)
        logits = np.array([0.0, 5.0])
        draws = sample_indices(logits, temperature=0.2, n=200, rng=rng)
        assert draws.count(1) > 190

    def test_high_temperature_more_uniform(self):
        rng = random.Random(0)
        logits = np.array([0.0, 5.0])
        draws = sample_indices(logits, temperature=50.0, n=200, rng=rng)
        assert 40 < draws.count(0) < 160

    def test_mine_challenging_finds_uncertain_cases(self, trained_models):
        _, sft, _ = trained_models
        examples = [e for e in sft._train_examples if e.weight >= 1.0]
        triples = mine_challenging(examples, sft.weights, seed=3)
        for triple in triples:
            assert triple.wrong_indices
            assert triple.gold_index not in triple.wrong_indices

    def test_dpo_improves_pair_margins(self, trained_models):
        _, sft, _ = trained_models
        examples = [e for e in sft._train_examples if e.weight >= 1.0]
        triples = mine_challenging(examples, sft.weights, seed=3)
        if not triples:
            pytest.skip("no challenging cases at this scale")
        updated = train_dpo(triples, sft.weights, lr=0.05, epochs=4)
        before = after = 0.0
        for triple in triples:
            z0 = triple.features @ sft.weights
            z1 = triple.features @ updated
            for wrong in triple.wrong_indices:
                before += z0[triple.gold_index] - z0[wrong]
                after += z1[triple.gold_index] - z1[wrong]
        assert after >= before

    def test_margin_calibration_scales_up(self, trained_models):
        _, sft, _ = trained_models
        examples = [e for e in sft._train_examples if e.weight >= 1.0]
        weights, scale = calibrate_margin(examples, sft.weights)
        assert scale >= 1.0
        assert np.allclose(weights, sft.weights * scale)


class TestAssertSolverModel:
    def test_base_model_near_uniform(self, small_bundle, trained_models):
        base, _, _ = trained_models
        entry = small_bundle.sva_bug_train[0]
        responses = base.generate(Problem.from_entry(entry), n=10,
                                  rng=random.Random(0))
        assert len(responses) == 10

    def test_pipeline_improves_over_base(self, small_bundle, trained_models):
        base, sft, _ = trained_models

        def accuracy(model):
            correct = 0
            for entry in small_bundle.sva_bug_train[:15]:
                response = model.solve(Problem.from_entry(entry))
                if (response.line == entry.record.line
                        and " ".join(response.fix.split())
                        == " ".join(entry.record.fixed_line.split())):
                    correct += 1
            return correct

        assert accuracy(sft) > accuracy(base)

    def test_dpo_sharpens_distribution(self, trained_models):
        _, sft, solver = trained_models
        assert solver.margin_scale >= 1.0
        assert np.linalg.norm(solver.weights) >= np.linalg.norm(sft.weights) * 0.99

    def test_response_json_round_trip(self):
        response = SolverResponse(7, "a <= b;", "a <= c;", "because")
        clone = SolverResponse.from_json(response.to_json())
        assert (clone.line, clone.buggy_line, clone.fix, clone.cot) == \
            (7, "a <= b;", "a <= c;", "because")

    def test_generate_returns_n_responses(self, small_bundle, trained_models):
        _, sft, _ = trained_models
        entry = small_bundle.sva_bug_train[0]
        responses = sft.generate(Problem.from_entry(entry), n=20,
                                 rng=random.Random(1))
        assert len(responses) == 20
        assert all(r.cot for r in responses)

    def test_clone_checkpoint_independent(self, trained_models):
        _, sft, _ = trained_models
        clone = sft.clone_checkpoint("copy")
        clone.weights[0] += 100.0
        assert sft.weights[0] != clone.weights[0]

    def test_dpo_requires_sft(self):
        model = AssertSolver()
        with pytest.raises(RuntimeError):
            model.train_dpo()
