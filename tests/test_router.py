"""Fleet router: ring stability, affinity, ejection, spillover, drain.

Covers the fleet-serving contract:

- consistent-hash stability — adding a backend moves only ~1/N keys,
  and removing it restores the exact original map (cache affinity
  survives fleet resizes);
- repeat designs land on one backend; ejection on failed ``/healthz``
  with probed re-admission — and the ring keeps the ejected node, so
  affinity is intact after the blip;
- 429 spillover walks the key's ring order, relaying the final 429
  (Retry-After included) only when every backend refuses;
- fleet ``/statsz`` sums numeric fields across backends and exposes
  per-backend snapshots plus router counters;
- responses through the router are byte-identical to single-instance
  bodies, and a drain still answers in-flight clients end to end.

Stub backends (scripted healthz/solve/statsz) pin down router logic
deterministically; a real ``make_fleet`` fleet covers the wire contract
end to end.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import ExitStack, contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.api import FleetConfig, PipelineConfig, make_fleet
from repro.serve import (
    AssertClient,
    AssertService,
    FleetRouter,
    HashRing,
    RouterConfig,
    ServeConfig,
    SolveOptions,
    SolveRequest,
    request_to_json,
)

MINI_SOURCE = """
module mini (
  input clk,
  input rst_n,
  input a,
  input b,
  output wire y
);
  assign y = a & b;
endmodule
"""

FAST = dict(bmc_depth=6, bmc_random_trials=8)


def fast_request(source: str, **overrides) -> SolveRequest:
    options = dict(FAST)
    options.update(overrides)
    return SolveRequest(source, SolveOptions(**options))


def variant(i: int) -> SolveRequest:
    """Distinct content keys from one template (comment changes hash)."""
    return fast_request(f"// variant {i}\n{MINI_SOURCE}")


# -- scripted stub backends ----------------------------------------------------

_SEQ = itertools.count()


class _StubHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, code, payload, headers=None):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - stdlib naming
        stub = self.server.stub
        if self.path == "/healthz":
            ok = stub.health_code == 200
            self._reply(stub.health_code,
                        {"status": "ok" if ok else "unhealthy"})
        elif self.path == "/statsz":
            self._reply(200, stub.statsz_payload)
        else:
            self._reply(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        stub = self.server.stub
        length = int(self.headers.get("Content-Length", 0))
        self.rfile.read(length)
        stub.log.append((next(_SEQ), "POST"))
        if stub.solve_code == 429:
            self._reply(429, {"error": "queue full"}, {"Retry-After": "7"})
        else:
            self._reply(stub.solve_code, {"served_by": stub.name})

    def do_DELETE(self):  # noqa: N802 - stdlib naming
        stub = self.server.stub
        stub.log.append((next(_SEQ), "DELETE"))
        count = stub.cancelled
        self._reply(200 if count else 404,
                    {"request_id": "whatever", "cancelled": count})


class Stub:
    """One scripted backend: toggle health/solve behavior per test."""

    def __init__(self, name: str):
        self.name = name
        self.health_code = 200
        self.solve_code = 200
        self.cancelled = 0
        self.statsz_payload = {"service": {}, "store": None,
                               "solve_profile": {}}
        self.log = []  # (global_seq, method) — cross-stub arrival order
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
        self.httpd.daemon_threads = True
        self.httpd.stub = self
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        self._closed = False

    @property
    def node(self) -> str:
        return f"127.0.0.1:{self.httpd.server_address[1]}"

    def posts(self):
        return [entry for entry in self.log if entry[1] == "POST"]

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()
        self.httpd.server_close()


@contextmanager
def stub_fleet(n: int = 3):
    """A started router over ``n`` scripted stubs (manual probes only)."""
    with ExitStack() as stack:
        stubs = [Stub(f"stub-{i}") for i in range(n)]
        for stub in stubs:
            stack.callback(stub.close)
        router = FleetRouter([stub.node for stub in stubs],
                             RouterConfig(health_interval_s=60.0,
                                          probe_timeout_s=5.0))
        router.start()
        stack.callback(router.close)
        yield router, {stub.node: stub for stub in stubs}


def owner_stub(router, stubs, key: str) -> Stub:
    return stubs[router.candidates_for(key)[0]]


def solve_body(request: SolveRequest) -> bytes:
    return request_to_json(request).encode("utf-8")


def post_solve(router, request: SolveRequest):
    client = AssertClient.for_server(router)
    return client._request("POST", "/v1/solve", solve_body(request))


# -- the ring ------------------------------------------------------------------


class TestHashRing:
    def test_owner_is_deterministic_and_candidates_cover_all(self):
        ring = HashRing(["a:1", "b:2", "c:3"])
        again = HashRing(["c:3", "a:1", "b:2"])  # insertion order moot
        for i in range(50):
            key = f"key-{i}"
            assert ring.node_for(key) == again.node_for(key)
            order = list(ring.candidates(key))
            assert sorted(order) == ["a:1", "b:2", "c:3"]
            assert order[0] == ring.node_for(key)

    def test_adding_node_moves_about_one_over_n_keys(self):
        nodes = ["a:1", "b:2", "c:3"]
        keys = [f"design-{i}" for i in range(400)]
        ring = HashRing(nodes)
        before = {key: ring.node_for(key) for key in keys}
        ring.add("d:4")
        after = {key: ring.node_for(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # ~1/4 of keys should move to the new node — nowhere else.
        assert 0.05 < len(moved) / len(keys) < 0.45
        assert all(after[key] == "d:4" for key in moved)
        # Removing it restores the exact original map: affinity survives
        # a backend coming and going.
        ring.remove("d:4")
        assert {key: ring.node_for(key) for key in keys} == before

    def test_shares_are_reasonably_balanced(self):
        ring = HashRing(["a:1", "b:2", "c:3"], replicas=64)
        owners = [ring.node_for(f"key-{i}") for i in range(600)]
        for node in ("a:1", "b:2", "c:3"):
            assert owners.count(node) >= 60  # >=10% each; ~33% expected

    def test_empty_ring_and_validation(self):
        assert HashRing().node_for("anything") is None
        with pytest.raises(ValueError):
            HashRing(replicas=0)
        ring = HashRing(["a:1"])
        ring.add("a:1")  # idempotent
        assert len(ring) == 1
        ring.remove("missing")  # harmless
        assert "a:1" in ring


class TestNodeNames:
    def test_named_ring_survives_backend_address_change(self):
        # With stable node names the ring hashes the name, not the
        # (ephemeral) address: a backend restarting on a new port keeps
        # exactly the keys it owned before.
        keys = [variant(i).cache_key() for i in range(20)]
        config = RouterConfig(health_interval_s=60.0, probe_timeout_s=5.0)
        with ExitStack() as stack:
            first, second = Stub("first"), Stub("second")
            stack.callback(first.close)
            stack.callback(second.close)
            router = FleetRouter([first.node, second.node], config,
                                 node_names=["left", "right"])
            router.start()
            owners = {key: router.candidates_for(key)[0] for key in keys}
            assert set(owners.values()) == {"left", "right"}
            # Requests reach the stub behind the name.
            request = variant(0)
            status, _, body = post_solve(router, request)
            assert status == 200
            expected = (first if owners[request.cache_key()] == "left"
                        else second)
            assert json.loads(body)["served_by"] == expected.name
            router.close()
            # "left" comes back on a brand-new ephemeral port...
            reborn = Stub("first-reborn")
            stack.callback(reborn.close)
            router = FleetRouter([reborn.node, second.node], config,
                                 node_names=["left", "right"])
            router.start()
            stack.callback(router.close)
            # ...and the key->node map is exactly what it was.
            assert {key: router.candidates_for(key)[0]
                    for key in keys} == owners

    def test_statsz_reports_name_and_address_separately(self):
        with ExitStack() as stack:
            stub = Stub("solo")
            stack.callback(stub.close)
            router = FleetRouter(
                [stub.node],
                RouterConfig(health_interval_s=60.0, probe_timeout_s=5.0),
                node_names=["backend-0"])
            router.start()
            stack.callback(router.close)
            (entry,) = router.statsz()["backends"]
            assert entry["node"] == "backend-0"
            assert entry["address"] == stub.node

    def test_node_names_validation(self):
        backends = ["127.0.0.1:9", "127.0.0.1:10"]
        with pytest.raises(ValueError):
            FleetRouter(backends, node_names=["only-one"])
        with pytest.raises(ValueError):
            FleetRouter(backends, node_names=["dup", "dup"])
        with pytest.raises(ValueError):
            FleetRouter(backends, node_names=["ok", ""])


# -- routing over stubs --------------------------------------------------------


class TestRoutingAffinity:
    def test_repeat_keys_land_on_one_backend(self):
        with stub_fleet() as (router, stubs):
            request = variant(0)
            owner = owner_stub(router, stubs, request.cache_key())
            for _ in range(5):
                status, _, body = post_solve(router, request)
                assert status == 200
                assert json.loads(body)["served_by"] == owner.name
            assert len(owner.posts()) == 5
            others = [s for s in stubs.values() if s is not owner]
            assert all(not s.posts() for s in others)
            assert router.stats()["routed"] == 5

    def test_distinct_keys_spread_over_backends(self):
        with stub_fleet() as (router, stubs):
            for i in range(12):
                status, _, _ = post_solve(router, variant(i))
                assert status == 200
            backends_hit = [s for s in stubs.values() if s.posts()]
            assert len(backends_hit) >= 2


class TestSpillover:
    def test_429_spills_to_next_ring_candidate_in_order(self):
        with stub_fleet() as (router, stubs):
            request = variant(1)
            order = router.candidates_for(request.cache_key())
            stubs[order[0]].solve_code = 429
            status, _, body = post_solve(router, request)
            assert status == 200
            assert json.loads(body)["served_by"] == stubs[order[1]].name
            # The owner was offered the request first, then the spill.
            first_seq = stubs[order[0]].posts()[0][0]
            second_seq = stubs[order[1]].posts()[0][0]
            assert first_seq < second_seq
            assert not stubs[order[2]].posts()
            assert router.stats()["spillovers"] == 1

    def test_all_backends_refusing_relays_the_final_429(self):
        with stub_fleet() as (router, stubs):
            for stub in stubs.values():
                stub.solve_code = 429
            status, headers, body = post_solve(router, variant(2))
            assert status == 429
            assert headers["retry-after"] == "7"  # backend's hint relayed
            assert json.loads(body)["error"] == "queue full"
            assert all(len(s.posts()) == 1 for s in stubs.values())
            assert router.stats()["spillovers"] == 3


class TestHealthEjection:
    def test_failed_healthz_ejects_and_probe_readmits(self):
        with stub_fleet() as (router, stubs):
            request = variant(3)
            order = router.candidates_for(request.cache_key())
            owner, backup = stubs[order[0]], stubs[order[1]]
            owner.health_code = 503
            assert router.probe() == (2, 3)
            status, _, body = post_solve(router, request)
            assert status == 200
            assert json.loads(body)["served_by"] == backup.name
            assert not owner.posts()  # ejected: never even offered
            # Recovery: probe re-admits, and because the ring never
            # dropped the node the very same key goes home again.
            owner.health_code = 200
            assert router.probe() == (3, 3)
            status, _, body = post_solve(router, request)
            assert json.loads(body)["served_by"] == owner.name
            stats = router.stats()
            assert stats["ejections"] == 1
            assert stats["readmissions"] == 1

    def test_connection_error_fails_over_mid_request(self):
        with stub_fleet() as (router, stubs):
            request = variant(4)
            order = router.candidates_for(request.cache_key())
            stubs[order[0]].close()  # dies without a failed probe first
            status, _, body = post_solve(router, request)
            assert status == 200
            assert json.loads(body)["served_by"] == stubs[order[1]].name
            assert router.stats()["failovers"] == 1
            assert router.health() == (2, 3)  # ejected on the spot

    def test_no_healthy_backends_maps_to_503(self):
        with stub_fleet(n=2) as (router, stubs):
            for stub in stubs.values():
                stub.health_code = 503
            router.probe()
            status, _, body = post_solve(router, variant(5))
            assert status == 503
            assert json.loads(body)["detail"] == "no healthy backends"
            client = AssertClient.for_server(router)
            health = client.healthz()
            assert health["http_status"] == 503
            assert health["status"] == "unavailable"
            assert health["backends"] == {"healthy": 0, "total": 2}


class TestStatszAggregation:
    def test_numeric_fields_sum_across_backends(self):
        with stub_fleet() as (router, stubs):
            for i, stub in enumerate(stubs.values()):
                stub.statsz_payload = {
                    "service": {"submitted": 10 + i, "solved": 5 + i,
                                "backend": "serial",  # strings skipped
                                "draining": False},  # bools skipped
                    "store": {"hits": i, "total_bytes": 100 * i},
                    "solve_profile": {"total_us": 1000 * (i + 1)},
                }
            client = AssertClient.for_server(router)
            payload = client.statsz()
            assert payload["service"]["submitted"] == 10 + 11 + 12
            assert payload["service"]["solved"] == 5 + 6 + 7
            assert "backend" not in payload["service"]
            assert "draining" not in payload["service"]
            assert payload["store"]["hits"] == 0 + 1 + 2
            assert payload["store"]["total_bytes"] == 0 + 100 + 200
            assert payload["solve_profile"]["total_us"] == 6000
            assert payload["router"]["backends_total"] == 3
            nodes = {entry["node"] for entry in payload["backends"]}
            assert nodes == set(stubs)
            assert all(entry["healthy"] for entry in payload["backends"])

    def test_store_stays_none_when_no_backend_has_one(self):
        with stub_fleet(n=2) as (router, _):
            assert router.statsz()["store"] is None


class TestCancelBroadcast:
    def test_delete_fans_out_and_sums(self):
        with stub_fleet() as (router, stubs):
            holder = next(iter(stubs.values()))
            holder.cancelled = 1
            client = AssertClient.for_server(router)
            assert client.cancel("some-request") == 1
            # Every backend was asked — the router cannot know the holder.
            assert all(any(m == "DELETE" for _, m in s.log)
                       for s in stubs.values())

    def test_unknown_request_id_is_404(self):
        with stub_fleet() as (router, _):
            client = AssertClient.for_server(router)
            status, _, body = client._request(
                "DELETE", "/v1/solve/never-seen")
            assert status == 404
            assert json.loads(body)["cancelled"] == 0


# -- a real fleet over real backends -------------------------------------------


@contextmanager
def real_fleet(n_backends: int = 2, **serve_overrides):
    serve_overrides.setdefault("batch_window_ms", 5.0)
    router = make_fleet(FleetConfig(n_backends=n_backends),
                        ServeConfig(**serve_overrides))
    router.start()
    try:
        yield router, AssertClient.for_server(router)
    finally:
        router.close()


class TestRealFleet:
    def test_bodies_byte_identical_to_single_instance(self):
        # The acceptance criterion: routing is invisible in the bytes.
        with real_fleet() as (router, client):
            for i in range(3):
                request = variant(i)
                status, _, via_router = client._request(
                    "POST", "/v1/solve", solve_body(request))
                assert status == 200
                with AssertService(ServeConfig()) as single:
                    direct = single.solve(request, timeout=60)
                assert via_router == direct.to_json().encode("utf-8")

    def test_error_bodies_byte_identical_too(self):
        with real_fleet(n_backends=1) as (router, client):
            backend = router.backends[0]
            direct_client = AssertClient.for_server(backend)
            bad = b'{"garbage": true}'
            via_router = client._request("POST", "/v1/solve", bad)
            direct = direct_client._request("POST", "/v1/solve", bad)
            assert via_router[0] == direct[0] == 400
            assert via_router[2] == direct[2]

    def test_cache_affinity_across_repeats(self):
        with real_fleet() as (router, client):
            requests = [variant(i) for i in range(3)]
            for _ in range(3):
                for request in requests:
                    assert client.solve(request).status in ("ok",
                                                            "compile_error")
            agg = router.statsz()
            # Each unique design was solved exactly once fleet-wide:
            # repeats all hit the owning backend's cache.
            assert agg["service"]["solved"] == 3
            assert agg["service"]["cache_hits"] == 6
            assert agg["router"]["routed"] == 9

    def test_drain_answers_inflight_clients(self):
        with real_fleet() as (router, client):
            handle = client.submit(fast_request(MINI_SOURCE))
            backends = router.backends
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                stats = [b.service.stats() for b in backends]
                if any(s.inflight + s.queue_depth > 0 for s in stats):
                    break
                time.sleep(0.002)
            router.close()  # propagated drain: backend answers first
            response = handle.result(timeout=10)
            assert response.ok

    def test_healthz_reports_fleet_shape(self):
        with real_fleet(n_backends=3) as (_, client):
            payload = client.healthz()
            assert payload["status"] == "ok"
            assert payload["backends"] == {"healthy": 3, "total": 3}

    def test_close_is_idempotent_and_restart_refused(self):
        router = make_fleet(FleetConfig(n_backends=1), ServeConfig())
        router.start()
        router.close()
        router.close()
        from repro.serve import ServiceClosed

        with pytest.raises(ServiceClosed):
            router.start()


class TestLauncherGlue:
    def test_serve_fleet_carries_overrides(self):
        router = PipelineConfig().serve_fleet(n_backends=2, max_batch=4)
        try:
            assert len(router.backends) == 2
            for backend in router.backends:
                assert backend.service.config.max_batch == 4
        finally:
            router.close()

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_backends=0)
        with pytest.raises(ValueError):
            FleetConfig(port=70000)
        with pytest.raises(ValueError):
            FleetConfig(health_interval_s=0)
        with pytest.raises(ValueError):
            FleetConfig(ring_replicas=0)

    def test_router_requires_backends_and_unique_addresses(self):
        with pytest.raises(ValueError):
            FleetRouter([])
        router = FleetRouter(["127.0.0.1:9", "127.0.0.1:9"])
        with pytest.raises(ValueError):
            router.start()

    def test_router_config_validation(self):
        for bad in (dict(port=-1), dict(max_body_bytes=0),
                    dict(forward_timeout_s=0), dict(ring_replicas=0),
                    dict(health_interval_s=-2.0)):
            with pytest.raises(ValueError):
                RouterConfig(**bad).validate()
