"""4-state value algebra: unit tests + hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.values import FourState


def fs(width, value, xmask=0):
    return FourState(width, value, xmask)


@st.composite
def fourstates(draw, max_width=16):
    width = draw(st.integers(min_value=1, max_value=max_width))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    xmask = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return FourState(width, value, xmask)


@st.composite
def known_fourstates(draw, max_width=16):
    width = draw(st.integers(min_value=1, max_value=max_width))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return FourState(width, value, 0)


class TestConstruction:
    def test_canonical_x_bits_zeroed(self):
        v = fs(4, 0b1111, 0b0101)
        assert v.value == 0b1010

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            FourState(0)

    def test_unknown_constructor(self):
        v = FourState.unknown(8)
        assert v.all_x and v.has_x

    def test_from_bool(self):
        assert FourState.from_bool(True).to_int() == 1
        assert FourState.from_bool(False).is_false()

    def test_equality_with_int(self):
        assert fs(8, 42) == 42
        assert FourState.unknown(8) != 42


class TestArithmetic:
    def test_add(self):
        assert fs(8, 10).add(fs(8, 20)).to_int() == 30

    def test_add_wraps(self):
        assert fs(4, 15).add(fs(4, 1)).to_int() == 0

    def test_sub_wraps(self):
        assert fs(4, 0).sub(fs(4, 1)).to_int() == 15

    def test_x_poisons_arithmetic(self):
        assert fs(8, 10).add(FourState.unknown(8)).all_x

    def test_div_by_zero_is_x(self):
        assert fs(8, 10).div(fs(8, 0)).all_x

    def test_mod(self):
        assert fs(8, 10).mod(fs(8, 3)).to_int() == 1

    @given(known_fourstates(), known_fourstates())
    def test_add_commutative(self, a, b):
        assert a.add(b) == b.add(a)

    @given(known_fourstates())
    def test_add_zero_identity(self, a):
        zero = FourState(a.width, 0)
        assert a.add(zero) == a

    @given(known_fourstates())
    def test_sub_self_is_zero(self, a):
        assert a.sub(a).to_int() == 0


class TestBitwise:
    def test_and_with_known_zero_rescues_x(self):
        x = FourState.unknown(4)
        zero = fs(4, 0)
        assert x.bit_and(zero).is_false()

    def test_or_with_known_one_rescues_x(self):
        x = FourState.unknown(1)
        one = fs(1, 1)
        assert x.bit_or(one).is_true()

    def test_xor_propagates_x(self):
        assert fs(4, 5).bit_xor(FourState.unknown(4)).has_x

    def test_not_involution(self):
        v = fs(8, 0xA5)
        assert v.bit_not().bit_not() == v

    @given(known_fourstates(), known_fourstates())
    def test_demorgan(self, a, b):
        width = max(a.width, b.width)
        a, b = a.resize(width), b.resize(width)
        left = a.bit_and(b).bit_not()
        right = a.bit_not().bit_or(b.bit_not())
        assert left == right

    @given(known_fourstates())
    def test_xor_self_is_zero(self, a):
        assert a.bit_xor(a).to_int() == 0


class TestComparisons:
    def test_eq_known(self):
        assert fs(8, 5).eq(fs(8, 5)).is_true()
        assert fs(8, 5).eq(fs(8, 6)).is_false()

    def test_eq_with_x_undecidable(self):
        assert fs(4, 0b1010, 0b0001).eq(fs(4, 0b1010)).has_x

    def test_eq_with_x_but_known_mismatch(self):
        # high bits already differ -> definitely not equal
        assert fs(4, 0b0000, 0b0001).eq(fs(4, 0b1000)).is_false()

    def test_case_eq_treats_x_literally(self):
        a = fs(4, 0b1010, 0b0101)
        assert a.case_eq(fs(4, 0b1010, 0b0101)).is_true()

    def test_lt_le_gt_ge(self):
        assert fs(8, 3).lt(fs(8, 4)).is_true()
        assert fs(8, 4).le(fs(8, 4)).is_true()
        assert fs(8, 5).gt(fs(8, 4)).is_true()
        assert fs(8, 4).ge(fs(8, 5)).is_false()

    @given(known_fourstates(), known_fourstates())
    def test_eq_ne_complementary(self, a, b):
        assert a.eq(b).is_true() != a.ne(b).is_true()


class TestLogical:
    def test_short_circuit_and_false(self):
        assert fs(1, 0).log_and(FourState.unknown(1)).is_false()

    def test_short_circuit_or_true(self):
        assert fs(1, 1).log_or(FourState.unknown(1)).is_true()

    def test_unknown_and_unknown(self):
        assert FourState.unknown(1).log_and(FourState.unknown(1)).has_x

    def test_log_not_three_valued(self):
        assert fs(1, 1).log_not().is_false()
        assert fs(1, 0).log_not().is_true()
        assert FourState.unknown(1).log_not().has_x


class TestReductions:
    def test_reduce_and(self):
        assert fs(4, 0b1111).reduce_and().is_true()
        assert fs(4, 0b1110).reduce_and().is_false()

    def test_reduce_and_x_with_zero_bit(self):
        assert fs(4, 0b0110, 0b1000).reduce_and().is_false()

    def test_reduce_or(self):
        assert fs(4, 0b0010).reduce_or().is_true()
        assert fs(4, 0).reduce_or().is_false()
        assert FourState.unknown(4).reduce_or().has_x

    def test_reduce_xor_parity(self):
        assert fs(4, 0b0111).reduce_xor().is_true()
        assert fs(4, 0b0110).reduce_xor().is_false()

    def test_count_ones(self):
        assert fs(8, 0b10110).count_ones().to_int() == 3


class TestStructure:
    def test_concat_widths_add(self):
        joined = fs(4, 0b1010).concat(fs(4, 0b0101))
        assert joined.width == 8
        assert joined.to_int() == 0b10100101

    def test_slice(self):
        v = fs(8, 0b10110100)
        assert v.slice(5, 2).to_int() == 0b1101

    def test_bit(self):
        v = fs(8, 0b00000100)
        assert v.bit(2).is_true()
        assert v.bit(3).is_false()

    def test_bit_out_of_range_is_x(self):
        assert fs(4, 0).bit(9).has_x

    def test_replace_slice(self):
        v = fs(8, 0)
        out = v.replace_slice(5, 2, fs(4, 0b1111))
        assert out.to_int() == 0b00111100

    def test_repeat(self):
        assert fs(2, 0b10).repeat(3).to_int() == 0b101010

    @given(known_fourstates(max_width=8), known_fourstates(max_width=8))
    def test_concat_slice_roundtrip(self, hi, lo):
        joined = hi.concat(lo)
        assert joined.slice(joined.width - 1, lo.width) == hi
        assert joined.slice(lo.width - 1, 0) == lo

    @given(fourstates(max_width=8))
    def test_resize_identity(self, v):
        assert v.resize(v.width) is v

    @given(fourstates(max_width=8))
    def test_to_verilog_parses_back(self, v):
        text = v.to_verilog()
        assert len(text) == v.width + 1  # 'b' + digits

    @given(fourstates())
    def test_hash_consistent_with_eq(self, v):
        clone = FourState(v.width, v.value, v.xmask)
        assert v == clone and hash(v) == hash(clone)


class TestShifts:
    def test_shl(self):
        assert fs(8, 1).shl(fs(8, 3)).to_int() == 8

    def test_shl_overflow_drops(self):
        assert fs(4, 0b1000).shl(fs(4, 1)).to_int() == 0

    def test_shr(self):
        assert fs(8, 8).shr(fs(8, 3)).to_int() == 1

    def test_ashr_sign_extends(self):
        v = fs(4, 0b1000)
        assert v.ashr(fs(4, 1)).to_int() == 0b1100

    def test_shift_by_x(self):
        assert fs(8, 1).shl(FourState.unknown(8)).all_x
