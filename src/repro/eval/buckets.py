"""Bucketed analyses for the paper's Fig. 4 and Fig. 5.

Cases are grouped along the Table-II axes — the seven bug types (Direct,
Indirect, Var, Value, Op, Cond, Non_cond) and the five code-length bins —
and pass@k is computed per bucket per model.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bugs.taxonomy import BUG_TYPE_ORDER, LENGTH_BINS, length_bin_label
from repro.eval.runner import CaseOutcome, EvalResult


def bug_type_buckets(result: EvalResult) -> Dict[str, List[CaseOutcome]]:
    """bug-type name -> outcomes (a case lands in three buckets, one per
    taxonomy axis, exactly as the paper's counts do)."""
    buckets: Dict[str, List[CaseOutcome]] = {name: [] for name in BUG_TYPE_ORDER}
    for outcome in result.outcomes:
        for label in outcome.case.entry.bucket_labels():
            if label in buckets:
                buckets[label].append(outcome)
    return buckets


def length_buckets(result: EvalResult) -> Dict[str, List[CaseOutcome]]:
    buckets: Dict[str, List[CaseOutcome]] = {
        length_bin_label(b): [] for b in LENGTH_BINS}
    for outcome in result.outcomes:
        label = length_bin_label(outcome.case.entry.length_bin())
        buckets[label].append(outcome)
    return buckets


def bucket_pass_at(result: EvalResult, k: int,
                   by: str = "bug_type") -> Dict[str, float]:
    """pass@k per bucket; empty buckets map to float('nan')."""
    if by == "bug_type":
        buckets = bug_type_buckets(result)
    elif by == "length":
        buckets = length_buckets(result)
    else:
        raise ValueError(f"unknown bucket axis {by!r}")
    scores: Dict[str, float] = {}
    for name, outcomes in buckets.items():
        scores[name] = (result.pass_at(k, outcomes) if outcomes
                        else float("nan"))
    return scores
