"""Evaluation: the SVA-Eval benchmark, pass@k, bucketed analyses and the
experiment runners that regenerate every table and figure of the paper."""

from repro.eval.passk import aggregate_pass_at_k, pass_at_k

__all__ = [
    "pass_at_k",
    "aggregate_pass_at_k",
    "SvaEvalBenchmark",
    "build_benchmark",
    "EvalConfig",
    "EvalReport",
    "EvalResult",
    "case_digest",
    "cases_from_json",
    "cases_to_json",
    "evaluate_model",
    "eval_memo_key",
    "is_correct",
    "model_digest",
    "run_eval",
]

_LAZY = {
    "SvaEvalBenchmark": "repro.eval.benchmark",
    "build_benchmark": "repro.eval.benchmark",
    "EvalConfig": "repro.eval.config",
    "EvalReport": "repro.eval.report",
    "EvalResult": "repro.eval.runner",
    "case_digest": "repro.eval.cases",
    "cases_from_json": "repro.eval.cases",
    "cases_to_json": "repro.eval.cases",
    "evaluate_model": "repro.eval.runner",
    "eval_memo_key": "repro.eval.runner",
    "is_correct": "repro.eval.runner",
    "model_digest": "repro.eval.runner",
    "run_eval": "repro.eval.runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.eval' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)