"""Evaluation: the SVA-Eval benchmark, pass@k, bucketed analyses and the
experiment runners that regenerate every table and figure of the paper."""

from repro.eval.passk import aggregate_pass_at_k, pass_at_k

__all__ = [
    "pass_at_k",
    "aggregate_pass_at_k",
    "SvaEvalBenchmark",
    "build_benchmark",
    "EvalResult",
    "evaluate_model",
    "is_correct",
]

_LAZY = {
    "SvaEvalBenchmark": "repro.eval.benchmark",
    "build_benchmark": "repro.eval.benchmark",
    "EvalResult": "repro.eval.runner",
    "evaluate_model": "repro.eval.runner",
    "is_correct": "repro.eval.runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.eval' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)