"""Canonical (de)serialization and content digests for SVA-Eval cases.

One round trip serves two masters: the ``POST /v1/eval`` wire body
(cases travel as JSON objects) and the per-case memo key (the digest of
the canonical rendering).  Everything a model or the scorer reads off a
case — the bug record, the instrumented source, logs, bucketing labels —
is carried with full fidelity, so ``case_from_dict(case_to_dict(c))``
evaluates byte-identically to ``c`` and the digest changes iff the case
content does.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.bugs.injector import BugRecord
from repro.bugs.taxonomy import BugKind, Conditionality, Relation
from repro.datagen.records import SvaBugEntry, SvaEvalCase
from repro.store.base import content_key

__all__ = [
    "case_digest",
    "case_from_dict",
    "case_to_dict",
    "cases_from_json",
    "cases_to_json",
]


def _require(payload: Dict, field: str, kind, where: str):
    value = payload.get(field)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ValueError(f"{where}.{field} must be "
                         f"{getattr(kind, '__name__', kind)}, got {value!r}")
    return value


def _str_list(payload: Dict, field: str, where: str) -> List[str]:
    value = payload.get(field)
    if not isinstance(value, list) \
            or any(not isinstance(item, str) for item in value):
        raise ValueError(
            f"{where}.{field} must be a list of strings, got {value!r}")
    return list(value)


def _record_to_dict(record: BugRecord) -> Dict[str, object]:
    return {
        "design_name": record.design_name,
        "buggy_source": record.buggy_source,
        "golden_source": record.golden_source,
        "line": record.line,
        "buggy_line": record.buggy_line,
        "fixed_line": record.fixed_line,
        "op_name": record.op_name,
        "kind": record.kind.value,
        "conditionality": record.conditionality.value,
        "description": record.description,
    }


def _record_from_dict(payload: object) -> BugRecord:
    if not isinstance(payload, dict):
        raise ValueError(f"entry.record must be a JSON object, "
                         f"got {type(payload).__name__}")
    unknown = set(payload) - {"design_name", "buggy_source", "golden_source",
                              "line", "buggy_line", "fixed_line", "op_name",
                              "kind", "conditionality", "description"}
    if unknown:
        raise ValueError(f"unknown record fields: {sorted(unknown)}")
    try:
        kind = BugKind(_require(payload, "kind", str, "record"))
        conditionality = Conditionality(
            _require(payload, "conditionality", str, "record"))
    except ValueError as exc:
        raise ValueError(f"record has an invalid enum value: {exc}") from None
    return BugRecord(
        _require(payload, "design_name", str, "record"),
        _require(payload, "buggy_source", str, "record"),
        _require(payload, "golden_source", str, "record"),
        _require(payload, "line", int, "record"),
        _require(payload, "buggy_line", str, "record"),
        _require(payload, "fixed_line", str, "record"),
        _require(payload, "op_name", str, "record"),
        kind, conditionality,
        _require(payload, "description", str, "record"))


def _entry_to_dict(entry: SvaBugEntry) -> Dict[str, object]:
    return {
        "record": _record_to_dict(entry.record),
        "spec": entry.spec,
        "buggy_source_with_sva": entry.buggy_source_with_sva,
        "logs": entry.logs,
        "failing_labels": list(entry.failing_labels),
        "relation": entry.relation.value,
        "assertion_signals": list(entry.assertion_signals),
        "cot": entry.cot,
    }


def _entry_from_dict(payload: object) -> SvaBugEntry:
    if not isinstance(payload, dict):
        raise ValueError(f"case.entry must be a JSON object, "
                         f"got {type(payload).__name__}")
    unknown = set(payload) - {"record", "spec", "buggy_source_with_sva",
                              "logs", "failing_labels", "relation",
                              "assertion_signals", "cot"}
    if unknown:
        raise ValueError(f"unknown entry fields: {sorted(unknown)}")
    try:
        relation = Relation(_require(payload, "relation", str, "entry"))
    except ValueError as exc:
        raise ValueError(f"entry has an invalid relation: {exc}") from None
    cot = payload.get("cot")
    if cot is not None and not isinstance(cot, str):
        raise ValueError(f"entry.cot must be a string or null, got {cot!r}")
    return SvaBugEntry(
        _record_from_dict(payload.get("record")),
        _require(payload, "spec", str, "entry"),
        _require(payload, "buggy_source_with_sva", str, "entry"),
        _require(payload, "logs", str, "entry"),
        _str_list(payload, "failing_labels", "entry"),
        relation,
        _str_list(payload, "assertion_signals", "entry"),
        cot=cot)


def case_to_dict(case: SvaEvalCase) -> Dict[str, object]:
    """The canonical JSON-object rendering of one benchmark case."""
    return {
        "case_id": case.case_id,
        "origin": case.origin,
        "entry": _entry_to_dict(case.entry),
    }


def case_from_dict(payload: object) -> SvaEvalCase:
    """Inverse of :func:`case_to_dict`; raises :class:`ValueError` on
    anything malformed (the HTTP handler maps that to a 400)."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"each case must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {"case_id", "origin", "entry"}
    if unknown:
        raise ValueError(f"unknown case fields: {sorted(unknown)}")
    case_id = _require(payload, "case_id", str, "case")
    origin = _require(payload, "origin", str, "case")
    if origin not in ("machine", "human"):
        raise ValueError(f"case.origin must be machine|human, got {origin!r}")
    return SvaEvalCase(case_id, _entry_from_dict(payload.get("entry")), origin)


def cases_to_json(cases: Iterable[SvaEvalCase]) -> str:
    """Canonical list rendering: the eval request's content-key input
    and wire payload."""
    return json.dumps([case_to_dict(case) for case in cases], sort_keys=True)


def cases_from_json(payload: object) -> List[SvaEvalCase]:
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, list) or not payload:
        raise ValueError("cases must be a non-empty JSON list")
    return [case_from_dict(item) for item in payload]


def case_digest(case: SvaEvalCase) -> str:
    """Content digest of one case — half of the per-case memo key."""
    return content_key("eval-case",
                       json.dumps(case_to_dict(case), sort_keys=True))


def cases_digest(cases: Sequence[SvaEvalCase]) -> str:
    """Digest over a whole case list (order-sensitive, like the report)."""
    return content_key("eval-cases", cases_to_json(cases))
