"""The unbiased pass@k estimator (paper Section IV-D).

    pass@k = E_problems[ 1 - C(n-c, k) / C(n, k) ]

with n generated solutions per problem, c of them correct.  The estimator
is exact for each problem and averaged over problems; the paper uses
n = 20 and k in {1, 5}.
"""

from __future__ import annotations

from math import comb
from typing import Iterable, List


def pass_at_k(n: int, c: int, k: int) -> float:
    """Unbiased single-problem estimate of P(at least 1 of top-k correct)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= c <= n:
        raise ValueError(f"c must be in [0, n]; got c={c}, n={n}")
    if k <= 0:
        raise ValueError("k must be positive")
    if k >= n:
        return 1.0 if c > 0 else 0.0
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def aggregate_pass_at_k(counts: Iterable["tuple[int, int]"], k: int) -> float:
    """Average pass@k over (n, c) pairs, one per problem."""
    values: List[float] = [pass_at_k(n, c, k) for n, c in counts]
    if not values:
        return 0.0
    return sum(values) / len(values)
