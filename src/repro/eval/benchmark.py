"""SVA-Eval benchmark assembly.

The paper's benchmark has 877 machine-generated cases (the held-out 10% of
the Stage-2 split) and 38 human-crafted cases from RTLLM.  Ours scales with
the pipeline configuration: the machine half comes from the bundle's test
split; the human half from :mod:`repro.corpus.human` (34 hand-validated
cases).
"""

from __future__ import annotations

from typing import List, Optional

from repro.corpus.human import build_human_cases
from repro.datagen.pipeline import DatasetBundle
from repro.datagen.records import SvaEvalCase


class SvaEvalBenchmark:
    """The evaluation suite, split by origin."""

    def __init__(self, machine: List[SvaEvalCase], human: List[SvaEvalCase]):
        self.machine = machine
        self.human = human

    @property
    def cases(self) -> List[SvaEvalCase]:
        return self.machine + self.human

    def subset(self, origin: str) -> List[SvaEvalCase]:
        if origin == "machine":
            return self.machine
        if origin == "human":
            return self.human
        if origin == "all":
            return self.cases
        raise ValueError(f"unknown origin {origin!r}")

    def __len__(self) -> int:
        return len(self.cases)

    def summary(self) -> str:
        return (f"SVA-Eval: {len(self.machine)} machine (paper: 877) + "
                f"{len(self.human)} human (paper: 38) = {len(self)} cases")


def build_benchmark(bundle: DatasetBundle,
                    include_human: bool = True,
                    human_cases: Optional[List[SvaEvalCase]] = None
                    ) -> SvaEvalBenchmark:
    """Assemble SVA-Eval from a dataset bundle (+ the human suite)."""
    if human_cases is None:
        human_cases = build_human_cases() if include_human else []
    return SvaEvalBenchmark(list(bundle.sva_eval_machine), human_cases)
