"""EvalReport: the canonical, deterministic rendering of one evaluation.

Everything the paper's tables and figures need from a run — aggregate
pass@k for the config's k-vector, per-origin and per-bucket splits, the
c-histogram, and the per-case ``(case_id, n, c)`` outcomes — in one
payload whose :meth:`to_json` is byte-deterministic: two runs that score
the same cases the same way serialize identically, whether the outcomes
were computed cold, replayed from the store, or carried over the wire.

Volatile attributes (the backing :class:`EvalResult`, the model digest,
memoization stats) ride on the object for callers but are excluded from
the payload — a warm re-run must reproduce the cold bytes even though
its memo counters differ.

Empty splits are *omitted*, not rendered as ``0.0``: a benchmark with no
human-origin cases has no ``origins["human"]`` entry at all, so "no
data" can never be misread as "all failed" (the
:meth:`EvalResult.pass_at_origin` fix, applied to the wire format).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["EvalReport"]

#: Payload schema tag; bump with the eval/v1 store namespace.
REPORT_SCHEMA = "eval/v1"


class EvalReport:
    """A canonical payload plus volatile run context.

    Build one with :meth:`from_result` (in-process runs) or
    :meth:`from_json` (off the wire); both produce objects whose
    :meth:`to_json` bytes agree.
    """

    __slots__ = ("_payload", "result", "model_digest", "stats")

    def __init__(self, payload: Dict[str, object], result=None,
                 model_digest: str = "",
                 stats: Optional[Dict[str, int]] = None):
        self._payload = payload
        self.result = result
        self.model_digest = model_digest
        self.stats = stats or {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_result(cls, result, config) -> "EvalReport":
        """Render ``result`` (an :class:`EvalResult`) under ``config``."""
        from repro.eval.buckets import bug_type_buckets, length_buckets

        ks = list(config.k_values)
        origins: Dict[str, object] = {}
        for origin in ("machine", "human"):
            subset = [o for o in result.outcomes if o.case.origin == origin]
            if not subset:
                continue  # omitted, never 0.0
            origins[origin] = {
                "n_cases": len(subset),
                "pass_at": {str(k): result.pass_at(k, subset) for k in ks},
            }
        buckets: Dict[str, object] = {}
        for axis, grouped in (("bug_type", bug_type_buckets(result)),
                              ("length", length_buckets(result))):
            rendered: Dict[str, object] = {}
            for label, outcomes in grouped.items():
                if not outcomes:
                    continue  # empty buckets are omitted too
                rendered[label] = {
                    "n_cases": len(outcomes),
                    "pass_at": {str(k): result.pass_at(k, outcomes)
                                for k in ks},
                }
            buckets[axis] = rendered
        payload = {
            "schema": REPORT_SCHEMA,
            "model": result.model_name,
            "n_samples": result.n_samples,
            "seed": config.seed,
            "semantic_check": config.semantic_check,
            "k_values": ks,
            "n_cases": len(result.outcomes),
            "pass_at": {str(k): result.pass_at(k) for k in ks},
            "origins": origins,
            "buckets": buckets,
            "histogram": {str(c): count
                          for c, count in sorted(result.histogram().items())},
            "cases": [[o.case.case_id, o.n, o.c] for o in result.outcomes],
        }
        return cls(payload, result=result)

    @classmethod
    def from_json(cls, text) -> "EvalReport":
        """Rebuild a report from a transported body.

        Re-serializing reproduces the input byte for byte (the payload
        is stored canonically), which is how clients and tests verify
        the transport never forked determinism."""
        if isinstance(text, bytes):
            text = text.decode("utf-8")
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"report must be a JSON object, "
                             f"got {type(payload).__name__}")
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValueError(f"unsupported report schema: "
                             f"{payload.get('schema')!r}")
        return cls(payload)

    # -- canonical serialization ---------------------------------------------

    def to_json(self) -> str:
        """Deterministic bytes: the ``POST /v1/eval`` 200 body is exactly
        this string, and a warm re-run reproduces a cold run's output."""
        return json.dumps(self._payload, sort_keys=True)

    def to_dict(self) -> Dict[str, object]:
        return json.loads(self.to_json())  # a private copy

    # -- accessors ------------------------------------------------------------

    @property
    def model_name(self) -> str:
        return self._payload["model"]

    @property
    def n_samples(self) -> int:
        return self._payload["n_samples"]

    @property
    def n_cases(self) -> int:
        return self._payload["n_cases"]

    @property
    def k_values(self) -> List[int]:
        return list(self._payload["k_values"])

    def pass_at(self, k: int) -> float:
        try:
            return self._payload["pass_at"][str(k)]
        except KeyError:
            raise KeyError(
                f"k={k} is not in this report's k_values "
                f"{self._payload['k_values']}") from None

    def pass_at_origin(self, k: int, origin: str) -> Optional[float]:
        """``None`` for an origin with no cases (omitted split)."""
        entry = self._payload["origins"].get(origin)
        if entry is None:
            return None
        return entry["pass_at"][str(k)]

    def bucket_pass_at(self, k: int, by: str = "bug_type"
                       ) -> Dict[str, float]:
        axes = self._payload["buckets"]
        if by not in axes:
            raise ValueError(f"unknown bucket axis {by!r}")
        return {label: entry["pass_at"][str(k)]
                for label, entry in axes[by].items()}

    def histogram(self) -> Dict[int, int]:
        return {int(c): count
                for c, count in self._payload["histogram"].items()}

    def case_outcomes(self) -> List[tuple]:
        """``(case_id, n, c)`` per case, in evaluation order."""
        return [tuple(item) for item in self._payload["cases"]]

    def __repr__(self) -> str:  # pragma: no cover
        ks = ", ".join(f"pass@{k}={self.pass_at(k):.4f}"
                       for k in self.k_values)
        return (f"EvalReport({self.model_name}: {ks}, "
                f"{self.n_cases} cases)")
