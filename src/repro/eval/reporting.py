"""Table/figure renderers: each function prints one artefact of the paper,
with the published numbers alongside ours where applicable."""

from __future__ import annotations

from typing import Dict

from repro.bugs.taxonomy import BUG_TYPE_ORDER, LENGTH_BINS, TABLE1_ROWS, length_bin_label
from repro.eval.buckets import bucket_pass_at
from repro.eval.runner import EvalResult

# Published numbers, for side-by-side display.
PAPER_TABLE3 = {
    "Base Model": (4.35, 15.62),
    "SFT Model": (84.66, 91.64),
    "AssertSolver": (88.54, 90.00),
}

PAPER_TABLE4 = {
    "Claude-3.5": (74.86, 84.10, 66.58, 77.48, 74.52, 83.83),
    "GPT-4": (58.04, 78.45, 54.74, 74.01, 57.90, 78.27),
    "o1-preview": (76.96, 87.73, 67.50, 87.94, 76.57, 87.74),
    "Deepseek-coder-6.7b": (4.41, 15.85, 2.89, 10.27, 4.35, 15.62),
    "CodeLlama-7b": (5.95, 17.06, 4.47, 12.85, 5.89, 16.89),
    "Llama-3.1-8b": (20.18, 32.41, 14.08, 24.48, 19.92, 32.08),
    "AssertSolver": (89.04, 90.38, 76.97, 81.35, 88.54, 90.00),
}


def _pct(value) -> str:
    if value is None or value != value:  # empty split (None) or NaN
        return "   n/a"
    return f"{100 * value:6.2f}"


def render_table1() -> str:
    """Table I: the bug taxonomy, verbatim."""
    lines = ["Table I: Bug types leading to assertion failures"]
    header = (f"{'Type':<10} {'Expected':<28} {'Unexpected':<30} "
              f"{'Assertion':<20}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, _description, expected, unexpected, assertion in TABLE1_ROWS:
        lines.append(f"{name:<10} {expected:<28} {unexpected:<30} "
                     f"{assertion:<20}")
    return "\n".join(lines)


def render_table2(train_distribution: Dict[str, int],
                  eval_distribution: Dict[str, int]) -> str:
    """Table II: SVA-Bug / SVA-Eval counts across bins and bug types."""
    lines = ["Table II: distribution across code length intervals and bug types"]
    bin_names = [length_bin_label(b) for b in LENGTH_BINS]
    lines.append(f"{'interval':<12}" + "".join(n.rjust(12) for n in bin_names))
    for label, dist in (("SVA-Bug", train_distribution),
                        ("SVA-Eval", eval_distribution)):
        lines.append(f"{label:<12}"
                     + "".join(str(dist.get(n, 0)).rjust(12)
                               for n in bin_names))
    lines.append(f"{'bug type':<12}" + "".join(n.rjust(12)
                                               for n in BUG_TYPE_ORDER))
    for label, dist in (("SVA-Bug", train_distribution),
                        ("SVA-Eval", eval_distribution)):
        lines.append(f"{label:<12}"
                     + "".join(str(dist.get(n, 0)).rjust(12)
                               for n in BUG_TYPE_ORDER))
    lines.append("(paper, SVA-Bug:  3400/2444/921/431/646 by bin; "
                 "5478/2364/546/5104/2254/1573/6269 by type)")
    lines.append("(paper, SVA-Eval: 431/260/102/58/64 by bin; "
                 "615/300/47/601/274/204/711 by type)")
    return "\n".join(lines)


def render_table3(results: Dict[str, EvalResult]) -> str:
    """Table III: pass@k for Base vs SFT vs AssertSolver."""
    lines = ["Table III: model performance as pass@k (ours vs paper)"]
    lines.append(f"{'Metric':<10}" + "".join(name.rjust(24)
                                             for name in results))
    for k in (1, 5):
        row = [f"pass@{k}".ljust(10)]
        for name, result in results.items():
            ours = 100 * result.pass_at(k)
            paper = PAPER_TABLE3.get(name, (None, None))[0 if k == 1 else 1]
            cell = f"{ours:6.2f}%"
            if paper is not None:
                cell += f" (paper {paper:5.2f}%)"
            row.append(cell.rjust(24))
        lines.append("".join(row))
    return "\n".join(lines)


def render_table4(results: Dict[str, EvalResult]) -> str:
    """Table IV: all models x {Machine, Human, All} x pass@{1,5}."""
    lines = ["Table IV: comparison on SVA-Eval (ours | paper)"]
    header = (f"{'Model':<22}" + "Machine@1".rjust(10) + "Machine@5".rjust(10)
              + "Human@1".rjust(10) + "Human@5".rjust(10)
              + "All@1".rjust(10) + "All@5".rjust(10))
    lines.append(header)
    lines.append("-" * len(header))
    for name, result in results.items():
        ours = (
            result.pass_at_origin(1, "machine"),
            result.pass_at_origin(5, "machine"),
            result.pass_at_origin(1, "human"),
            result.pass_at_origin(5, "human"),
            result.pass_at(1),
            result.pass_at(5),
        )
        lines.append(f"{name:<22}" + "".join(_pct(v).rjust(10) for v in ours))
        paper = PAPER_TABLE4.get(name)
        if paper:
            lines.append(f"{'  (paper)':<22}"
                         + "".join(f"{v:6.2f}".rjust(10) for v in paper))
    return "\n".join(lines)


def render_bucket_figure(results: Dict[str, EvalResult], k: int,
                         by: str, title: str) -> str:
    """Fig. 4 / Fig. 5 panels: pass@k per bucket per model."""
    lines = [title]
    names = (BUG_TYPE_ORDER if by == "bug_type"
             else [length_bin_label(b) for b in LENGTH_BINS])
    lines.append(f"{'Model':<22}" + "".join(n.rjust(12) for n in names))
    for model_name, result in results.items():
        scores = bucket_pass_at(result, k, by=by)
        lines.append(f"{model_name:<22}"
                     + "".join(_pct(scores.get(n, float('nan'))).rjust(12)
                               for n in names))
    return "\n".join(lines)


def render_fig4(results: Dict[str, EvalResult]) -> str:
    parts = [
        render_bucket_figure(results, 1, "bug_type",
                             "Fig 4(a): pass@1 by bug type"),
        render_bucket_figure(results, 5, "bug_type",
                             "Fig 4(a): pass@5 by bug type"),
        render_bucket_figure(results, 1, "length",
                             "Fig 4(b): pass@1 by code length"),
        render_bucket_figure(results, 5, "length",
                             "Fig 4(b): pass@5 by code length"),
    ]
    return "\n\n".join(parts)


def render_fig5(sft: EvalResult, assertsolver: EvalResult) -> str:
    results = {"SFT Model": sft, "AssertSolver": assertsolver}
    parts = [
        render_bucket_figure(results, 1, "bug_type",
                             "Fig 5(a): pass@1 by bug type (SFT vs DPO)"),
        render_bucket_figure(results, 1, "length",
                             "Fig 5(a): pass@1 by code length (SFT vs DPO)"),
        render_bucket_figure(results, 5, "bug_type",
                             "Fig 5(b): pass@5 by bug type (SFT vs DPO)"),
        render_bucket_figure(results, 5, "length",
                             "Fig 5(b): pass@5 by code length (SFT vs DPO)"),
    ]
    return "\n\n".join(parts)
