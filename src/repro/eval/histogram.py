"""The c-value histogram of the paper's Fig. 3.

For every evaluated case the model produced n = 20 responses, c of them
correct; the figure plots how many cases land at each c.  The paper's
observation: DPO moves mass toward the deterministic ends (c = 0 and
c = 20) relative to the SFT model.
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval.runner import EvalResult


def histogram_series(result: EvalResult, n: int = 20) -> List[int]:
    """Counts for c = 0..n as a dense list."""
    histogram = result.histogram()
    return [histogram.get(c, 0) for c in range(n + 1)]


def extremity_mass(result: EvalResult, n: int = 20) -> float:
    """Fraction of cases at the deterministic ends (c = 0 or c = n)."""
    if not result.outcomes:
        return 0.0
    extreme = sum(1 for o in result.outcomes if o.c in (0, n))
    return extreme / len(result.outcomes)


def render_histogram(results: Dict[str, EvalResult], n: int = 20,
                     width: int = 40) -> str:
    """ASCII rendering of Fig. 3 (one row per c, one column per model)."""
    lines = []
    names = list(results)
    header = "c".rjust(4) + "".join(name.rjust(width // len(names) + 10)
                                    for name in names)
    lines.append(header)
    series = {name: histogram_series(result, n)
              for name, result in results.items()}
    for c in range(n + 1):
        row = [str(c).rjust(4)]
        for name in names:
            count = series[name][c]
            bar = "#" * min(count, width // len(names))
            row.append(f"{count:5d} {bar}".ljust(width // len(names) + 10))
        lines.append("".join(row))
    for name in names:
        lines.append(f"extremity mass ({name}): "
                     f"{extremity_mass(results[name], n):.2%}")
    return "\n".join(lines)
