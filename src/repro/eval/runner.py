"""Model evaluation over SVA-Eval.

``run_eval`` runs any model (AssertSolver checkpoints or baseline
surrogates) over a case list under an :class:`EvalConfig` and produces
an :class:`EvalReport` holding everything the paper's tables and figures
need: per-case correct counts, aggregate pass@k for the config's
k-vector, per-origin splits, per-bucket splits and the c-histogram.
``evaluate_model`` survives as a thin deprecated shim over it, returning
the legacy :class:`EvalResult`.

Correctness follows the paper: the answer's buggy line must match the
golden buggy line and the suggested fix must match the golden fixed line
(whitespace-normalised).  ``EvalConfig.semantic_check`` additionally
accepts a textually-wrong repair when patching it into the design passes
the bounded checker — an extension the paper does not do (it compares
text), available for the ablation benches.

Each case samples from an RNG derived per ``(seed, "eval", case_id)``
instead of one stream threaded across cases, so ``run_eval`` can fan
case chunks out over an :class:`repro.engine.ExecutionEngine` and still
return exactly the serial outcomes.

With a ``store``, per-case outcomes are memoized in the ``eval/v1``
namespace on ``(case_digest, model_digest, n, seed,
config.semantic_digest())`` — the eval twin of the datagen pipeline's
whole-stage memoization.  Outcomes are pure functions of that key, so a
warm re-run against a populated :class:`DiskStore` recomputes only
new/changed cases and reproduces the cold report byte for byte.
"""

from __future__ import annotations

import hashlib
import pickle
import random
import warnings
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datagen.records import SvaEvalCase
from repro.engine import ExecutionEngine, derive_rng
from repro.eval.cases import case_digest
from repro.eval.config import EvalConfig
from repro.eval.passk import aggregate_pass_at_k
from repro.eval.report import EvalReport
from repro.model.assertsolver import Problem, SolverResponse
from repro.store.base import NS_EVAL, content_key


def _normalize(text: str) -> str:
    return " ".join(text.split())


def is_correct(response: SolverResponse, case: SvaEvalCase) -> bool:
    """Paper semantics: buggy-line number and fixed-line text must match."""
    record = case.record
    return (response.line == record.line
            and _normalize(response.fix) == _normalize(record.fixed_line))


def semantic_check(response: SolverResponse, case: SvaEvalCase,
                   bmc=None) -> bool:
    """Extension: does the patched design actually pass the bound?"""
    from repro.sva.bmc import BmcConfig, bounded_check
    from repro.verilog.compile import compile_source

    lines = case.entry.buggy_source_with_sva.splitlines()
    if not 1 <= response.line <= len(lines):
        return False
    indent = lines[response.line - 1][:len(lines[response.line - 1])
                                      - len(lines[response.line - 1].lstrip())]
    lines[response.line - 1] = indent + response.fix.strip()
    patched = "\n".join(lines) + "\n"
    result = compile_source(patched)
    if not result.ok:
        return False
    check = bounded_check(result.design, bmc or BmcConfig(depth=10,
                                                          random_trials=24))
    return check.passed_bound


class CaseOutcome:
    __slots__ = ("case", "n", "c")

    def __init__(self, case: SvaEvalCase, n: int, c: int):
        self.case = case
        self.n = n
        self.c = c


class EvalResult:
    """All outcomes of one model over one case list."""

    def __init__(self, model_name: str, outcomes: List[CaseOutcome],
                 n_samples: int):
        self.model_name = model_name
        self.outcomes = outcomes
        self.n_samples = n_samples

    # -- aggregates ---------------------------------------------------------

    def pass_at(self, k: int, subset: Optional[Sequence[CaseOutcome]] = None
                ) -> float:
        outcomes = self.outcomes if subset is None else list(subset)
        return aggregate_pass_at_k(((o.n, o.c) for o in outcomes), k)

    def pass_at_origin(self, k: int, origin: str) -> Optional[float]:
        """``None`` when no case has ``origin`` — an empty split is "no
        data", which must never be mistakable for "all failed" (0.0)."""
        subset = [o for o in self.outcomes if o.case.origin == origin]
        if not subset:
            return None
        return self.pass_at(k, subset)

    def histogram(self) -> Dict[int, int]:
        """c-value histogram (the paper's Fig. 3 series)."""
        counts: Dict[int, int] = {}
        for outcome in self.outcomes:
            counts[outcome.c] = counts.get(outcome.c, 0) + 1
        return counts

    def subset_where(self, predicate) -> List[CaseOutcome]:
        return [o for o in self.outcomes if predicate(o.case)]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"EvalResult({self.model_name}: "
                f"pass@1={self.pass_at(1):.4f}, pass@5={self.pass_at(5):.4f}, "
                f"{len(self.outcomes)} cases)")


def generate_for_case(model, case: SvaEvalCase, n: int,
                      rng: random.Random) -> List[SolverResponse]:
    """Dispatch: baseline surrogates take the case, trained models take the
    question-only Problem."""
    if hasattr(model, "generate_case"):
        return model.generate_case(case, n=n)
    return model.generate(Problem.from_entry(case.entry), n=n, rng=rng)


def _case_rng(seed: int, case: SvaEvalCase) -> random.Random:
    """Independent per-case stream: scheduling cannot leak into results."""
    return derive_rng(seed, "eval", case.case_id)


def _score_case(model, case: SvaEvalCase, n: int, seed: int,
                check: bool = False) -> Tuple[int, int]:
    responses = generate_for_case(model, case, n, _case_rng(seed, case))
    c = 0
    for response in responses:
        if is_correct(response, case):
            c += 1
        elif check and semantic_check(response, case):
            c += 1
    return len(responses), c


# -- model transport ----------------------------------------------------------
#
# A process-pool run used to pickle the model object graph once per chunk
# (workers * 4 times per model); for large checkpoints the serialization
# dominated the fan-out cost.  Now the model is pickled exactly once per
# evaluate_model call and the same immutable blob rides along with every
# chunk (re-sending bytes is a buffer copy, not a graph walk); each
# worker deserializes it once, verifies the content digest, and memoizes
# it, so later chunks on the same worker skip deserialization too.

_WORKER_MODEL_CACHE: "OrderedDict[str, object]" = OrderedDict()
_WORKER_MODEL_CACHE_MAX = 4


def _model_payload(model) -> Tuple[bytes, str]:
    """Serialize once; the digest doubles as transfer checksum and
    worker-side cache key."""
    blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.sha256(blob).hexdigest()


def _resolve_model(model, digest: Optional[str]):
    """The in-process model, or the cached/deserialized blob in a worker."""
    if digest is None:
        return model
    cached = _WORKER_MODEL_CACHE.get(digest)
    if cached is not None:
        _WORKER_MODEL_CACHE.move_to_end(digest)
        return cached
    blob = model
    if hashlib.sha256(blob).hexdigest() != digest:
        raise RuntimeError("model blob fingerprint changed in transit")
    resolved = pickle.loads(blob)
    _WORKER_MODEL_CACHE[digest] = resolved
    while len(_WORKER_MODEL_CACHE) > _WORKER_MODEL_CACHE_MAX:
        _WORKER_MODEL_CACHE.popitem(last=False)
    return resolved


def _eval_chunk(payload) -> List[Tuple[int, int]]:
    """Worker task: score a contiguous chunk of cases with one model copy."""
    model, digest, chunk, n, seed, check = payload
    model = _resolve_model(model, digest)
    return [_score_case(model, case, n, seed, check) for case in chunk]


def model_digest(model) -> str:
    """The model's content fingerprint — half of the per-case memo key.

    The pickle-blob digest :func:`_model_payload` already uses as a
    transfer checksum: any weight, profile, or seed change reads as a
    different model, invalidating exactly its own stored outcomes."""
    return _model_payload(model)[1]


def eval_memo_key(case_dig: str, model_dig: str, config: EvalConfig,
                  config_digest: Optional[str] = None) -> str:
    """The ``eval/v1`` store key: ``(case, model, n, seed, config)``.

    The eval twin of :func:`repro.store.unit_memo_key`; pass
    ``config_digest`` to amortize :meth:`EvalConfig.semantic_digest`
    over a case list."""
    return content_key("eval-memo", case_dig, model_dig,
                       str(config.n_samples), repr(config.seed),
                       config_digest or config.semantic_digest())


def _score_cases(model, cases: List[SvaEvalCase], config: EvalConfig,
                 engine: Optional[ExecutionEngine]) -> List[Tuple[int, int]]:
    """Score ``cases`` serially or chunked over ``engine``; per-case
    derived RNGs keep the outcomes byte-identical either way."""
    n, seed, check = config.n_samples, config.seed, config.semantic_check
    if engine is not None and engine.parallel and len(cases) > 1:
        chunk_size = max(1, (len(cases) + engine.n_workers * 4 - 1)
                         // (engine.n_workers * 4))
        if engine.backend == "process":
            # One serialization per run, shared by every chunk; workers
            # deserialize and memoize by digest (thread backend shares
            # the live object and needs none of this).
            transport, digest = _model_payload(model)
        else:
            transport, digest = model, None
        payloads = [(transport, digest, cases[i:i + chunk_size],
                     n, seed, check)
                    for i in range(0, len(cases), chunk_size)]
        # engine.map preserves input order, so the contiguous chunks
        # flatten straight back into case order.
        scores = [score for chunk in
                  engine.map(_eval_chunk, payloads, stage="evaluate")
                  for score in chunk]
        if digest is not None:
            _, digest_after = _model_payload(model)
            if digest_after != digest:
                raise RuntimeError(
                    "model fingerprint changed across the evaluation: "
                    "evaluation must not mutate the model")
        return scores
    return [_score_case(model, case, n, seed, check) for case in cases]


def run_eval(model, cases: Iterable[SvaEvalCase],
             config: Optional[EvalConfig] = None,
             engine: Optional[ExecutionEngine] = None,
             store=None) -> EvalReport:
    """Evaluate ``model`` over ``cases`` under ``config``.

    With a ``store`` (any :class:`repro.store.ArtifactStore`), per-case
    ``(n, c)`` outcomes are memoized on ``(case_digest, model_digest,
    n, seed, config.semantic_digest())`` in the ``eval/v1`` namespace:
    only cases with no stored outcome are computed (chunked over
    ``engine`` when one is given), and fresh outcomes are written back.
    The returned :class:`EvalReport` is byte-deterministic — cold and
    warm runs serialize identically; ``report.stats`` carries the
    volatile memo counters (``cases`` / ``memo_hits`` / ``computed``)
    outside the canonical payload.
    """
    config = config or EvalConfig()
    config.validate()
    cases = list(cases)
    scores: List[Optional[Tuple[int, int]]] = [None] * len(cases)
    keys: List[Optional[str]] = [None] * len(cases)
    digest = ""
    hits = 0
    if store is not None:
        digest = model_digest(model)
        config_digest = config.semantic_digest()
        for i, case in enumerate(cases):
            keys[i] = eval_memo_key(case_digest(case), digest, config,
                                    config_digest)
            stored = store.get(NS_EVAL, keys[i])
            # Shape-check replayed artifacts: a corrupted or foreign
            # entry counts as a miss, never a crash (store contract).
            if isinstance(stored, tuple) and len(stored) == 2 \
                    and all(isinstance(v, int) for v in stored):
                scores[i] = stored
                hits += 1
    miss_idx = [i for i in range(len(cases)) if scores[i] is None]
    computed = _score_cases(model, [cases[i] for i in miss_idx],
                            config, engine)
    for i, score in zip(miss_idx, computed):
        scores[i] = tuple(score)
        if store is not None:
            store.put(NS_EVAL, keys[i], tuple(score))
    outcomes = [CaseOutcome(case, total, c)
                for case, (total, c) in zip(cases, scores)]
    name = getattr(model, "name", type(model).__name__)
    result = EvalResult(name, outcomes, config.n_samples)
    report = EvalReport.from_result(result, config)
    report.model_digest = digest
    report.stats = {"cases": len(cases), "memo_hits": hits,
                    "computed": len(miss_idx)}
    return report


def evaluate_model(model, cases: Iterable[SvaEvalCase], n: int = 20,
                   seed: int = 123,
                   engine: Optional[ExecutionEngine] = None) -> EvalResult:
    """Deprecated shim over :func:`run_eval` (paper defaults: n=20).

    The loose positional knobs became :class:`EvalConfig`; this keeps
    the old signature and :class:`EvalResult` return working while
    callers migrate."""
    warnings.warn(
        "evaluate_model() is deprecated; use "
        "run_eval(model, cases, EvalConfig(n_samples=..., seed=...))",
        DeprecationWarning, stacklevel=2)
    report = run_eval(model, cases,
                      EvalConfig(n_samples=n, seed=seed), engine=engine)
    return report.result
