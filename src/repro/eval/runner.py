"""Model evaluation over SVA-Eval.

``evaluate_model`` runs any model (AssertSolver checkpoints or baseline
surrogates) over a case list with n samples per case and produces an
:class:`EvalResult` holding everything the paper's tables and figures
need: per-case correct counts, aggregate pass@k, per-origin splits,
per-bucket splits and the c-histogram.

Correctness follows the paper: the answer's buggy line must match the
golden buggy line and the suggested fix must match the golden fixed line
(whitespace-normalised).  ``semantic_check`` optionally re-verifies a
repair by patching the design and re-running the bounded checker — an
extension the paper does not do (it compares text), available for the
ablation benches.

Each case samples from an RNG derived per ``(seed, "eval", case_id)``
instead of one stream threaded across cases, so ``evaluate_model`` can
fan case chunks out over an :class:`repro.engine.ExecutionEngine` and
still return exactly the serial outcomes.
"""

from __future__ import annotations

import hashlib
import pickle
import random
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datagen.records import SvaEvalCase
from repro.engine import ExecutionEngine, derive_rng
from repro.eval.passk import aggregate_pass_at_k
from repro.model.assertsolver import Problem, SolverResponse


def _normalize(text: str) -> str:
    return " ".join(text.split())


def is_correct(response: SolverResponse, case: SvaEvalCase) -> bool:
    """Paper semantics: buggy-line number and fixed-line text must match."""
    record = case.record
    return (response.line == record.line
            and _normalize(response.fix) == _normalize(record.fixed_line))


def semantic_check(response: SolverResponse, case: SvaEvalCase,
                   bmc=None) -> bool:
    """Extension: does the patched design actually pass the bound?"""
    from repro.sva.bmc import BmcConfig, bounded_check
    from repro.verilog.compile import compile_source

    lines = case.entry.buggy_source_with_sva.splitlines()
    if not 1 <= response.line <= len(lines):
        return False
    indent = lines[response.line - 1][:len(lines[response.line - 1])
                                      - len(lines[response.line - 1].lstrip())]
    lines[response.line - 1] = indent + response.fix.strip()
    patched = "\n".join(lines) + "\n"
    result = compile_source(patched)
    if not result.ok:
        return False
    check = bounded_check(result.design, bmc or BmcConfig(depth=10,
                                                          random_trials=24))
    return check.passed_bound


class CaseOutcome:
    __slots__ = ("case", "n", "c")

    def __init__(self, case: SvaEvalCase, n: int, c: int):
        self.case = case
        self.n = n
        self.c = c


class EvalResult:
    """All outcomes of one model over one case list."""

    def __init__(self, model_name: str, outcomes: List[CaseOutcome],
                 n_samples: int):
        self.model_name = model_name
        self.outcomes = outcomes
        self.n_samples = n_samples

    # -- aggregates ---------------------------------------------------------

    def pass_at(self, k: int, subset: Optional[Sequence[CaseOutcome]] = None
                ) -> float:
        outcomes = self.outcomes if subset is None else list(subset)
        return aggregate_pass_at_k(((o.n, o.c) for o in outcomes), k)

    def pass_at_origin(self, k: int, origin: str) -> float:
        subset = [o for o in self.outcomes if o.case.origin == origin]
        if not subset:
            return 0.0
        return self.pass_at(k, subset)

    def histogram(self) -> Dict[int, int]:
        """c-value histogram (the paper's Fig. 3 series)."""
        counts: Dict[int, int] = {}
        for outcome in self.outcomes:
            counts[outcome.c] = counts.get(outcome.c, 0) + 1
        return counts

    def subset_where(self, predicate) -> List[CaseOutcome]:
        return [o for o in self.outcomes if predicate(o.case)]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"EvalResult({self.model_name}: "
                f"pass@1={self.pass_at(1):.4f}, pass@5={self.pass_at(5):.4f}, "
                f"{len(self.outcomes)} cases)")


def generate_for_case(model, case: SvaEvalCase, n: int,
                      rng: random.Random) -> List[SolverResponse]:
    """Dispatch: baseline surrogates take the case, trained models take the
    question-only Problem."""
    if hasattr(model, "generate_case"):
        return model.generate_case(case, n=n)
    return model.generate(Problem.from_entry(case.entry), n=n, rng=rng)


def _case_rng(seed: int, case: SvaEvalCase) -> random.Random:
    """Independent per-case stream: scheduling cannot leak into results."""
    return derive_rng(seed, "eval", case.case_id)


def _score_case(model, case: SvaEvalCase, n: int, seed: int) -> Tuple[int, int]:
    responses = generate_for_case(model, case, n, _case_rng(seed, case))
    c = sum(1 for response in responses if is_correct(response, case))
    return len(responses), c


# -- model transport ----------------------------------------------------------
#
# A process-pool run used to pickle the model object graph once per chunk
# (workers * 4 times per model); for large checkpoints the serialization
# dominated the fan-out cost.  Now the model is pickled exactly once per
# evaluate_model call and the same immutable blob rides along with every
# chunk (re-sending bytes is a buffer copy, not a graph walk); each
# worker deserializes it once, verifies the content digest, and memoizes
# it, so later chunks on the same worker skip deserialization too.

_WORKER_MODEL_CACHE: "OrderedDict[str, object]" = OrderedDict()
_WORKER_MODEL_CACHE_MAX = 4


def _model_payload(model) -> Tuple[bytes, str]:
    """Serialize once; the digest doubles as transfer checksum and
    worker-side cache key."""
    blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.sha256(blob).hexdigest()


def _resolve_model(model, digest: Optional[str]):
    """The in-process model, or the cached/deserialized blob in a worker."""
    if digest is None:
        return model
    cached = _WORKER_MODEL_CACHE.get(digest)
    if cached is not None:
        _WORKER_MODEL_CACHE.move_to_end(digest)
        return cached
    blob = model
    if hashlib.sha256(blob).hexdigest() != digest:
        raise RuntimeError("model blob fingerprint changed in transit")
    resolved = pickle.loads(blob)
    _WORKER_MODEL_CACHE[digest] = resolved
    while len(_WORKER_MODEL_CACHE) > _WORKER_MODEL_CACHE_MAX:
        _WORKER_MODEL_CACHE.popitem(last=False)
    return resolved


def _eval_chunk(payload) -> List[Tuple[int, int]]:
    """Worker task: score a contiguous chunk of cases with one model copy."""
    model, digest, chunk, n, seed = payload
    model = _resolve_model(model, digest)
    return [_score_case(model, case, n, seed) for case in chunk]


def evaluate_model(model, cases: Iterable[SvaEvalCase], n: int = 20,
                   seed: int = 123,
                   engine: Optional[ExecutionEngine] = None) -> EvalResult:
    """Run ``model`` over ``cases`` with ``n`` samples each (paper: 20).

    With a parallel ``engine``, cases are scored in chunks across the
    worker pool; per-case derived RNGs keep the outcomes byte-identical
    to the serial path.
    """
    cases = list(cases)
    scores: List[Tuple[int, int]]
    if engine is not None and engine.parallel and len(cases) > 1:
        chunk_size = max(1, (len(cases) + engine.n_workers * 4 - 1)
                         // (engine.n_workers * 4))
        if engine.backend == "process":
            # One serialization per run, shared by every chunk; workers
            # deserialize and memoize by digest (thread backend shares
            # the live object and needs none of this).
            transport, digest = _model_payload(model)
        else:
            transport, digest = model, None
        payloads = [(transport, digest, cases[i:i + chunk_size], n, seed)
                    for i in range(0, len(cases), chunk_size)]
        # engine.map preserves input order, so the contiguous chunks
        # flatten straight back into case order.
        scores = [score for chunk in
                  engine.map(_eval_chunk, payloads, stage="evaluate")
                  for score in chunk]
        if digest is not None:
            _, digest_after = _model_payload(model)
            if digest_after != digest:
                raise RuntimeError(
                    "model fingerprint changed across evaluate_model: "
                    "evaluation must not mutate the model")
    else:
        scores = [_score_case(model, case, n, seed) for case in cases]
    outcomes = [CaseOutcome(case, total, c)
                for case, (total, c) in zip(cases, scores)]
    name = getattr(model, "name", type(model).__name__)
    return EvalResult(name, outcomes, n)
