"""EvalConfig: the validated knob block for one evaluation run.

The :class:`DatagenConfig` / :class:`ServeConfig` idiom applied to the
eval layer: a frozen dataclass that fails fast on malformed knobs
(unknown keyword arguments raise ``TypeError`` from the dataclass
constructor itself) and renders a :meth:`semantic_digest` over exactly
the fields that change per-case results.

``k_values`` is deliberately *not* part of the digest: the memoized
artifact is the per-case ``(n, c)`` outcome, and the k-vector only
changes how those outcomes aggregate into a report — re-running with a
different k-vector must hit every stored outcome, not recompute them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class EvalConfig:
    """Result-changing knobs for :func:`repro.eval.run_eval`.

    ``n_samples`` / ``seed`` parameterize the per-case sampling exactly
    as ``evaluate_model``'s old positional knobs did; ``semantic_check``
    additionally accepts a textually-wrong repair when patching it into
    the design passes the bounded checker (the paper compares text
    only, so the default is off); ``k_values`` selects which pass@k
    columns the report carries.
    """

    n_samples: int = 20
    seed: int = 123
    k_values: Tuple[int, ...] = (1, 5)
    semantic_check: bool = False
    #: Wall-clock budget when the config rides a service-side
    #: :class:`repro.serve.EvalRequest`; a QoS knob like
    #: ``SolveOptions.deadline_ms``, excluded from both
    #: :meth:`canonical` and :meth:`semantic_digest`.
    deadline_ms: Optional[float] = field(default=None, compare=False)

    def __post_init__(self):
        if isinstance(self.k_values, list):
            object.__setattr__(self, "k_values", tuple(self.k_values))
        self.validate()

    def validate(self) -> None:
        for name, minimum in (("n_samples", 1), ("seed", None)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or (minimum is not None and value < minimum):
                bound = f" >= {minimum}" if minimum is not None else ""
                raise ValueError(
                    f"{name} must be an integer{bound}, got {value!r}")
        if not isinstance(self.k_values, tuple) or not self.k_values:
            raise ValueError(
                f"k_values must be a non-empty tuple of integers, "
                f"got {self.k_values!r}")
        for k in self.k_values:
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise ValueError(
                    f"k_values entries must be integers >= 1, got {k!r}")
        if list(self.k_values) != sorted(set(self.k_values)):
            raise ValueError(
                f"k_values must be strictly increasing, got {self.k_values!r}")
        if not isinstance(self.semantic_check, bool):
            raise ValueError(
                f"semantic_check must be a bool, got {self.semantic_check!r}")
        if self.deadline_ms is not None \
                and (not isinstance(self.deadline_ms, (int, float))
                     or isinstance(self.deadline_ms, bool)
                     or self.deadline_ms <= 0):
            raise ValueError(f"deadline_ms must be a number > 0 or None, "
                             f"got {self.deadline_ms!r}")

    def canonical(self) -> str:
        """Stable text rendering, hashed into eval request content keys.

        Excludes ``deadline_ms`` for the same reason
        :meth:`SolveOptions.canonical` does: the deadline changes when a
        report is worth delivering, never what the report is."""
        return json.dumps({
            "n_samples": self.n_samples,
            "seed": self.seed,
            "k_values": list(self.k_values),
            "semantic_check": self.semantic_check,
        }, sort_keys=True)

    def semantic_digest(self) -> str:
        """Digest of exactly the per-case-result-changing fields.

        Follows :meth:`DatagenConfig.semantic_digest`: the package
        version is folded in so stored outcomes never survive a release
        whose scoring may have evolved.  ``k_values`` stays out (it is
        aggregation, not scoring — see the module docstring), as does
        ``deadline_ms`` (pure QoS)."""
        import repro

        payload = {
            "repro_version": repro.__version__,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "semantic_check": self.semantic_check,
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
