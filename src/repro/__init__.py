"""repro — reproduction of AssertSolver (DAC 2025).

AssertSolver is an LLM pipeline for solving SystemVerilog Assertion (SVA)
failures in RTL designs.  This package rebuilds the full system described in
the paper on a pure-Python substrate:

- :mod:`repro.verilog` — a compiler frontend for a synthesizable Verilog
  subset (substitute for Icarus Verilog).
- :mod:`repro.sim` — a cycle-based RTL simulator with 4-state values.
- :mod:`repro.sva` — SVA parsing, runtime monitors and a bounded model
  checker (substitute for SymbiYosys).
- :mod:`repro.corpus` — a parameterized generator of realistic RTL designs
  (substitute for the paper's 108,971-sample HuggingFace corpus).
- :mod:`repro.bugs` — the 7-type bug taxonomy of the paper's Table I and the
  mutation engine that injects/classifies bugs.
- :mod:`repro.oracles` — rule-based surrogates for the GPT-4 / Claude-3.5
  annotators (spec writing, SVA synthesis, CoT generation) with controlled
  imperfection so the validation stages are exercised.
- :mod:`repro.datagen` — the three-stage data augmentation pipeline
  producing the Verilog-PT / Verilog-Bug / SVA-Bug datasets.
- :mod:`repro.model` — the trainable AssertSolver surrogate (PT -> SFT ->
  DPO) and its sampling-based inference.
- :mod:`repro.baselines` — surrogate engines for the commercial/open LLMs
  compared in the paper's Table IV.
- :mod:`repro.eval` — the SVA-Eval benchmark, pass@k metrics and the
  experiment runners that regenerate every table and figure.
- :mod:`repro.serve` — the online serving layer: an async micro-batching
  assertion service with content-hash result caching, a stdlib
  JSON-over-HTTP transport (server + client), a consistent-hash fleet
  router over N instances, and a load-test harness.
- :mod:`repro.store` — the persistent content-addressed artifact store:
  crash-safe disk blobs under every cache, making datagen re-runs
  incremental and letting service fleets pool responses.
- :mod:`repro.obs` — observability: end-to-end request tracing
  (deterministic trace ids, ``X-Repro-Trace-Id`` propagation, bounded
  recent/slowest trace retention) and a unified metrics layer with
  Prometheus-text exposition, served as ``/tracez`` and ``/metricsz``
  on every HTTP server and fleet router.
"""

_API_EXPORTS = ("AssertSolverPipeline", "FleetConfig", "PipelineConfig",
                "make_fleet")
_SERVE_EXPORTS = ("AssertClient", "AssertHttpServer", "AssertService",
                  "EvalRequest", "EvalResponse", "FleetRouter", "HttpConfig",
                  "RouterConfig", "ServeConfig", "SolveOptions",
                  "SolveRequest")
_STORE_EXPORTS = ("DiskStore", "MemoryStore", "StoreConfig", "TieredStore")
_OBS_EXPORTS = ("MetricsRegistry", "TraceBuffer")
_EVAL_EXPORTS = ("EvalConfig", "EvalReport", "EvalResult", "evaluate_model",
                 "run_eval")
__all__ = [*_API_EXPORTS, *_SERVE_EXPORTS, *_STORE_EXPORTS, *_OBS_EXPORTS,
           *_EVAL_EXPORTS]
__version__ = "1.5.0"


def __getattr__(name):
    """Lazy re-exports so importing :mod:`repro` stays cheap."""
    if name in _API_EXPORTS:
        from repro.core import api

        return getattr(api, name)
    if name in _SERVE_EXPORTS:
        import repro.serve as serve

        return getattr(serve, name)
    if name in _STORE_EXPORTS:
        import repro.store as store

        return getattr(store, name)
    if name in _OBS_EXPORTS:
        import repro.obs as obs

        return getattr(obs, name)
    if name in _EVAL_EXPORTS:
        import repro.eval as eval_pkg

        return getattr(eval_pkg, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
