"""4-state bit-vector values.

A :class:`FourState` is a fixed-width vector where every bit is 0, 1 or X
(Z is folded into X — our subset has no tristate logic).  Representation is
two integers: ``value`` holds the 0/1 bits, ``xmask`` marks unknown bits.
Bits set in ``xmask`` are forced to 0 in ``value`` so equality and hashing
are canonical.

X propagation is pessimistic at vector granularity for arithmetic (any X
operand makes the whole result X) and bit-accurate for the bitwise
operators where masking can rescue known bits (e.g. ``0 & x == 0``), which
matches how event-driven simulators behave on the idioms our corpus emits.
"""

from __future__ import annotations

from typing import Union


def _mask(width: int) -> int:
    return (1 << width) - 1


class FourState:
    """Immutable fixed-width 4-state vector."""

    __slots__ = ("width", "value", "xmask")

    def __init__(self, width: int, value: int = 0, xmask: int = 0):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        m = _mask(width)
        xmask &= m
        self.width = width
        self.xmask = xmask
        self.value = value & m & ~xmask

    # -- constructors --------------------------------------------------------

    @classmethod
    def unknown(cls, width: int) -> "FourState":
        return cls(width, 0, _mask(width))

    @classmethod
    def from_int(cls, value: int, width: int) -> "FourState":
        return cls(width, value, 0)

    @classmethod
    def from_bool(cls, flag: bool) -> "FourState":
        return cls(1, int(flag), 0)

    # -- predicates -----------------------------------------------------------

    @property
    def has_x(self) -> bool:
        return self.xmask != 0

    @property
    def all_x(self) -> bool:
        return self.xmask == _mask(self.width)

    def is_true(self) -> bool:
        """Definitely nonzero: some known bit is 1."""
        return self.value != 0

    def is_false(self) -> bool:
        """Definitely zero: all bits known and zero."""
        return self.value == 0 and self.xmask == 0

    def to_int(self) -> int:
        """Known value as int; X bits read as 0 (caller should check has_x)."""
        return self.value

    def to_signed(self) -> int:
        sign_bit = 1 << (self.width - 1)
        if self.value & sign_bit:
            return self.value - (1 << self.width)
        return self.value

    # -- shaping ---------------------------------------------------------------

    def resize(self, width: int) -> "FourState":
        """Zero-extend or truncate to ``width``."""
        if width == self.width:
            return self
        return FourState(width, self.value, self.xmask)

    def bit(self, index: int) -> "FourState":
        if index < 0 or index >= self.width:
            return FourState.unknown(1)
        return FourState(1, (self.value >> index) & 1, (self.xmask >> index) & 1)

    def slice(self, msb: int, lsb: int) -> "FourState":
        if lsb > msb:
            msb, lsb = lsb, msb
        width = msb - lsb + 1
        if lsb >= self.width:
            return FourState.unknown(width)
        return FourState(width, self.value >> lsb, self.xmask >> lsb)

    def replace_slice(self, msb: int, lsb: int, other: "FourState") -> "FourState":
        """Functional update of bits [msb:lsb] with ``other``."""
        if lsb > msb:
            msb, lsb = lsb, msb
        span = _mask(msb - lsb + 1) << lsb
        value = (self.value & ~span) | ((other.value << lsb) & span)
        xmask = (self.xmask & ~span) | ((other.xmask << lsb) & span)
        return FourState(self.width, value, xmask)

    # -- arithmetic (vector-pessimistic on X) -----------------------------------

    def _binary_arith(self, other: "FourState", width: int, op) -> "FourState":
        if self.has_x or other.has_x:
            return FourState.unknown(width)
        return FourState(width, op(self.value, other.value) & _mask(width))

    def add(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        return self._binary_arith(other, width, lambda a, b: a + b)

    def sub(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        return self._binary_arith(other, width, lambda a, b: a - b)

    def mul(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        return self._binary_arith(other, width, lambda a, b: a * b)

    def div(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        if other.is_false() or other.has_x or self.has_x:
            return FourState.unknown(width)
        return FourState(width, (self.value // other.value) & _mask(width))

    def mod(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        if other.is_false() or other.has_x or self.has_x:
            return FourState.unknown(width)
        return FourState(width, (self.value % other.value) & _mask(width))

    def pow(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        if self.has_x or other.has_x or other.value > 64:
            return FourState.unknown(width)
        return FourState(width, pow(self.value, other.value, 1 << width))

    # -- bitwise (bit-accurate X) -------------------------------------------------

    def bit_and(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        # Result bit known-0 where either side is known-0.
        known_zero = (~a.value & ~a.xmask) | (~b.value & ~b.xmask)
        value = a.value & b.value
        xmask = (a.xmask | b.xmask) & ~known_zero
        return FourState(width, value, xmask & _mask(width))

    def bit_or(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        known_one = a.value | b.value
        value = known_one
        xmask = (a.xmask | b.xmask) & ~known_one
        return FourState(width, value, xmask)

    def bit_xor(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        xmask = a.xmask | b.xmask
        return FourState(width, a.value ^ b.value, xmask)

    def bit_not(self) -> "FourState":
        return FourState(self.width, ~self.value, self.xmask)

    # -- shifts ---------------------------------------------------------------------

    def shl(self, other: "FourState") -> "FourState":
        if other.has_x:
            return FourState.unknown(self.width)
        n = min(other.value, self.width)
        return FourState(self.width, self.value << n, self.xmask << n)

    def shr(self, other: "FourState") -> "FourState":
        if other.has_x:
            return FourState.unknown(self.width)
        n = other.value
        return FourState(self.width, self.value >> n, self.xmask >> n)

    def ashr(self, other: "FourState") -> "FourState":
        if other.has_x or self.has_x:
            return FourState.unknown(self.width)
        n = min(other.value, self.width)
        return FourState(self.width, (self.to_signed() >> n) & _mask(self.width))

    # -- comparisons (1-bit results) ---------------------------------------------------

    def _cmp(self, other: "FourState", op) -> "FourState":
        if self.has_x or other.has_x:
            return FourState.unknown(1)
        return FourState.from_bool(op(self.value, other.value))

    def eq(self, other: "FourState") -> "FourState":
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        if a.xmask or b.xmask:
            # If any known bits already differ, the result is known-false.
            known = ~(a.xmask | b.xmask) & _mask(width)
            if (a.value ^ b.value) & known:
                return FourState.from_bool(False)
            return FourState.unknown(1)
        return FourState.from_bool(a.value == b.value)

    def ne(self, other: "FourState") -> "FourState":
        result = self.eq(other)
        if result.has_x:
            return result
        return FourState.from_bool(not result.is_true())

    def case_eq(self, other: "FourState") -> "FourState":
        """``===``: X bits compare as literal values."""
        width = max(self.width, other.width)
        a, b = self.resize(width), other.resize(width)
        return FourState.from_bool(a.value == b.value and a.xmask == b.xmask)

    def lt(self, other: "FourState") -> "FourState":
        return self._cmp(other, lambda a, b: a < b)

    def le(self, other: "FourState") -> "FourState":
        return self._cmp(other, lambda a, b: a <= b)

    def gt(self, other: "FourState") -> "FourState":
        return self._cmp(other, lambda a, b: a > b)

    def ge(self, other: "FourState") -> "FourState":
        return self._cmp(other, lambda a, b: a >= b)

    # -- logical (1-bit, 3-valued) -------------------------------------------------------

    def log_not(self) -> "FourState":
        if self.is_true():
            return FourState.from_bool(False)
        if self.is_false():
            return FourState.from_bool(True)
        return FourState.unknown(1)

    def log_and(self, other: "FourState") -> "FourState":
        if self.is_false() or other.is_false():
            return FourState.from_bool(False)
        if self.is_true() and other.is_true():
            return FourState.from_bool(True)
        return FourState.unknown(1)

    def log_or(self, other: "FourState") -> "FourState":
        if self.is_true() or other.is_true():
            return FourState.from_bool(True)
        if self.is_false() and other.is_false():
            return FourState.from_bool(False)
        return FourState.unknown(1)

    # -- reductions ----------------------------------------------------------------------

    def reduce_and(self) -> "FourState":
        m = _mask(self.width)
        if (self.value | self.xmask) != m:
            return FourState.from_bool(False)
        if self.xmask:
            return FourState.unknown(1)
        return FourState.from_bool(True)

    def reduce_or(self) -> "FourState":
        if self.value:
            return FourState.from_bool(True)
        if self.xmask:
            return FourState.unknown(1)
        return FourState.from_bool(False)

    def reduce_xor(self) -> "FourState":
        if self.xmask:
            return FourState.unknown(1)
        return FourState.from_bool(bool(bin(self.value).count("1") & 1))

    def count_ones(self) -> "FourState":
        if self.xmask:
            return FourState.unknown(32)
        return FourState(32, bin(self.value).count("1"))

    # -- structure -------------------------------------------------------------------------

    def concat(self, other: "FourState") -> "FourState":
        """``{self, other}`` — self becomes the high part."""
        width = self.width + other.width
        value = (self.value << other.width) | other.value
        xmask = (self.xmask << other.width) | other.xmask
        return FourState(width, value, xmask)

    def repeat(self, count: int) -> "FourState":
        if count <= 0:
            raise ValueError("replication count must be positive")
        out = self
        for _ in range(count - 1):
            out = out.concat(self)
        return out

    def negate(self) -> "FourState":
        if self.has_x:
            return FourState.unknown(self.width)
        return FourState(self.width, -self.value)

    # -- dunder --------------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return not self.has_x and self.value == other
        if isinstance(other, FourState):
            return (self.width == other.width and self.value == other.value
                    and self.xmask == other.xmask)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self.value, self.xmask))

    def __repr__(self) -> str:
        return f"FourState({self.width}'{self.to_verilog()})"

    def to_verilog(self) -> str:
        """Binary literal with x digits, e.g. ``b10x1``."""
        digits = []
        for i in reversed(range(self.width)):
            if (self.xmask >> i) & 1:
                digits.append("x")
            else:
                digits.append(str((self.value >> i) & 1))
        return "b" + "".join(digits)


Value = Union[FourState, int]
