"""Simulation traces: per-cycle snapshots of every signal.

``trace[i]`` is the stable (post-edge, post-settle) environment after clock
edge ``i``.  The SVA monitor samples these snapshots; ``$past(e, n)`` at
cycle ``i`` evaluates ``e`` over ``trace[i - n]``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.sim.values import FourState

Snapshot = Dict[str, FourState]


class Trace:
    """An append-only sequence of signal snapshots."""

    def __init__(self, signal_names: Optional[List[str]] = None):
        self.signal_names = list(signal_names or [])
        self.snapshots: List[Snapshot] = []
        self.inputs_applied: List[Dict[str, int]] = []

    def append(self, snapshot: Snapshot, inputs: Optional[Dict[str, int]] = None) -> None:
        self.snapshots.append(dict(snapshot))
        self.inputs_applied.append(dict(inputs or {}))

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self.snapshots[index]

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self.snapshots)

    def value(self, name: str, cycle: int) -> FourState:
        return self.snapshots[cycle][name]

    def column(self, name: str) -> List[FourState]:
        return [snap[name] for snap in self.snapshots]

    def to_table(self, signals: Optional[List[str]] = None,
                 first: int = 0, last: Optional[int] = None) -> str:
        """Render a waveform-style text table (used in failure logs)."""
        if not self.snapshots:
            return "(empty trace)"
        signals = signals or self.signal_names or sorted(self.snapshots[0])
        last = len(self.snapshots) if last is None else min(last, len(self.snapshots))
        header = "cycle".ljust(8) + " ".join(name.rjust(max(len(name), 4))
                                             for name in signals)
        rows = [header]
        for i in range(first, last):
            cells = []
            for name in signals:
                value = self.snapshots[i].get(name)
                if value is None:
                    text = "-"
                elif value.has_x:
                    text = "x" if value.all_x else value.to_verilog()
                else:
                    text = str(value.to_int())
                cells.append(text.rjust(max(len(name), 4)))
            rows.append(str(i).ljust(8) + " ".join(cells))
        return "\n".join(rows)
