"""Stimulus construction for simulation and bounded model checking.

A :class:`Stimulus` is a reset protocol plus a per-cycle list of input
vectors (``name -> int``).  Helpers build the directed patterns the BMC
engine mixes with random search.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.verilog.elaborator import Design


class Stimulus:
    """Input program: ``vectors[t]`` drives the free inputs at cycle ``t``.

    Clock toggling is implicit (one entry == one clock cycle); reset signals
    are driven by the protocol fields, not by the vectors.
    """

    def __init__(self, vectors: List[Dict[str, int]], reset_cycles: int = 2):
        self.vectors = vectors
        self.reset_cycles = reset_cycles

    def __len__(self) -> int:
        return len(self.vectors)

    def __getitem__(self, index: int) -> Dict[str, int]:
        return self.vectors[index]

    def extended(self, extra: List[Dict[str, int]]) -> "Stimulus":
        return Stimulus(self.vectors + extra, self.reset_cycles)


def reset_values(design: Design, active: bool) -> Dict[str, int]:
    """Reset signal levels.  Active-low names (``rst_n`` etc.) are detected
    by suffix; everything else is treated active-high."""
    values = {}
    for name in design.resets:
        low_active = name.endswith("_n") or name.endswith("_b") or "n" == name[-1:]
        if active:
            values[name] = 0 if low_active else 1
        else:
            values[name] = 1 if low_active else 0
    return values


def reset_sequence(design: Design, depth: int, rng: Optional[random.Random] = None,
                   reset_cycles: int = 2) -> Stimulus:
    """Random stimulus of ``depth`` post-reset cycles."""
    rng = rng or random.Random(0)
    vectors = []
    for _ in range(depth):
        vector = {}
        for sym in design.free_inputs():
            vector[sym.name] = rng.getrandbits(sym.width)
        vectors.append(vector)
    return Stimulus(vectors, reset_cycles)


def constant_sequence(design: Design, depth: int, value_bit: int,
                      reset_cycles: int = 2) -> Stimulus:
    """All inputs held at all-zeros (value_bit=0) or all-ones (=1)."""
    vectors = []
    for _ in range(depth):
        vector = {}
        for sym in design.free_inputs():
            vector[sym.name] = ((1 << sym.width) - 1) if value_bit else 0
        vectors.append(vector)
    return Stimulus(vectors, reset_cycles)


def toggle_sequence(design: Design, depth: int, phase: int = 0,
                    reset_cycles: int = 2) -> Stimulus:
    """Inputs alternate all-ones / all-zeros each cycle."""
    vectors = []
    for t in range(depth):
        bit = (t + phase) & 1
        vector = {}
        for sym in design.free_inputs():
            vector[sym.name] = ((1 << sym.width) - 1) if bit else 0
        vectors.append(vector)
    return Stimulus(vectors, reset_cycles)


def walking_ones_sequence(design: Design, depth: int,
                          reset_cycles: int = 2) -> Stimulus:
    """A walking-1 over the concatenated input space, one bit per cycle."""
    inputs = design.free_inputs()
    total_bits = sum(s.width for s in inputs)
    vectors = []
    for t in range(depth):
        position = t % max(total_bits, 1)
        vector = {}
        offset = 0
        for sym in inputs:
            local = position - offset
            vector[sym.name] = (1 << local) if 0 <= local < sym.width else 0
            offset += sym.width
        vectors.append(vector)
    return Stimulus(vectors, reset_cycles)


def enumerate_exhaustive(design: Design, depth: int,
                         reset_cycles: int = 2) -> Sequence[Stimulus]:
    """All input sequences of length ``depth`` (caller bounds the size).

    Yields ``2 ** (total_bits * depth)`` stimuli; the BMC engine only calls
    this when that count is below its exhaustive threshold.
    """
    inputs = design.free_inputs()
    total_bits = sum(s.width for s in inputs)
    combos = 1 << (total_bits * depth)
    for code in range(combos):
        vectors = []
        remaining = code
        for _ in range(depth):
            vector = {}
            for sym in inputs:
                vector[sym.name] = remaining & ((1 << sym.width) - 1)
                remaining >>= sym.width
            vectors.append(vector)
        yield Stimulus(vectors, reset_cycles)
