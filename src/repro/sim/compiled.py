"""Compiled simulation tier: lower a Design once, run it many times.

The interpreter (:class:`repro.sim.simulator.Simulator`) re-walks the AST
with per-node dispatch and dict-keyed environments once per signal per
cycle per stimulus.  This module lowers an elaborated design into a flat
evaluation program exactly once:

- every signal is mapped to an integer slot in a flat list (no dict
  lookups on the hot path);
- every expression becomes a dispatch-free Python closure with constants
  folded and widths/masks precomputed;
- combinational assigns and ``always @(*)`` blocks are pre-sorted into
  dependency (topological) order so the settle loop converges in the
  minimum number of sweeps;
- the reset-time environment (declaration inits + ``initial`` blocks) is
  captured once by running the interpreter's own reset, so per-run setup
  is a single list copy.

The program is cached per :class:`Design` *instance*; because
:class:`repro.verilog.compile.CompileCache` shares one immutable design
object per source content hash, instance identity coincides with content
identity in-process — the program cache is effectively content-addressed
alongside ``CompileCache`` without attaching unpicklable closures to the
(disk-persisted) compile results.

Semantics contract: a :class:`CompiledSimulator` produces byte-identical
traces — same snapshots, same error messages at the same points — as the
interpreter on every supported design.  Constructs the lowerer does not
handle raise :class:`UnsupportedDesign` at compile time and
:func:`make_simulator` silently falls back to the interpreter, so the
contract holds by construction for the rest.
"""

from __future__ import annotations

import threading
import weakref
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import metrics
from repro.sim.eval import EvalError, Evaluator
from repro.sim.simulator import (
    _MAX_SETTLE_ITERATIONS,
    SimulationError,
    Simulator,
    _base_name,
    _target_name_list,
)
from repro.sim.stimulus import Stimulus, reset_values
from repro.sim.trace import Trace
from repro.sim.values import FourState
from repro.verilog import ast
from repro.verilog.elaborator import Design, _walk_stmts

SIM_MODES = ("compiled", "interp")

_TRUE = FourState.from_bool(True)
_FALSE = FourState.from_bool(False)
_X1 = FourState.unknown(1)


class UnsupportedDesign(Exception):
    """The lowerer cannot compile this design; use the interpreter."""


# Signature conventions (all closures are built once per design):
#   expr closure:  fn(env)               -> FourState   (env: List[FourState])
#   stmt closure:  fn(scratch, nba)      -> None
#   writer:        fn(scratch, nba, value) -> None
#   comb step:     fn(env)               -> bool (changed)
#   seq step:      fn(env, nba)          -> None
ExprFn = Callable[[List[FourState]], FourState]


class _Lowerer:
    """One-shot compiler from an elaborated design to closures."""

    def __init__(self, design: Design):
        self.design = design
        self.params = design.params
        self.names: Tuple[str, ...] = tuple(design.symbols)
        self.slots: Dict[str, int] = {name: i for i, name in enumerate(self.names)}
        self.widths: Tuple[int, ...] = tuple(
            sym.width for sym in design.symbols.values())

    # -- expressions -------------------------------------------------------

    def _fold(self, fn: ExprFn, is_const: bool) -> Tuple[ExprFn, bool]:
        """Evaluate a closed expression once at compile time.

        Anything the evaluation raises (EvalError, arithmetic errors) keeps
        the closure dynamic so the error surfaces at run time exactly where
        the interpreter would raise it.
        """
        if not is_const:
            return fn, False
        try:
            value = fn(None)
        except Exception:
            return fn, False
        return (lambda env: value), True

    @staticmethod
    def _raiser(exc_type, message: str) -> ExprFn:
        def fn(env):
            raise exc_type(message)
        return fn

    _UNARY_METHODS = {
        "~": FourState.bit_not, "!": FourState.log_not,
        "-": FourState.negate, "&": FourState.reduce_and,
        "|": FourState.reduce_or, "^": FourState.reduce_xor,
    }

    def _lower_ident(self, expr: ast.Ident) -> Tuple[ExprFn, bool]:
        """Overridable binding: subclasses redefine what ``env`` is.

        The SVA property lowerer (:mod:`repro.sva.monitor`) reuses every
        operator combinator above a trace-backed environment by replacing
        only this method and :meth:`_lower_syscall`.
        """
        name = expr.name
        if name in self.params:
            value = FourState(32, self.params[name] & 0xFFFFFFFF)
            return (lambda env: value), True
        slot = self.slots.get(name)
        if slot is None:
            return self._raiser(EvalError, f"no such signal '{name}'"), False
        return (lambda env: env[slot]), False

    def _lower_expr(self, expr: ast.Expr) -> Tuple[ExprFn, bool]:
        t = type(expr)
        if t is ast.Number:
            width = expr.width or 32
            value = FourState(width, expr.value, expr.xmask)
            return (lambda env: value), True
        if t is ast.Ident:
            return self._lower_ident(expr)
        if t is ast.Unary:
            operand, const = self._lower_expr(expr.operand)
            op = expr.op
            if op == "+":
                return operand, const
            # 1-bit-result operators return the three shared singletons
            # instead of allocating: same canonical values, zero garbage.
            if op == "!":
                def log_not(env):
                    v = operand(env)
                    if v.value != 0:
                        return _FALSE
                    if v.xmask == 0:
                        return _TRUE
                    return _X1
                return self._fold(log_not, const)
            if op == "&":
                def reduce_and(env):
                    v = operand(env)
                    if (v.value | v.xmask) != (1 << v.width) - 1:
                        return _FALSE
                    if v.xmask:
                        return _X1
                    return _TRUE
                return self._fold(reduce_and, const)
            if op == "|":
                def reduce_or(env):
                    v = operand(env)
                    if v.value:
                        return _TRUE
                    if v.xmask:
                        return _X1
                    return _FALSE
                return self._fold(reduce_or, const)
            if op == "^":
                def reduce_xor(env):
                    v = operand(env)
                    if v.xmask:
                        return _X1
                    return _TRUE if bin(v.value).count("1") & 1 else _FALSE
                return self._fold(reduce_xor, const)
            method = self._UNARY_METHODS.get(op)
            if method is None:
                return self._raiser(
                    EvalError, f"unknown unary operator {op!r}"), False
            return self._fold(lambda env: method(operand(env)), const)
        if t is ast.Binary:
            return self._lower_binary(expr)
        if t is ast.Ternary:
            cond, cc = self._lower_expr(expr.cond)
            then, tc = self._lower_expr(expr.then)
            other, oc = self._lower_expr(expr.other)

            def ternary(env):
                select = cond(env)
                if select.is_true():
                    return then(env)
                if select.is_false():
                    return other(env)
                # Unknown select: merge to X where the branches differ.
                a, b = then(env), other(env)
                width = max(a.width, b.width)
                a, b = a.resize(width), b.resize(width)
                differ = (a.value ^ b.value) | a.xmask | b.xmask
                return FourState(width, a.value, differ)

            return self._fold(ternary, cc and tc and oc)
        if t is ast.BitSelect:
            base, bc = self._lower_expr(expr.base)
            index, ic = self._lower_expr(expr.index)

            def bitselect(env):
                value = base(env)
                at = index(env)
                if at.has_x:
                    return _X1
                i = at.value
                if i >= value.width or (value.xmask >> i) & 1:
                    return _X1
                return _TRUE if (value.value >> i) & 1 else _FALSE

            return self._fold(bitselect, bc and ic)
        if t is ast.PartSelect:
            base, bc = self._lower_expr(expr.base)
            msb, mc = self._lower_expr(expr.msb)
            lsb, lc = self._lower_expr(expr.lsb)

            def partselect(env):
                value = base(env)
                hi, lo = msb(env), lsb(env)
                if hi.has_x or lo.has_x:
                    return FourState.unknown(
                        max(1, abs(hi.value - lo.value) + 1))
                return value.slice(hi.value, lo.value)

            return self._fold(partselect, bc and mc and lc)
        if t is ast.Concat:
            if not expr.parts:
                return self._raiser(EvalError, "empty concatenation"), False
            parts = [self._lower_expr(part) for part in expr.parts]
            fns = tuple(fn for fn, _ in parts)
            if len(fns) == 1:
                return parts[0]

            def concat(env):
                out = fns[0](env)
                for fn in fns[1:]:
                    out = out.concat(fn(env))
                return out

            return self._fold(concat, all(c for _, c in parts))
        if t is ast.Repeat:
            count, cc = self._lower_expr(expr.count)
            value, vc = self._lower_expr(expr.value)

            def repeat(env):
                times = count(env)
                if times.has_x:
                    raise EvalError("replication count is unknown")
                return value(env).repeat(max(times.value, 1))

            return self._fold(repeat, cc and vc)
        if t is ast.SysCall:
            return self._lower_syscall(expr)
        return self._raiser(
            EvalError, f"cannot evaluate {type(expr).__name__}"), False

    _CMP_OPS = {"<": int.__lt__, "<=": int.__le__,
                ">": int.__gt__, ">=": int.__ge__}

    def _lower_binary(self, expr: ast.Binary) -> Tuple[ExprFn, bool]:
        lhs, lc = self._lower_expr(expr.lhs)
        rhs, rc = self._lower_expr(expr.rhs)
        op = expr.op
        # 1-bit-result operators are inlined against FourState's canonical
        # representation (value bits are zero wherever xmask is set) and
        # return the shared singletons — the hottest allocation sites in
        # compiled programs.  Verdicts are identical to the interpreter's
        # eq/ne/case_eq/_cmp/log_and/log_or methods.
        if op in ("~^", "^~"):
            fn = lambda env: lhs(env).bit_xor(rhs(env)).bit_not()
        elif op in ("==", "!="):
            when_eq, when_ne = (_TRUE, _FALSE) if op == "==" else (_FALSE, _TRUE)

            def fn(env):
                a = lhs(env)
                b = rhs(env)
                if a.width != b.width:
                    w = a.width if a.width > b.width else b.width
                    a = a.resize(w)
                    b = b.resize(w)
                x = a.xmask | b.xmask
                if x:
                    if (a.value ^ b.value) & ~x:
                        return when_ne
                    return _X1
                return when_eq if a.value == b.value else when_ne
        elif op in ("===", "!=="):
            when_eq, when_ne = (_TRUE, _FALSE) if op == "===" else (_FALSE, _TRUE)

            def fn(env):
                a = lhs(env)
                b = rhs(env)
                if a.width != b.width:
                    w = a.width if a.width > b.width else b.width
                    a = a.resize(w)
                    b = b.resize(w)
                if a.value == b.value and a.xmask == b.xmask:
                    return when_eq
                return when_ne
        elif op in self._CMP_OPS:
            cmp = self._CMP_OPS[op]

            def fn(env):
                a = lhs(env)
                b = rhs(env)
                if a.xmask or b.xmask:
                    return _X1
                return _TRUE if cmp(a.value, b.value) else _FALSE
        elif op == "&&":
            def fn(env):
                a = lhs(env)
                b = rhs(env)
                if ((a.value == 0 and a.xmask == 0)
                        or (b.value == 0 and b.xmask == 0)):
                    return _FALSE
                if a.value != 0 and b.value != 0:
                    return _TRUE
                return _X1
        elif op == "||":
            def fn(env):
                a = lhs(env)
                b = rhs(env)
                if a.value != 0 or b.value != 0:
                    return _TRUE
                if a.xmask == 0 and b.xmask == 0:
                    return _FALSE
                return _X1
        else:
            name = Evaluator._BINARY_DISPATCH.get(op)
            if name is None:
                return self._raiser(
                    EvalError, f"unknown binary operator {op!r}"), False
            method = getattr(FourState, name)
            fn = lambda env: method(lhs(env), rhs(env))
        return self._fold(fn, lc and rc)

    def _lower_syscall(self, expr: ast.SysCall) -> Tuple[ExprFn, bool]:
        name = expr.name
        if name in ("$countones", "$onehot", "$onehot0", "$signed",
                    "$unsigned"):
            if not expr.args:
                raise UnsupportedDesign(f"{name} with no arguments")
            arg, const = self._lower_expr(expr.args[0])
            if name == "$countones":
                return self._fold(lambda env: arg(env).count_ones(), const)
            if name in ("$signed", "$unsigned"):
                return arg, const
            exact = name == "$onehot"

            def onehot(env):
                value = arg(env)
                if value.has_x:
                    return _X1
                ones = bin(value.value).count("1")
                if exact:
                    return _TRUE if ones == 1 else _FALSE
                return _TRUE if ones <= 1 else _FALSE

            return self._fold(onehot, const)
        # The RTL context has no sys_hook; temporal functions only exist in
        # the property monitor, which keeps using the interpreter.
        return self._raiser(
            EvalError,
            f"system function {name} not available in this context"), False

    # -- assignment targets ------------------------------------------------

    def _lower_write(self, target: ast.Expr, blocking: bool):
        """Build ``write(scratch, nba, value)``.

        Blocking writes land in ``scratch`` (and read-modify-writes read
        it); non-blocking writes land in ``nba`` with current values read
        from ``nba`` first, then ``scratch`` — mirroring the interpreter's
        ``sink``/``base_env`` pair.
        """
        t = type(target)
        if t is ast.Ident:
            sym = self.design.symbols.get(target.name)
            if sym is None:
                message = f"write to unknown signal '{target.name}'"

                def bad_write(scratch, nba, value):
                    raise SimulationError(message)
                return bad_write
            slot = self.slots[target.name]
            width = sym.width
            if blocking:
                def write(scratch, nba, value):
                    scratch[slot] = value.resize(width)
            else:
                def write(scratch, nba, value):
                    nba[slot] = value.resize(width)
            return write
        if t in (ast.BitSelect, ast.PartSelect):
            try:
                name = _base_name(target)
            except SimulationError as exc:
                message = str(exc)

                def bad_write(scratch, nba, value):
                    raise SimulationError(message)
                return bad_write
            sym = self.design.symbols.get(name)
            if sym is None:
                raise UnsupportedDesign(
                    f"select write to undeclared signal '{name}'")
            slot = self.slots[name]
            width = sym.width
            unknown = FourState.unknown(width)
            if t is ast.BitSelect:
                index, _ = self._lower_expr(target.index)
                if blocking:
                    def write(scratch, nba, value):
                        at = index(scratch)
                        current = scratch[slot]
                        if at.has_x:
                            scratch[slot] = unknown
                        else:
                            scratch[slot] = current.replace_slice(
                                at.value, at.value, value.resize(1))
                else:
                    def write(scratch, nba, value):
                        at = index(scratch)
                        current = nba.get(slot)
                        if current is None:
                            current = scratch[slot]
                        if at.has_x:
                            nba[slot] = unknown
                        else:
                            nba[slot] = current.replace_slice(
                                at.value, at.value, value.resize(1))
                return write
            msb, _ = self._lower_expr(target.msb)
            lsb, _ = self._lower_expr(target.lsb)
            if blocking:
                def write(scratch, nba, value):
                    hi, lo = msb(scratch), lsb(scratch)
                    current = scratch[slot]
                    if hi.has_x or lo.has_x:
                        scratch[slot] = unknown
                    else:
                        span = abs(hi.value - lo.value) + 1
                        scratch[slot] = current.replace_slice(
                            hi.value, lo.value, value.resize(span))
            else:
                def write(scratch, nba, value):
                    hi, lo = msb(scratch), lsb(scratch)
                    current = nba.get(slot)
                    if current is None:
                        current = scratch[slot]
                    if hi.has_x or lo.has_x:
                        nba[slot] = unknown
                    else:
                        span = abs(hi.value - lo.value) + 1
                        nba[slot] = current.replace_slice(
                            hi.value, lo.value, value.resize(span))
            return write
        if t is ast.Concat:
            # {a, b} = value : split from the high end.  Part widths must be
            # compile-time constants (the interpreter evaluates part-select
            # bounds against the live environment; non-constant bounds in a
            # *target* are out of scope for the compiled tier).
            widths = tuple(self._static_target_width(p) for p in target.parts)
            writers = tuple(self._lower_write(p, blocking)
                            for p in target.parts)

            def write(scratch, nba, value):
                offset = value.width
                for part_width, part_write in zip(widths, writers):
                    offset -= part_width
                    part_value = value.slice(
                        min(offset + part_width - 1, value.width - 1),
                        max(offset, 0))
                    part_write(scratch, nba, part_value.resize(part_width))
            return write
        message = f"unsupported assignment target {type(target).__name__}"

        def bad_write(scratch, nba, value):
            raise SimulationError(message)
        return bad_write

    def _static_target_width(self, target: ast.Expr) -> int:
        if isinstance(target, ast.Ident):
            sym = self.design.symbols.get(target.name)
            if sym is None:
                raise UnsupportedDesign(
                    f"concat write to undeclared signal '{target.name}'")
            return sym.width
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            msb = self._fold_int(target.msb)
            lsb = self._fold_int(target.lsb)
            if msb is None or lsb is None:
                raise UnsupportedDesign(
                    "non-constant part-select bounds in assignment target")
            return abs(msb - lsb) + 1
        if isinstance(target, ast.Concat):
            return sum(self._static_target_width(p) for p in target.parts)
        raise UnsupportedDesign(
            f"unsupported assignment target {type(target).__name__}")

    def _fold_int(self, expr: ast.Expr) -> Optional[int]:
        fn, const = self._lower_expr(expr)
        if not const:
            return None
        try:
            value = fn(None)
        except Exception:
            return None
        if value.has_x:
            return None
        return value.value

    # -- statements --------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt):
        t = type(stmt)
        if t is ast.Block:
            fns = tuple(self._lower_stmt(child) for child in stmt.stmts)
            if len(fns) == 1:
                return fns[0]

            def block(scratch, nba):
                for fn in fns:
                    fn(scratch, nba)
            return block
        if t is ast.Assignment:
            value, _ = self._lower_expr(stmt.value)
            target = stmt.target
            if type(target) is ast.Ident:
                sym = self.design.symbols.get(target.name)
                if sym is not None:
                    slot = self.slots[target.name]
                    width = sym.width
                    if stmt.blocking:
                        def assign(scratch, nba):
                            scratch[slot] = value(scratch).resize(width)
                    else:
                        def assign(scratch, nba):
                            nba[slot] = value(scratch).resize(width)
                    return assign
            write = self._lower_write(target, stmt.blocking)

            def assign(scratch, nba):
                write(scratch, nba, value(scratch))
            return assign
        if t is ast.If:
            cond, _ = self._lower_expr(stmt.cond)
            then = self._lower_stmt(stmt.then)
            other = self._lower_stmt(stmt.other) if stmt.other is not None \
                else None
            poison = self._poison_entries(stmt)

            if other is None:
                def branch(scratch, nba):
                    select = cond(scratch)
                    if select.is_true():
                        then(scratch, nba)
                    elif select.has_x:
                        for slot, xval in poison:
                            nba[slot] = xval
            else:
                def branch(scratch, nba):
                    select = cond(scratch)
                    if select.is_true():
                        then(scratch, nba)
                    elif select.is_false():
                        other(scratch, nba)
                    elif select.has_x:
                        for slot, xval in poison:
                            nba[slot] = xval
            return branch
        if t is ast.Case:
            return self._lower_case(stmt)
        if t is ast.SysTaskCall:
            def noop(scratch, nba):
                pass  # $display/$finish are inert in the cycle engine.
            return noop
        raise UnsupportedDesign(f"cannot execute {type(stmt).__name__}")

    def _poison_entries(self, stmt: ast.If):
        """(slot, X-constant) pairs for every target of both branches,
        in the interpreter's poisoning order."""
        entries = []
        seen = set()
        branches = [stmt.then] + ([stmt.other] if stmt.other is not None
                                  else [])
        for branch in branches:
            for inner in _walk_stmts(branch):
                if isinstance(inner, ast.Assignment):
                    for name in _target_name_list(inner.target):
                        sym = self.design.symbols.get(name)
                        if sym is not None and name not in seen:
                            seen.add(name)
                            entries.append((self.slots[name],
                                            FourState.unknown(sym.width)))
        return tuple(entries)

    def _lower_case(self, stmt: ast.Case):
        subject, _ = self._lower_expr(stmt.subject)
        wildcard = stmt.kind in ("casez", "casex")
        entries = []
        default = None
        for item in stmt.items:
            if item.is_default:
                default = self._lower_stmt(item.body)
                continue
            labels = tuple(self._lower_expr(label)[0]
                           for label in item.labels)
            entries.append((labels, self._lower_stmt(item.body)))
        entries = tuple(entries)

        def case(scratch, nba):
            value = subject(scratch)
            for labels, body in entries:
                for label in labels:
                    label_value = label(scratch)
                    if wildcard:
                        # Treat x bits in the label as wildcards.
                        care = ~label_value.xmask
                        width = max(value.width, label_value.width)
                        if value.has_x:
                            continue
                        if ((value.value ^ label_value.value)
                                & care & ((1 << width) - 1)) == 0:
                            body(scratch, nba)
                            return
                    else:
                        if value.eq(label_value).is_true():
                            body(scratch, nba)
                            return
            if default is not None:
                default(scratch, nba)
        return case

    # -- combinational / sequential items ----------------------------------

    def _lower_assign_step(self, item, track_changes: bool = True):
        """Continuous assign -> ``step(env) -> changed``.

        ``track_changes=False`` is the acyclic-program variant: the
        single-pass settle ignores the changed flag, so the steps skip
        the old-vs-new value comparison and write unconditionally.
        """
        value, _ = self._lower_expr(item.value)
        target = item.target
        if type(target) is ast.Ident:
            sym = self.design.symbols.get(target.name)
            if sym is not None:
                slot = self.slots[target.name]
                width = sym.width
                if not track_changes:
                    def step(env):
                        env[slot] = value(env).resize(width)
                        return False
                    return step

                def step(env):
                    new = value(env).resize(width)
                    if env[slot] != new:
                        env[slot] = new
                        return True
                    return False
                return step
        write = self._lower_write(target, blocking=False)
        if not track_changes:
            def step(env):
                tmp: Dict[int, FourState] = {}
                write(env, tmp, value(env))
                for slot, new in tmp.items():
                    env[slot] = new
                return False
            return step

        def step(env):
            tmp: Dict[int, FourState] = {}
            write(env, tmp, value(env))
            changed = False
            for slot, new in tmp.items():
                if env[slot] != new:
                    env[slot] = new
                    changed = True
            return changed
        return step

    def _block_target_slots(self, block: ast.AlwaysBlock,
                            state_only: bool) -> Tuple[int, ...]:
        slots = []
        for stmt in _walk_stmts(block.body):
            if isinstance(stmt, ast.Assignment):
                for name in _target_name_list(stmt.target):
                    sym = self.design.symbols.get(name)
                    if sym is None or (state_only and not sym.is_state):
                        continue
                    slots.append(self.slots[name])
        return tuple(slots)

    def _lower_comb_block_step(self, block: ast.AlwaysBlock,
                               track_changes: bool = True):
        body = self._lower_stmt(block.body)
        targets = self._block_target_slots(block, state_only=False)
        if not track_changes:
            def step(env):
                scratch = env[:]
                nba: Dict[int, FourState] = {}
                body(scratch, nba)
                for slot, new in nba.items():
                    scratch[slot] = new
                for slot in targets:
                    env[slot] = scratch[slot]
                return False
            return step

        def step(env):
            scratch = env[:]
            nba: Dict[int, FourState] = {}
            body(scratch, nba)
            # In comb blocks both '=' and '<=' behave combinationally.
            for slot, new in nba.items():
                scratch[slot] = new
            changed = False
            for slot in targets:
                new = scratch[slot]
                if new != env[slot]:
                    env[slot] = new
                    changed = True
            return changed
        return step

    def _lower_seq_block_step(self, block: ast.AlwaysBlock):
        body = self._lower_stmt(block.body)
        # A block with no blocking assignments never writes scratch, so the
        # env copy and the edge-commit sweep would both be no-ops: the body
        # can read env directly.
        if not any(isinstance(stmt, ast.Assignment) and stmt.blocking
                   for stmt in _walk_stmts(block.body)):
            def step(env, nba):
                body(env, nba)
            return step
        # Blocking writes inside clocked blocks also commit at the edge,
        # but only for state-holding signals.
        state_targets = self._block_target_slots(block, state_only=True)

        def step(env, nba):
            scratch = env[:]
            body(scratch, nba)
            for slot in state_targets:
                new = scratch[slot]
                if env[slot] != new and slot not in nba:
                    nba[slot] = new
        return step

    # -- comb scheduling ---------------------------------------------------

    def _expr_reads(self, expr: ast.Expr, out: set) -> None:
        if isinstance(expr, ast.Ident):
            if expr.name not in self.params and expr.name in self.slots:
                out.add(expr.name)
            return
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self._expr_reads(child, out)

    def _target_reads(self, target: ast.Expr, out: set) -> None:
        """Signals a *write* to ``target`` reads: select indices/bounds,
        plus the base itself for read-modify-write slice updates."""
        if isinstance(target, ast.BitSelect):
            self._expr_reads(target.index, out)
            self._target_reads(target.base, out)
            if isinstance(target.base, ast.Ident):
                out.add(target.base.name)
        elif isinstance(target, ast.PartSelect):
            self._expr_reads(target.msb, out)
            self._expr_reads(target.lsb, out)
            self._target_reads(target.base, out)
            if isinstance(target.base, ast.Ident):
                out.add(target.base.name)
        elif isinstance(target, ast.Concat):
            for part in target.parts:
                self._target_reads(part, out)

    def _stmt_reads(self, stmt: ast.Stmt, out: set) -> None:
        for inner in _walk_stmts(stmt):
            if isinstance(inner, ast.Assignment):
                self._expr_reads(inner.value, out)
                self._target_reads(inner.target, out)
            elif isinstance(inner, ast.If):
                self._expr_reads(inner.cond, out)
            elif isinstance(inner, ast.Case):
                self._expr_reads(inner.subject, out)
                for item in inner.items:
                    for label in item.labels:
                        self._expr_reads(label, out)

    def _comb_order(self, items) -> "Tuple[List[int], bool]":
        """Topological evaluation order over ``(reads, writes)`` items.

        Returns ``(order, acyclic)``.  ``acyclic`` means the dependency
        graph — *including* self-edges — is a single-driver DAG, so one
        sweep in ``order`` reaches the fixed point and the settle loop
        can skip its confirmation pass.  Falls back to source order (the
        interpreter's sweep order, which the fixed-point loop makes
        equally correct) when a signal has multiple drivers or the graph
        has a multi-item cycle.
        """
        source_order = list(range(len(items)))
        writer: Dict[str, int] = {}
        for index, (_, writes) in enumerate(items):
            for name in writes:
                if name in writer and writer[name] != index:
                    return source_order, False  # multiple drivers
                writer[name] = index
        dependents: Dict[int, List[int]] = {i: [] for i in source_order}
        indegree = [0] * len(items)
        self_dependent = False
        for index, (reads, _) in enumerate(items):
            for name in reads:
                producer = writer.get(name)
                if producer == index:
                    # Self-edge: ignored for ordering (the fixed-point
                    # loop resolves it), but it voids single-pass settling.
                    self_dependent = True
                elif producer is not None:
                    dependents[producer].append(index)
                    indegree[index] += 1
        ready = sorted(i for i in source_order if indegree[i] == 0)
        order: List[int] = []
        while ready:
            index = ready.pop(0)
            order.append(index)
            changed = False
            for dep in dependents[index]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
                    changed = True
            if changed:
                ready.sort()
        if len(order) != len(items):
            return source_order, False  # combinational cycle
        return order, not self_dependent

    # -- whole design ------------------------------------------------------

    def lower(self) -> "CompiledProgram":
        design = self.design
        comb_items = []  # (reads, writes, lower_step_thunk)
        for item in design.assigns:
            reads: set = set()
            self._expr_reads(item.value, reads)
            self._target_reads(item.target, reads)
            writes = {name for name in _target_name_list(item.target)
                      if name in self.slots}
            comb_items.append(
                (reads, writes,
                 lambda item=item, tc=True: self._lower_assign_step(item, tc)))
        for block in design.comb_blocks:
            reads = set()
            self._stmt_reads(block.body, reads)
            writes = {name for name in self._block_target_names(block)}
            comb_items.append(
                (reads, writes,
                 lambda block=block, tc=True:
                     self._lower_comb_block_step(block, tc)))
        order, acyclic = self._comb_order([(reads, writes)
                                           for reads, writes, _ in comb_items])
        # Acyclic programs settle in one compare-free sweep, so their
        # steps can skip the changed-value bookkeeping entirely.
        comb_steps = tuple(comb_items[index][2](tc=not acyclic)
                           for index in order)
        seq_steps = tuple(self._lower_seq_block_step(block)
                          for block in design.seq_blocks)

        # Reset-time environment: run the interpreter's own reset once
        # (declaration inits + initial blocks) so startup state — and any
        # error it raises — is identical by construction.
        interp = Simulator(design)
        initial_values = tuple(interp.env[name] for name in self.names)

        return CompiledProgram(
            design=design, names=self.names, slots=self.slots,
            widths=self.widths, initial_values=initial_values,
            comb_steps=comb_steps, seq_steps=seq_steps,
            comb_acyclic=acyclic)

    def _block_target_names(self, block: ast.AlwaysBlock):
        names = []
        for stmt in _walk_stmts(block.body):
            if isinstance(stmt, ast.Assignment):
                for name in _target_name_list(stmt.target):
                    if name in self.slots:
                        names.append(name)
        return names


class CompiledProgram:
    """The reusable, immutable result of lowering one design."""

    __slots__ = ("design", "names", "slots", "widths", "initial_values",
                 "comb_steps", "seq_steps", "comb_acyclic", "trace_names",
                 "reset_active_drive", "reset_inactive_drive", "zero_drive",
                 "reset_inputs", "inactive_ints", "drive_cache")

    def __init__(self, design: Design, names, slots, widths, initial_values,
                 comb_steps, seq_steps, comb_acyclic=False):
        self.design = design
        self.names = names
        self.slots = slots
        self.widths = widths
        self.initial_values = initial_values
        self.comb_steps = comb_steps
        self.seq_steps = seq_steps
        self.comb_acyclic = comb_acyclic
        self.trace_names = sorted(design.symbols)
        active = reset_values(design, active=True)
        inactive = reset_values(design, active=False)
        zeros = {s.name: 0 for s in design.free_inputs()}
        self.zero_drive = tuple(
            (slots[name], FourState(widths[slots[name]], value))
            for name, value in zeros.items())
        self.reset_active_drive = tuple(
            (slots[name], FourState(widths[slots[name]], value))
            for name, value in active.items())
        self.reset_inactive_drive = tuple(
            (slots[name], FourState(widths[slots[name]], value))
            for name, value in inactive.items())
        self.reset_inputs = {**zeros, **active}
        self.inactive_ints = inactive
        #: (slot, int) -> FourState memo for stimulus vectors.  Input
        #: values repeat heavily across cycles and stimuli; FourState is
        #: immutable, so sharing instances is free.  Benign data race
        #: under threads (worst case: a duplicate construction).
        self.drive_cache: Dict[Tuple[int, int], FourState] = {}


class CompiledSimulator:
    """Drop-in ``run``/``run_iter`` replacement backed by a compiled program.

    Mirrors :class:`repro.sim.simulator.Simulator` byte for byte: same
    traces, same exceptions, same messages.  One instance is cheap — all
    heavy lifting lives in the shared :class:`CompiledProgram`.
    """

    def __init__(self, program: CompiledProgram):
        self.program = program
        self.design = program.design
        self.values: List[FourState] = list(program.initial_values)
        #: Optional :class:`repro.cov.CoverageSink` — same protocol as the
        #: interpreter's, fed from the slot list instead of a dict.
        self.cov = None

    # -- environment -----------------------------------------------------

    def _drive(self, vector: Dict[str, int]) -> None:
        program = self.program
        slots = program.slots
        cache = program.drive_cache
        values = self.values
        for name, value in vector.items():
            slot = slots.get(name)
            if slot is None:
                raise SimulationError(f"cannot drive unknown input '{name}'")
            key = (slot, value)
            cached = cache.get(key)
            if cached is None:
                cached = cache[key] = FourState(program.widths[slot], value)
            values[slot] = cached

    def _drive_pairs(self, pairs) -> None:
        values = self.values
        for slot, value in pairs:
            values[slot] = value

    # -- cycle engine ----------------------------------------------------

    def settle(self) -> None:
        values = self.values
        steps = self.program.comb_steps
        if self.program.comb_acyclic:
            # Single-driver DAG evaluated in dependency order: one sweep
            # IS the fixed point, so skip the confirmation pass.
            for step in steps:
                step(values)
            return
        for _ in range(_MAX_SETTLE_ITERATIONS):
            changed = False
            for step in steps:
                if step(values):
                    changed = True
            if not changed:
                return
        raise SimulationError(
            f"combinational logic failed to settle within "
            f"{_MAX_SETTLE_ITERATIONS} iterations (loop?)")

    def tick(self) -> None:
        """One clock edge: evaluate sequential blocks, commit, settle."""
        values = self.values
        nba: Dict[int, FourState] = {}
        for step in self.program.seq_steps:
            step(values, nba)
        for slot, value in nba.items():
            values[slot] = value
        self.settle()

    def _snapshot(self) -> Dict[str, FourState]:
        return dict(zip(self.program.names, self.values))

    def run_iter(self, stimulus: Stimulus,
                 trace_signals: Optional[List[str]] = None):
        """Generator twin of :meth:`Simulator.run_iter` (same protocol)."""
        program = self.program
        self.values = list(program.initial_values)
        trace = Trace(trace_signals or program.trace_names)
        # Append through the lists directly: every snapshot/inputs dict
        # below is freshly built, so Trace.append's defensive copy would
        # only duplicate it (the single hottest allocation of a run).
        snapshots = trace.snapshots
        inputs_applied = trace.inputs_applied
        cov = self.cov
        if cov is not None:
            # Lazy hand-off: the sink walks the grown snapshot list at
            # the next begin_run()/report() — nothing per cycle here.
            cov.begin_run(snapshots)
        yield trace

        for _ in range(stimulus.reset_cycles):
            self._drive_pairs(program.zero_drive)
            self._drive_pairs(program.reset_active_drive)
            self.settle()
            snapshots.append(self._snapshot())
            inputs_applied.append(dict(program.reset_inputs))
            yield trace
            self.tick()

        inactive = program.reset_inactive_drive
        for vector in stimulus.vectors:
            self._drive(vector)
            self._drive_pairs(inactive)
            self.settle()
            snapshots.append(self._snapshot())
            inputs_applied.append({**vector, **program.inactive_ints})
            yield trace
            self.tick()

    def run(self, stimulus: Stimulus,
            trace_signals: Optional[List[str]] = None) -> Trace:
        trace = None
        for trace in self.run_iter(stimulus, trace_signals):
            pass
        return trace


# -- program cache / factory --------------------------------------------------

_PROGRAM_LOCK = threading.Lock()
# Design instance -> CompiledProgram | UnsupportedDesign.  CompileCache
# shares one immutable Design per source content hash, so identity keying
# is content keying in-process; weak keys let evicted designs free their
# programs.
_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_COUNTERS: Dict[str, int] = {
    "programs_compiled": 0,
    "program_cache_hits": 0,
    "unsupported_designs": 0,
    "compiled_simulators": 0,
    "interp_simulators": 0,
    "fallback_simulators": 0,
}


def sim_program_counters() -> Dict[str, int]:
    """Metrics provider: program-cache and mode-selection counters."""
    return dict(_COUNTERS)


metrics.register_provider("sim_program", sim_program_counters)


def compile_program(design: Design) -> CompiledProgram:
    """Lower ``design`` (memoized per design instance).

    Raises :class:`UnsupportedDesign` (also memoized) when the design uses
    constructs the lowerer does not handle, and propagates whatever the
    interpreter's own reset would raise (e.g. ``EvalError`` from a bad
    initializer) without caching it.
    """
    with _PROGRAM_LOCK:
        cached = _PROGRAMS.get(design)
    if cached is not None:
        _COUNTERS["program_cache_hits"] += 1
        if isinstance(cached, UnsupportedDesign):
            raise UnsupportedDesign(str(cached))
        return cached
    start = perf_counter()
    try:
        try:
            program = _Lowerer(design).lower()
        except UnsupportedDesign as exc:
            _COUNTERS["unsupported_designs"] += 1
            with _PROGRAM_LOCK:
                _PROGRAMS[design] = exc
            raise
        _COUNTERS["programs_compiled"] += 1
        with _PROGRAM_LOCK:
            _PROGRAMS[design] = program
        return program
    finally:
        metrics.add_time("compile_program", perf_counter() - start)


def make_simulator(design: Design, sim_mode: str = "compiled"):
    """The one place the ``sim_mode`` knob is interpreted.

    ``"compiled"`` returns a :class:`CompiledSimulator` (falling back to
    the interpreter for unsupported designs); ``"interp"`` always returns
    the AST-walking :class:`Simulator`.  Both produce identical traces.
    """
    if sim_mode not in SIM_MODES:
        raise ValueError(
            f"sim_mode must be one of {SIM_MODES}, got {sim_mode!r}")
    if sim_mode == "interp":
        _COUNTERS["interp_simulators"] += 1
        return Simulator(design)
    try:
        program = compile_program(design)
    except UnsupportedDesign:
        _COUNTERS["fallback_simulators"] += 1
        return Simulator(design)
    _COUNTERS["compiled_simulators"] += 1
    return CompiledSimulator(program)
