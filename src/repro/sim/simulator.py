"""The cycle-based simulator.

Execution model per clock cycle:

1. drive inputs (free inputs from the stimulus vector, resets from the
   reset protocol);
2. evaluate every sequential ``always`` block against the *pre-edge*
   environment, collecting non-blocking updates;
3. commit the updates together (classic two-phase NBA semantics);
4. settle combinational logic (continuous assigns + ``always @(*)``) to a
   fixed point;
5. snapshot the environment into the trace.

Uninitialized registers start as X; a proper reset protocol (held active
for ``reset_cycles`` full cycles) drives them to known values, exactly the
discipline the corpus designs follow.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.eval import EvalError, Evaluator
from repro.sim.stimulus import Stimulus, reset_values
from repro.sim.trace import Trace
from repro.sim.values import FourState
from repro.verilog import ast
from repro.verilog.elaborator import Design

_MAX_SETTLE_ITERATIONS = 50


class SimulationError(Exception):
    """Raised for runtime problems (combinational loops, missing drivers)."""


class Simulator:
    """Executes one elaborated design against a stimulus."""

    def __init__(self, design: Design):
        self.design = design
        self.env: Dict[str, FourState] = {}
        #: Optional :class:`repro.cov.CoverageSink`; when attached, every
        #: appended snapshot is also observed for coverage.  Off-path
        #: cost: one None check per cycle.
        self.cov = None
        self._reset_env()

    # -- environment -----------------------------------------------------

    def _reset_env(self) -> None:
        self.env = {}
        for sym in self.design.symbols.values():
            if sym.init is not None:
                value = Evaluator(self._lookup, self.design.params).eval(sym.init)
                self.env[sym.name] = value.resize(sym.width)
            else:
                self.env[sym.name] = FourState.unknown(sym.width)
        for block in self.design.initial_blocks:
            updates: Dict[str, FourState] = {}
            self._exec_stmt(block.body, self.env, updates, blocking_env=self.env)
            self.env.update(updates)

    def _lookup(self, name: str) -> FourState:
        try:
            return self.env[name]
        except KeyError:
            raise EvalError(f"no such signal '{name}'") from None

    def _drive(self, values: Dict[str, int]) -> None:
        for name, value in values.items():
            sym = self.design.symbols.get(name)
            if sym is None:
                raise SimulationError(f"cannot drive unknown input '{name}'")
            self.env[name] = FourState(sym.width, value)

    # -- statement execution ------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt, read_env: Dict[str, FourState],
                   nba_updates: Dict[str, FourState],
                   blocking_env: Dict[str, FourState]) -> None:
        """Execute ``stmt``.

        Reads resolve against ``blocking_env`` (which starts as a copy of the
        pre-edge environment and absorbs blocking writes); non-blocking
        writes go to ``nba_updates`` for a later commit.
        """
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._exec_stmt(child, read_env, nba_updates, blocking_env)
        elif isinstance(stmt, ast.Assignment):
            evaluator = Evaluator(lambda n: self._env_get(blocking_env, n),
                                  self.design.params)
            value = evaluator.eval(stmt.value)
            if stmt.blocking:
                self._write_target(stmt.target, value, blocking_env, evaluator)
            else:
                self._write_target(stmt.target, value, nba_updates, evaluator,
                                   base_env=blocking_env)
        elif isinstance(stmt, ast.If):
            evaluator = Evaluator(lambda n: self._env_get(blocking_env, n),
                                  self.design.params)
            cond = evaluator.eval(stmt.cond)
            if cond.is_true():
                self._exec_stmt(stmt.then, read_env, nba_updates, blocking_env)
            elif stmt.other is not None and cond.is_false():
                self._exec_stmt(stmt.other, read_env, nba_updates, blocking_env)
            elif cond.has_x:
                # Unknown condition: conservatively X-out every target of
                # both branches.
                self._poison_targets(stmt.then, nba_updates, blocking_env)
                if stmt.other is not None:
                    self._poison_targets(stmt.other, nba_updates, blocking_env)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, read_env, nba_updates, blocking_env)
        elif isinstance(stmt, ast.SysTaskCall):
            pass  # $display/$finish are inert in the cycle engine.
        else:
            raise SimulationError(f"cannot execute {type(stmt).__name__}")

    def _exec_case(self, stmt: ast.Case, read_env, nba_updates, blocking_env) -> None:
        evaluator = Evaluator(lambda n: self._env_get(blocking_env, n),
                              self.design.params)
        subject = evaluator.eval(stmt.subject)
        default_item = None
        for item in stmt.items:
            if item.is_default:
                default_item = item
                continue
            for label in item.labels:
                label_value = evaluator.eval(label)
                if stmt.kind in ("casez", "casex"):
                    # Treat x bits in the label as wildcards.
                    care = ~label_value.xmask
                    width = max(subject.width, label_value.width)
                    if subject.has_x:
                        continue
                    if ((subject.value ^ label_value.value)
                            & care & ((1 << width) - 1)) == 0:
                        self._exec_stmt(item.body, read_env, nba_updates,
                                        blocking_env)
                        return
                else:
                    match = subject.eq(label_value)
                    if match.is_true():
                        self._exec_stmt(item.body, read_env, nba_updates,
                                        blocking_env)
                        return
        if default_item is not None:
            self._exec_stmt(default_item.body, read_env, nba_updates, blocking_env)

    def _poison_targets(self, stmt: ast.Stmt, nba_updates, blocking_env) -> None:
        from repro.verilog.elaborator import _walk_stmts
        for inner in _walk_stmts(stmt):
            if isinstance(inner, ast.Assignment):
                for name in _target_name_list(inner.target):
                    sym = self.design.symbols.get(name)
                    if sym is not None:
                        nba_updates[name] = FourState.unknown(sym.width)

    def _env_get(self, env: Dict[str, FourState], name: str) -> FourState:
        if name in env:
            return env[name]
        if name in self.env:
            return self.env[name]
        raise EvalError(f"no such signal '{name}'")

    def _write_target(self, target: ast.Expr, value: FourState,
                      sink: Dict[str, FourState], evaluator: Evaluator,
                      base_env: Optional[Dict[str, FourState]] = None) -> None:
        if isinstance(target, ast.Ident):
            sym = self.design.symbols.get(target.name)
            if sym is None:
                raise SimulationError(f"write to unknown signal '{target.name}'")
            sink[target.name] = value.resize(sym.width)
        elif isinstance(target, ast.BitSelect):
            name = _base_name(target)
            sym = self.design.symbols[name]
            index = evaluator.eval(target.index)
            current = sink.get(name)
            if current is None:
                source = base_env if base_env is not None else sink
                current = self._env_get(source, name)
            if index.has_x:
                sink[name] = FourState.unknown(sym.width)
            else:
                sink[name] = current.replace_slice(index.value, index.value,
                                                   value.resize(1))
        elif isinstance(target, ast.PartSelect):
            name = _base_name(target)
            sym = self.design.symbols[name]
            msb = evaluator.eval(target.msb)
            lsb = evaluator.eval(target.lsb)
            current = sink.get(name)
            if current is None:
                source = base_env if base_env is not None else sink
                current = self._env_get(source, name)
            if msb.has_x or lsb.has_x:
                sink[name] = FourState.unknown(sym.width)
            else:
                span = abs(msb.value - lsb.value) + 1
                sink[name] = current.replace_slice(msb.value, lsb.value,
                                                   value.resize(span))
        elif isinstance(target, ast.Concat):
            # {a, b} = value : split from the high end.
            offset = value.width
            for part in target.parts:
                width = self._target_width(part)
                offset -= width
                part_value = value.slice(min(offset + width - 1, value.width - 1),
                                         max(offset, 0))
                self._write_target(part, part_value.resize(width), sink,
                                   evaluator, base_env)
        else:
            raise SimulationError(
                f"unsupported assignment target {type(target).__name__}")

    def _target_width(self, target: ast.Expr) -> int:
        if isinstance(target, ast.Ident):
            return self.design.symbols[target.name].width
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            msb = Evaluator(self._lookup, self.design.params).eval(target.msb)
            lsb = Evaluator(self._lookup, self.design.params).eval(target.lsb)
            return abs(msb.value - lsb.value) + 1
        if isinstance(target, ast.Concat):
            return sum(self._target_width(p) for p in target.parts)
        raise SimulationError("bad assignment target")

    # -- combinational settling ------------------------------------------------

    def settle(self) -> None:
        for iteration in range(_MAX_SETTLE_ITERATIONS):
            changed = False
            evaluator = Evaluator(self._lookup, self.design.params)
            for item in self.design.assigns:
                value = evaluator.eval(item.value)
                changed |= self._commit_comb(item.target, value, evaluator)
            for block in self.design.comb_blocks:
                scratch = dict(self.env)
                updates: Dict[str, FourState] = {}
                self._exec_stmt(block.body, self.env, updates, blocking_env=scratch)
                # In comb blocks both '=' and '<=' behave combinationally.
                for name, value in updates.items():
                    scratch[name] = value
                for name in self._block_targets(block):
                    if name in scratch and scratch[name] != self.env.get(name):
                        self.env[name] = scratch[name]
                        changed = True
            if not changed:
                return
        raise SimulationError(
            f"combinational logic failed to settle within "
            f"{_MAX_SETTLE_ITERATIONS} iterations (loop?)")

    def _commit_comb(self, target: ast.Expr, value: FourState,
                     evaluator: Evaluator) -> bool:
        scratch: Dict[str, FourState] = {}
        self._write_target(target, value, scratch, evaluator, base_env=self.env)
        changed = False
        for name, new_value in scratch.items():
            if self.env.get(name) != new_value:
                self.env[name] = new_value
                changed = True
        return changed

    def _block_targets(self, block: ast.AlwaysBlock) -> List[str]:
        from repro.verilog.elaborator import _walk_stmts
        names: List[str] = []
        for stmt in _walk_stmts(block.body):
            if isinstance(stmt, ast.Assignment):
                names.extend(_target_name_list(stmt.target))
        return names

    # -- cycle engine --------------------------------------------------------------

    def tick(self) -> None:
        """One clock edge: evaluate sequential blocks, commit, settle."""
        nba_updates: Dict[str, FourState] = {}
        for block in self.design.seq_blocks:
            scratch = dict(self.env)
            self._exec_stmt(block.body, self.env, nba_updates, blocking_env=scratch)
            # Blocking writes inside clocked blocks also commit at the edge.
            for name, value in scratch.items():
                if self.env.get(name) != value and name not in nba_updates:
                    sym = self.design.symbols.get(name)
                    if sym is not None and sym.is_state:
                        nba_updates[name] = value
        self.env.update(nba_updates)
        self.settle()

    def run_iter(self, stimulus: Stimulus,
                 trace_signals: Optional[List[str]] = None):
        """Generator form of :meth:`run`.

        Yields the (shared, growing) :class:`Trace` once before any cycle
        — so callers can hold the trace object — and then once after each
        appended snapshot.  Abandoning the generator mid-run is safe; the
        BMC batch driver uses this to stop simulating a stimulus the
        moment every assertion already has a verdict.
        """
        self._reset_env()
        names = trace_signals or sorted(self.design.symbols)
        trace = Trace(names)
        cov = self.cov
        if cov is not None:
            # Lazy hand-off: the sink walks the grown snapshot list at
            # the next begin_run()/report() — nothing per cycle here.
            cov.begin_run(trace.snapshots)
        yield trace
        active = reset_values(self.design, active=True)
        inactive = reset_values(self.design, active=False)
        zeros = {s.name: 0 for s in self.design.free_inputs()}

        # Each iteration: drive inputs, settle combinational logic, snapshot
        # (this is the SVA preponed view: exactly what the registers read at
        # the coming edge), then clock the edge.
        for _ in range(stimulus.reset_cycles):
            self._drive(zeros)
            self._drive(active)
            self.settle()
            trace.append(self.env, {**zeros, **active})
            yield trace
            self.tick()

        for vector in stimulus.vectors:
            self._drive(vector)
            self._drive(inactive)
            self.settle()
            trace.append(self.env, {**vector, **inactive})
            yield trace
            self.tick()

    def run(self, stimulus: Stimulus, trace_signals: Optional[List[str]] = None) -> Trace:
        """Run the full stimulus and return the trace.

        The trace includes ``reset_cycles`` cycles with the reset active
        followed by one snapshot per stimulus vector.
        """
        trace = None
        for trace in self.run_iter(stimulus, trace_signals):
            pass
        return trace


def _base_name(target: ast.Expr) -> str:
    while isinstance(target, (ast.BitSelect, ast.PartSelect)):
        target = target.base
    if isinstance(target, ast.Ident):
        return target.name
    raise SimulationError("assignment target base is not an identifier")


def _target_name_list(target: ast.Expr) -> List[str]:
    if isinstance(target, ast.Ident):
        return [target.name]
    if isinstance(target, (ast.BitSelect, ast.PartSelect)):
        return _target_name_list(target.base)
    if isinstance(target, ast.Concat):
        names: List[str] = []
        for part in target.parts:
            names.extend(_target_name_list(part))
        return names
    return []
