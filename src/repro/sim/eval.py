"""Expression evaluation over 4-state environments.

Used by three clients with different environments:

- the simulator (current signal values, no temporal functions);
- the SVA monitor (trace-backed environment where ``$past``/``$rose``/
  ``$fell``/``$stable`` are meaningful);
- the bug classifier (structural queries only).

``Evaluator`` resolves identifiers through a lookup callable so each client
supplies its own binding; temporal system functions are delegated to an
optional ``sys_hook``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.values import FourState
from repro.verilog import ast


class EvalError(Exception):
    """Raised when an expression cannot be evaluated (bad node, bad call)."""


SysHook = Callable[[str, list], FourState]


class Evaluator:
    """Evaluate :class:`repro.verilog.ast.Expr` trees to :class:`FourState`.

    Parameters
    ----------
    lookup:
        name -> FourState for signals.
    params:
        name -> int for elaborated parameters (folded to sized constants).
    sys_hook:
        optional handler for system functions; receives the name and the
        *unevaluated* argument list so temporal functions can re-evaluate
        arguments at other cycles.
    """

    def __init__(self, lookup: Callable[[str], FourState],
                 params: Optional[Dict[str, int]] = None,
                 sys_hook: Optional[SysHook] = None):
        self.lookup = lookup
        self.params = params or {}
        self.sys_hook = sys_hook

    def eval(self, expr: ast.Expr) -> FourState:
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise EvalError(f"cannot evaluate {type(expr).__name__}")
        return method(self, expr)

    def eval_bool(self, expr: ast.Expr) -> FourState:
        """Evaluate as a truth value (1-bit, 3-valued)."""
        value = self.eval(expr)
        if value.is_true():
            return FourState.from_bool(True)
        if value.is_false():
            return FourState.from_bool(False)
        return FourState.unknown(1)

    # -- leaves -----------------------------------------------------------

    def _eval_number(self, expr: ast.Number) -> FourState:
        width = expr.width or 32
        return FourState(width, expr.value, expr.xmask)

    def _eval_ident(self, expr: ast.Ident) -> FourState:
        if expr.name in self.params:
            return FourState(32, self.params[expr.name] & 0xFFFFFFFF)
        return self.lookup(expr.name)

    # -- operators ---------------------------------------------------------

    def _eval_unary(self, expr: ast.Unary) -> FourState:
        operand = self.eval(expr.operand)
        op = expr.op
        if op == "~":
            return operand.bit_not()
        if op == "!":
            return operand.log_not()
        if op == "-":
            return operand.negate()
        if op == "+":
            return operand
        if op == "&":
            return operand.reduce_and()
        if op == "|":
            return operand.reduce_or()
        if op == "^":
            return operand.reduce_xor()
        raise EvalError(f"unknown unary operator {op!r}")

    _BINARY_DISPATCH = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "**": "pow",
        "&": "bit_and", "|": "bit_or", "^": "bit_xor",
        "~^": "bit_xor", "^~": "bit_xor",
        "==": "eq", "!=": "ne", "===": "case_eq",
        "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
        "&&": "log_and", "||": "log_or",
        "<<": "shl", ">>": "shr", "<<<": "shl", ">>>": "ashr",
    }

    def _eval_binary(self, expr: ast.Binary) -> FourState:
        lhs = self.eval(expr.lhs)
        rhs = self.eval(expr.rhs)
        op = expr.op
        if op in ("~^", "^~"):
            return lhs.bit_xor(rhs).bit_not()
        if op == "!==":
            result = lhs.case_eq(rhs)
            return FourState.from_bool(not result.is_true())
        if op in ("&&", "||"):
            a = lhs if lhs.width == 1 else self._truth(lhs)
            b = rhs if rhs.width == 1 else self._truth(rhs)
            return a.log_and(b) if op == "&&" else a.log_or(b)
        method = self._BINARY_DISPATCH.get(op)
        if method is None:
            raise EvalError(f"unknown binary operator {op!r}")
        return getattr(lhs, method)(rhs)

    @staticmethod
    def _truth(value: FourState) -> FourState:
        if value.is_true():
            return FourState.from_bool(True)
        if value.is_false():
            return FourState.from_bool(False)
        return FourState.unknown(1)

    def _eval_ternary(self, expr: ast.Ternary) -> FourState:
        cond = self.eval(expr.cond)
        if cond.is_true():
            return self.eval(expr.then)
        if cond.is_false():
            return self.eval(expr.other)
        # Unknown select: widths must agree; merge to X where branches differ.
        then = self.eval(expr.then)
        other = self.eval(expr.other)
        width = max(then.width, other.width)
        then, other = then.resize(width), other.resize(width)
        differ = (then.value ^ other.value) | then.xmask | other.xmask
        return FourState(width, then.value, differ)

    # -- selects / structure -----------------------------------------------

    def _eval_bitselect(self, expr: ast.BitSelect) -> FourState:
        base = self.eval(expr.base)
        index = self.eval(expr.index)
        if index.has_x:
            return FourState.unknown(1)
        return base.bit(index.value)

    def _eval_partselect(self, expr: ast.PartSelect) -> FourState:
        base = self.eval(expr.base)
        msb = self.eval(expr.msb)
        lsb = self.eval(expr.lsb)
        if msb.has_x or lsb.has_x:
            return FourState.unknown(max(1, abs(msb.value - lsb.value) + 1))
        return base.slice(msb.value, lsb.value)

    def _eval_concat(self, expr: ast.Concat) -> FourState:
        out = None
        for part in expr.parts:
            value = self.eval(part)
            out = value if out is None else out.concat(value)
        if out is None:
            raise EvalError("empty concatenation")
        return out

    def _eval_repeat(self, expr: ast.Repeat) -> FourState:
        count = self.eval(expr.count)
        if count.has_x:
            raise EvalError("replication count is unknown")
        return self.eval(expr.value).repeat(max(count.value, 1))

    def _eval_syscall(self, expr: ast.SysCall) -> FourState:
        name = expr.name
        if name == "$countones":
            return self.eval(expr.args[0]).count_ones()
        if name == "$onehot":
            value = self.eval(expr.args[0])
            if value.has_x:
                return FourState.unknown(1)
            return FourState.from_bool(bin(value.value).count("1") == 1)
        if name == "$onehot0":
            value = self.eval(expr.args[0])
            if value.has_x:
                return FourState.unknown(1)
            return FourState.from_bool(bin(value.value).count("1") <= 1)
        if name in ("$signed", "$unsigned"):
            return self.eval(expr.args[0])
        if self.sys_hook is not None:
            return self.sys_hook(name, expr.args)
        raise EvalError(f"system function {name} not available in this context")


# Class-level dispatch: exact node type -> unbound method.  Built once at
# import instead of string-formatting a method name per eval() call (which
# profiled as the hottest line of the whole interpreter).  Exact-type match
# preserves the old getattr semantics: subclasses would have dispatched by
# their own (missing) name and raised, and they still do.
_DISPATCH = {
    ast.Number: Evaluator._eval_number,
    ast.Ident: Evaluator._eval_ident,
    ast.Unary: Evaluator._eval_unary,
    ast.Binary: Evaluator._eval_binary,
    ast.Ternary: Evaluator._eval_ternary,
    ast.BitSelect: Evaluator._eval_bitselect,
    ast.PartSelect: Evaluator._eval_partselect,
    ast.Concat: Evaluator._eval_concat,
    ast.Repeat: Evaluator._eval_repeat,
    ast.SysCall: Evaluator._eval_syscall,
}
