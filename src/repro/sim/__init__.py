"""Cycle-based RTL simulation substrate.

This package executes elaborated designs (:class:`repro.verilog.elaborator.Design`)
one clock cycle at a time, with Verilog scheduling semantics reduced to the
cycle-accurate core that synthesizable RTL needs:

- non-blocking assignments in clocked blocks read pre-edge values and commit
  together after the edge;
- continuous assignments and combinational blocks settle to a fixed point
  after every commit;
- values are 4-state (:class:`repro.sim.values.FourState`), with X produced
  by uninitialized registers and propagated pessimistically.

Asynchronous resets are exercised level-style: the stimulus holds the reset
active for whole cycles, which on a cycle-based engine is equivalent to the
event-driven behaviour for the reset protocols our corpus uses (documented
substitution: we do not model sub-cycle glitches).
"""

from repro.sim.compiled import (
    SIM_MODES,
    CompiledProgram,
    CompiledSimulator,
    UnsupportedDesign,
    compile_program,
    make_simulator,
)
from repro.sim.simulator import SimulationError, Simulator
from repro.sim.stimulus import Stimulus, reset_sequence
from repro.sim.trace import Trace
from repro.sim.values import FourState

__all__ = [
    "Simulator",
    "SimulationError",
    "SIM_MODES",
    "CompiledProgram",
    "CompiledSimulator",
    "UnsupportedDesign",
    "compile_program",
    "make_simulator",
    "Stimulus",
    "reset_sequence",
    "Trace",
    "FourState",
]
