"""Bug injection: golden design -> buggy variant + golden solution record.

The injector applies one random mutation, re-emits canonical source and
derives the golden solution by diffing the two texts.  Candidates whose
edit does not change exactly one line are discarded (the paper's answers
are judged per buggy line, so multi-line edits would have no well-defined
golden record).

Mutations are *not* compile-filtered here — the datagen Stage 2 does that
with the compiler, as in the paper ("we employed the compiler again to
identify and eliminate syntax errors introduced during the random bug
generation process").  ``BugInjector.inject`` optionally emits a share of
deliberately ill-formed mutations to keep that filter exercised.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.bugs.classify import classify_conditionality
from repro.bugs.mutators import MutationCandidate, mutated_copy
from repro.bugs.taxonomy import BugKind, Conditionality
from repro.verilog import ast
from repro.verilog.parser import parse_module
from repro.verilog.writer import write_module


class BugRecord:
    """A buggy variant plus everything needed to judge a repair.

    Attributes
    ----------
    buggy_source / golden_source: canonical texts.
    line:        1-based buggy line number in ``buggy_source``.
    buggy_line / fixed_line: stripped text of the differing line.
    op_name:     mutation operator family.
    kind:        Table-I structural kind (Var / Value / Op).
    conditionality: Cond / Non_cond (relation needs the assertion and is
                 attached later, in Stage 2).
    """

    __slots__ = ("design_name", "buggy_source", "golden_source", "line",
                 "buggy_line", "fixed_line", "op_name", "kind",
                 "conditionality", "description")

    def __init__(self, design_name: str, buggy_source: str, golden_source: str,
                 line: int, buggy_line: str, fixed_line: str, op_name: str,
                 kind: BugKind, conditionality: Conditionality,
                 description: str):
        self.design_name = design_name
        self.buggy_source = buggy_source
        self.golden_source = golden_source
        self.line = line
        self.buggy_line = buggy_line
        self.fixed_line = fixed_line
        self.op_name = op_name
        self.kind = kind
        self.conditionality = conditionality
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BugRecord({self.design_name}:{self.line} "
                f"{self.op_name} [{self.kind}] "
                f"{self.buggy_line!r} <- {self.fixed_line!r})")


def single_line_diff(golden: str, buggy: str) -> Optional[int]:
    """1-based line number of the single differing line, or None."""
    golden_lines = golden.splitlines()
    buggy_lines = buggy.splitlines()
    if len(golden_lines) != len(buggy_lines):
        return None
    diffs = [i for i, (g, b) in enumerate(zip(golden_lines, buggy_lines))
             if g != b]
    if len(diffs) != 1:
        return None
    return diffs[0] + 1


# Mutation-family weights.  Chosen so the *kind* marginals of the injected
# population track the paper's Table II (Value ~65%, Op ~29%, Var ~7% of
# SVA-Bug entries): the family is drawn first, then a candidate within it.
_KIND_WEIGHTS = {BugKind.VALUE: 0.64, BugKind.OP: 0.29, BugKind.VAR: 0.07}


class BugInjector:
    """Seeded generator of buggy variants."""

    def __init__(self, rng: Optional[random.Random] = None,
                 max_attempts: int = 25):
        self.rng = rng or random.Random(0)
        self.max_attempts = max_attempts

    def _pick(self, candidates: List[MutationCandidate]
              ) -> Optional[MutationCandidate]:
        by_kind = {}
        for candidate in candidates:
            if candidate.repair_only:
                # Repair-only operators widen the fix space, not the fault
                # space: injecting them would create bugs with no in-space
                # golden fix.
                continue
            by_kind.setdefault(candidate.kind, []).append(candidate)
        if not by_kind:
            return None
        kinds = list(by_kind)
        weights = [_KIND_WEIGHTS[k] for k in kinds]
        kind = self.rng.choices(kinds, weights=weights)[0]
        return self.rng.choice(by_kind[kind])

    def inject(self, golden_source: str,
               design_name: str = "") -> Optional[BugRecord]:
        """One random single-line bug, or None when no candidate applies."""
        module = parse_module(golden_source)
        canonical = write_module(module)
        for _ in range(self.max_attempts):
            clone, candidate = mutated_copy(module, self._pick)
            if clone is None or candidate is None:
                return None
            buggy = write_module(clone)
            line = single_line_diff(canonical, buggy)
            if line is None:
                continue
            return self._record(design_name or module.name, canonical, buggy,
                                line, candidate, clone)
        return None

    def inject_many(self, golden_source: str, count: int,
                    design_name: str = "") -> List[BugRecord]:
        """Up to ``count`` *distinct* buggy variants of one design."""
        records: List[BugRecord] = []
        seen = set()
        attempts = 0
        while len(records) < count and attempts < count * self.max_attempts:
            attempts += 1
            record = self.inject(golden_source, design_name)
            if record is None:
                break
            key = (record.line, record.buggy_line)
            if key in seen:
                continue
            seen.add(key)
            records.append(record)
        return records

    def _record(self, design_name: str, canonical: str, buggy: str, line: int,
                candidate: MutationCandidate,
                buggy_module: ast.Module) -> BugRecord:
        buggy_lines = buggy.splitlines()
        golden_lines = canonical.splitlines()
        conditionality = classify_conditionality(buggy_module, candidate.line)
        # The mutated AST node's line refers to the original module's
        # numbering; the diff line in the canonical emission is
        # authoritative for the record.
        return BugRecord(
            design_name=design_name,
            buggy_source=buggy,
            golden_source=canonical,
            line=line,
            buggy_line=buggy_lines[line - 1].strip(),
            fixed_line=golden_lines[line - 1].strip(),
            op_name=candidate.op_name,
            kind=candidate.kind,
            conditionality=conditionality,
            description=candidate.description,
        )
