"""Bug taxonomy and mutation engine (Table I of the paper).

The paper classifies assertion-failure bugs along three orthogonal axes:

- **kind**: Var (wrong identifier), Value (wrong constant/width),
  Op (wrong operator) — the structural nature of the mutation;
- **conditionality**: Cond (inside a conditional construct) vs Non_cond;
- **relation**: Direct (the signal assigned on the buggy line appears in
  the failing assertion) vs Indirect.

:mod:`repro.bugs.mutators` generates single-line AST mutations whose
*inverse is also a generatable mutation* — the repair candidate space used
by the models (:mod:`repro.model.candidates`) is therefore exactly the
fault model, mirroring how the paper's fine-tuned LLM learns the inverse of
the bug distribution it was trained on.
"""

from repro.bugs.injector import BugInjector, BugRecord
from repro.bugs.mutators import MutationCandidate, enumerate_mutations
from repro.bugs.taxonomy import (
    TABLE1_ROWS,
    BugKind,
    Conditionality,
    Relation,
)

__all__ = [
    "BugKind",
    "Conditionality",
    "Relation",
    "TABLE1_ROWS",
    "BugInjector",
    "BugRecord",
    "MutationCandidate",
    "enumerate_mutations",
]
