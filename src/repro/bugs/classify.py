"""Classification of injected bugs along the Table I axes.

Kind comes from the mutation operator itself; conditionality and relation
are derived structurally from the buggy module:

- **Cond** when the mutated text participates in a conditional construct
  (an ``if`` condition, a ``case`` subject/label, or a ternary select);
- **Direct** when a signal *driven* by the mutated line (the assignment
  target, or any target gated by the mutated condition) appears in the
  failing assertion's expression.
"""

from __future__ import annotations

from typing import List, Set

from repro.bugs.taxonomy import Conditionality, Relation
from repro.verilog import ast


def _stmts_with_lines(module: ast.Module):
    """Yield (stmt_or_item, is_condition_context) reachable statements."""
    for item in module.items:
        if isinstance(item, ast.ContinuousAssign):
            yield item
        elif isinstance(item, ast.AlwaysBlock):
            yield from _walk(item.body)


def _walk(stmt: ast.Stmt):
    yield stmt
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _walk(child)
    elif isinstance(stmt, ast.If):
        yield from _walk(stmt.then)
        if stmt.other is not None:
            yield from _walk(stmt.other)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            yield from _walk(item.body)


def _expr_lines(expr: ast.Expr) -> Set[int]:
    return {n.line for n in ast.walk(expr)}


def classify_conditionality(module: ast.Module, line: int) -> Conditionality:
    """Cond iff the buggy line's mutation sits in a condition context."""
    for node in _stmts_with_lines(module):
        if isinstance(node, ast.If) and line in _expr_lines(node.cond):
            return Conditionality.COND
        if isinstance(node, ast.Case):
            if line in _expr_lines(node.subject):
                return Conditionality.COND
            for item in node.items:
                for label in item.labels:
                    if line in _expr_lines(label):
                        return Conditionality.COND
        if isinstance(node, ast.Assignment) and node.line == line:
            if isinstance(node.value, ast.Ternary) \
                    and line in _expr_lines(node.value.cond):
                # Mutation inside a ternary select counts as conditional
                # only when the select itself was the mutated site; the
                # caller resolves that via the op name when needed.
                pass
    return Conditionality.NON_COND


def targets_of_line(module: ast.Module, line: int) -> List[str]:
    """Signals driven by the statement on ``line``.

    For a plain assignment: its target.  For an ``if``/``case`` header
    line: every target assigned anywhere under that construct (the signals
    whose update the condition gates).
    """
    targets: List[str] = []
    for node in _stmts_with_lines(module):
        if isinstance(node, ast.ContinuousAssign) and node.line == line:
            targets.extend(_target_names(node.target))
        elif isinstance(node, ast.Assignment) and node.line == line:
            targets.extend(_target_names(node.target))
        elif isinstance(node, ast.If) and line in _expr_lines(node.cond):
            for inner in _walk(node):
                if isinstance(inner, ast.Assignment):
                    targets.extend(_target_names(inner.target))
        elif isinstance(node, ast.Case) and line in _expr_lines(node.subject):
            for inner in _walk(node):
                if isinstance(inner, ast.Assignment):
                    targets.extend(_target_names(inner.target))
    seen = set()
    unique = []
    for name in targets:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return unique


def classify_relation(module: ast.Module, line: int,
                      assertion_signals: List[str]) -> Relation:
    """Direct iff a driven signal of the buggy line appears in the
    assertion expression."""
    driven = set(targets_of_line(module, line))
    if driven & set(assertion_signals):
        return Relation.DIRECT
    return Relation.INDIRECT


def _target_names(target: ast.Expr) -> List[str]:
    if isinstance(target, ast.Ident):
        return [target.name]
    if isinstance(target, (ast.BitSelect, ast.PartSelect)):
        return _target_names(target.base)
    if isinstance(target, ast.Concat):
        names: List[str] = []
        for part in target.parts:
            names.extend(_target_names(part))
        return names
    return []


def assertion_expr_signals(module: ast.Module, label: str) -> List[str]:
    """Identifiers appearing in the property referenced by assertion
    ``label`` (clock and disable-iff excluded: they are framing, not the
    protected expression)."""
    props = {p.name: p for p in module.properties()}
    for item in module.assertions():
        if item.label != label and item.label != f"{label}_assertion":
            continue
        prop = item.inline or props.get(item.property_name or "")
        if prop is None:
            return []
        names = [n.name for n in ast.walk(prop.body) if isinstance(n, ast.Ident)]
        seen: Set[str] = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique
    return []
