"""The paper's Table I bug taxonomy.

Three orthogonal labels per bug; Table II of the paper reports marginal
counts over (Direct, Indirect), (Var, Value, Op) and (Cond, Non_cond),
which is why those seven names coexist in one table.
"""

from __future__ import annotations

import enum


class BugKind(enum.Enum):
    """Structural nature of the mutation (Var / Value / Op rows)."""

    VAR = "Var"
    VALUE = "Value"
    OP = "Op"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


class Conditionality(enum.Enum):
    """Cond / Non_cond rows: is the buggy text part of a conditional?"""

    COND = "Cond"
    NON_COND = "Non_cond"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


class Relation(enum.Enum):
    """Direct / Indirect rows: does the signal assigned (or gated) by the
    buggy line appear in the failing assertion's expression?"""

    DIRECT = "Direct"
    INDIRECT = "Indirect"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


# The paper's Table I, row for row: (type, description, expected form,
# unexpected form, assertion).  Regenerated verbatim by the Table I bench.
TABLE1_ROWS = [
    ("Direct",
     "Bug signal appears directly in the assertion.",
     "out <= in;", "out <= in + 1;", "assert(out == in)"),
    ("Indirect",
     "Bug signal does not appear directly in the assertion.",
     "temp <= in; out <= temp;", "temp <= in + 1; out <= temp;",
     "assert(out == in)"),
    ("Var",
     "Incorrect variable name or type.",
     "out = in;", "out = input_data;", "-"),
    ("Value",
     "Incorrect variable values, constants, or signal bit widths.",
     "out = 4'b1010;", "out = 4'b1110;", "-"),
    ("Op",
     "Misuse of operators.",
     "out = a | b;", "out = a & b;", "-"),
    ("Cond",
     "Bug in conditional statement (e.g., if, always).",
     "if (valid) out <= in;", "if (!valid) out <= in;", "-"),
    ("Non_cond",
     "Bug unrelated to conditional statements.",
     "if (valid) out <= in;", "if (valid) out <= input_data;", "-"),
]

# Bucket keys in the order the paper's figures present them.
BUG_TYPE_ORDER = ["Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond"]

# The paper's five code-length bins.
LENGTH_BINS = [(0, 50), (50, 100), (100, 150), (150, 200), (200, None)]


def length_bin_label(bin_pair) -> str:
    low, high = bin_pair
    if high is None:
        return f"({low}, +inf)"
    return f"({low}, {high}]"


def length_bin_of(line_count: int):
    """Map a line count to its Table II bin."""
    for low, high in LENGTH_BINS:
        if high is None or line_count <= high:
            if line_count > low:
                return (low, high)
    return LENGTH_BINS[-1]
