"""Single-line AST mutation operators.

Each operator family is closed under inversion: for every mutation it can
produce, the inverse edit is also in the enumeration.  This gives the
reproduction a clean correspondence between the *fault model* (what the
Claude-3.5 surrogate injects) and the *repair space* (what the models
search over) — see :mod:`repro.model.candidates`.

Operators and their Table-I kinds:

- ``op_swap`` (Op): binary operator replaced by a peer from its group.
- ``negate_cond`` (Op): logical negation added/removed on a 1-bit context.
- ``const_nudge`` (Value): literal value +/-1.
- ``const_bitflip`` (Value): one bit of a literal flipped.
- ``ident_swap`` (Var): identifier replaced by another in-scope signal.
- ``ternary_swap`` (Op): ternary arms exchanged.
"""

from __future__ import annotations

import copy
import random
from typing import Callable, Iterator, List, Optional, Set

from repro.bugs.taxonomy import BugKind
from repro.verilog import ast

# Operator swap groups.  Within a group every member maps to every other,
# so the relation is symmetric (inverse swaps are enumerated too).
_OP_GROUPS = [
    ["+", "-"],
    ["&", "|", "^"],
    ["&&", "||"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
]
_OP_PEERS = {}
for _group in _OP_GROUPS:
    for _op in _group:
        _OP_PEERS[_op] = [p for p in _group if p != _op]


class MutationCandidate:
    """One applicable single-node edit.

    ``apply`` performs the edit in place on the (copied) module the
    candidate was enumerated from; ``revert`` undoes it, which lets the
    repair-candidate enumerator reuse one module copy for the whole
    candidate set instead of deep-copying per candidate.
    """

    __slots__ = ("op_name", "kind", "line", "description", "_apply",
                 "_revert", "repair_only")

    def __init__(self, op_name: str, kind: BugKind, line: int,
                 description: str, apply_fn: Callable[[], None],
                 revert_fn: Callable[[], None], repair_only: bool = False):
        self.op_name = op_name
        self.kind = kind
        self.line = line
        self.description = description
        self._apply = apply_fn
        self._revert = revert_fn
        # repair_only candidates widen the *repair* space without entering
        # the *fault* space: their inverse edit is not enumerable, so the
        # injector must never pick them (else a machine bug would have no
        # in-space golden fix).
        self.repair_only = repair_only

    def apply(self) -> None:
        self._apply()

    def revert(self) -> None:
        self._revert()

    def __repr__(self) -> str:  # pragma: no cover
        return f"MutationCandidate({self.op_name}@{self.line}: {self.description})"


def _swap_op_candidates(node: ast.Binary) -> Iterator[MutationCandidate]:
    original = node.op
    peers = _OP_PEERS.get(original, [])
    for peer in peers:
        def apply_fn(n=node, p=peer):
            n.op = p

        def revert_fn(n=node, o=original):
            n.op = o
        yield MutationCandidate(
            "op_swap", BugKind.OP, node.line,
            f"{original} -> {peer}", apply_fn, revert_fn)


def _negate_candidates(node: ast.Expr, setter: Callable[[ast.Expr], None]
                       ) -> Iterator[MutationCandidate]:
    """Add or strip a logical negation at a boolean position."""
    if isinstance(node, ast.Unary) and node.op == "!":
        def strip(n=node, s=setter):
            s(n.operand)

        def unstrip(n=node, s=setter):
            s(n)
        yield MutationCandidate(
            "negate_cond", BugKind.OP, node.line, "drop !", strip, unstrip)
    else:
        wrapper = ast.Unary("!", node, line=node.line)

        def wrap(s=setter, w=wrapper):
            s(w)

        def unwrap(n=node, s=setter):
            s(n)
        yield MutationCandidate(
            "negate_cond", BugKind.OP, node.line, "add !", wrap, unwrap)


def _const_candidates(node: ast.Number) -> Iterator[MutationCandidate]:
    if node.xmask:
        return
    width = node.width or 32
    maximum = (1 << width) - 1

    def set_value(n: ast.Number, value: int) -> None:
        n.value = value & maximum
        if "'" in n.text:
            prefix, _, _ = n.text.partition("'")
            base_char = n.text.partition("'")[2][0]
            if base_char in "bB":
                n.text = f"{prefix}'b{n.value:0{width}b}"
            elif base_char in "hH":
                n.text = f"{prefix}'h{n.value:x}"
            else:
                n.text = f"{prefix}'d{n.value}"
        else:
            n.text = str(n.value)

    original_value = node.value
    original_text = node.text

    def revert_fn(n=node, v=original_value, t=original_text):
        n.value = v
        n.text = t

    for delta, tag in ((1, "+1"), (-1, "-1")):
        new_value = (node.value + delta) & maximum
        if new_value == node.value:
            continue

        def apply_fn(n=node, v=new_value):
            set_value(n, v)
        yield MutationCandidate(
            "const_nudge", BugKind.VALUE, node.line,
            f"{original_value} {tag} -> {new_value}", apply_fn, revert_fn)

    flip_bits = range(min(width, 8))
    for bit in flip_bits:
        new_value = node.value ^ (1 << bit)

        def apply_fn(n=node, v=new_value):
            set_value(n, v)
        yield MutationCandidate(
            "const_bitflip", BugKind.VALUE, node.line,
            f"{original_value} ^bit{bit} -> {new_value}", apply_fn, revert_fn)


def _ident_candidates(node: ast.Ident, peers: Set[str]
                      ) -> Iterator[MutationCandidate]:
    original = node.name

    def revert_fn(n=node, o=original):
        n.name = o

    for peer in sorted(peers):
        if peer == original:
            continue

        def apply_fn(n=node, p=peer):
            n.name = p
        yield MutationCandidate(
            "ident_swap", BugKind.VAR, node.line,
            f"{original} -> {peer}", apply_fn, revert_fn)


def _ternary_candidates(node: ast.Ternary) -> Iterator[MutationCandidate]:
    def swap_fn(n=node):
        n.then, n.other = n.other, n.then
    yield MutationCandidate(
        "ternary_swap", BugKind.OP, node.line, "swap ternary arms",
        swap_fn, swap_fn)


def _concat_swap_candidates(node: ast.Concat) -> Iterator[MutationCandidate]:
    """Swap the two halves of a 2-element concatenation (byte-order bugs)."""
    if len(node.parts) != 2:
        return

    def swap_fn(n=node):
        n.parts[0], n.parts[1] = n.parts[1], n.parts[0]
    yield MutationCandidate(
        "concat_swap", BugKind.OP, node.line, "swap concat halves",
        swap_fn, swap_fn)


def _const_set_candidates(node: ast.Number,
                          width_literals: "dict[int, Set[int]]"
                          ) -> Iterator[MutationCandidate]:
    """Replace a sized literal with a peer value.

    Peers: every value of the same width for narrow literals (<= 4 bits),
    else 0 / 1 / all-ones plus same-width literals appearing elsewhere in
    the module.  Self-inverse as a family: the original value is always a
    peer of any replacement.
    """
    if node.xmask or node.width is None:
        return
    width = node.width
    repair_only = False
    if width <= 4:
        peers = set(range(1 << width))
    else:
        # Wider literals: the module-literal pool is not stable under
        # injection (mutating a value can remove its partner from the
        # pool), so wide const_set edits are repair-only: available as
        # fixes, never injected as faults.  Case-label restoration for
        # wide labels is handled by the dedicated case_label_restore op.
        repair_only = True
        peers = {0, 1, (1 << width) - 1}
    original_value = node.value
    original_text = node.text

    def revert_fn(n=node, v=original_value, t=original_text):
        n.value = v
        n.text = t

    base_char = "d"
    if "'" in node.text:
        base_char = node.text.partition("'")[2][0].lower()
        if base_char == "s":
            base_char = node.text.partition("'")[2][1].lower()
    for peer in sorted(peers):
        if peer == original_value:
            continue

        def apply_fn(n=node, v=peer, w=width, b=base_char):
            n.value = v
            prefix = n.text.partition("'")[0] or str(w)
            if b == "b":
                n.text = f"{prefix}'b{v:0{w}b}"
            elif b == "h":
                n.text = f"{prefix}'h{v:x}"
            else:
                n.text = f"{prefix}'d{v}"
        yield MutationCandidate(
            "const_set", BugKind.VALUE, node.line,
            f"{original_value} -> {peer}", apply_fn, revert_fn,
            repair_only=repair_only)


def _rhs_swap_candidates(stmt: ast.Assignment, peers: Set[str],
                         target_width: Optional[int]
                         ) -> Iterator[MutationCandidate]:
    """Replace the whole RHS with another in-scope signal.

    For trivial RHSs (a lone literal or identifier) this is a symmetric
    fault/repair operator — it covers stuck-at bugs like ``en_q <= 1'b0;``
    whose fix is ``en_q <= en;``.  For structured RHSs (selects, unaries)
    and for the negated variants on 1-bit targets it is repair-only.
    """
    original = stmt.value
    trivial = isinstance(original, (ast.Number, ast.Ident))
    structured = isinstance(original, (ast.BitSelect, ast.PartSelect,
                                       ast.Unary))
    if not trivial and not structured:
        return

    def revert_fn(s=stmt, o=original):
        s.value = o

    skip = original.name if isinstance(original, ast.Ident) else None
    for peer in sorted(peers):
        if peer == skip:
            continue

        def apply_fn(s=stmt, p=peer, line=original.line):
            s.value = ast.Ident(p, line=line)
        yield MutationCandidate(
            "rhs_swap", BugKind.VAR, stmt.line,
            f"rhs -> {peer}", apply_fn, revert_fn,
            repair_only=structured)
        if target_width == 1:
            def apply_neg(s=stmt, p=peer, line=original.line):
                s.value = ast.Unary("!", ast.Ident(p, line=line), line=line)
            yield MutationCandidate(
                "rhs_swap", BugKind.VAR, stmt.line,
                f"rhs -> !{peer}", apply_neg, revert_fn, repair_only=True)
    if target_width is not None:
        # Constant RHS candidates keep the family symmetric: an injected
        # const->ident swap has its ident->const inverse available here.
        # 1-bit constants render as 1'b0/1'b1, matching RTL convention (and
        # therefore the golden text of reset-value lines).
        for value in sorted({0, 1, (1 << target_width) - 1}):
            if isinstance(original, ast.Number) and original.value == value:
                continue
            if target_width == 1:
                text = f"1'b{value}"
            else:
                text = f"{target_width}'d{value}"

            def apply_const(s=stmt, v=value, w=target_width, x=text,
                            line=stmt.line):
                s.value = ast.Number(v, w, 0, x, line=line)
            yield MutationCandidate(
                "rhs_swap", BugKind.VALUE, stmt.line,
                f"rhs -> {text}", apply_const, revert_fn,
                repair_only=structured)


def _drop_term_candidates(node: ast.Binary, setter: Callable[[ast.Expr], None]
                          ) -> Iterator[MutationCandidate]:
    """Repair-only: collapse ``expr OP literal`` to ``expr`` (removes a
    spurious added term, e.g. ``mins + 6'd1 + 6'd1`` -> ``mins + 6'd1``)."""
    if node.op not in ("+", "-", "&", "|", "^", "<<", ">>"):
        return
    if not isinstance(node.rhs, ast.Number):
        return

    def apply_fn(n=node, s=setter):
        s(n.lhs)

    def revert_fn(n=node, s=setter):
        s(n)
    yield MutationCandidate(
        "drop_term", BugKind.OP, node.line,
        f"drop '{node.op} literal' term", apply_fn, revert_fn,
        repair_only=True)


def _ident_to_const_candidates(node: ast.Binary,
                               widths: "dict[str, int]"
                               ) -> Iterator[MutationCandidate]:
    """Repair-only: replace an identifier operand with a small sized
    literal, using the sibling operand's width as the anchor
    (``bit_cnt + din`` -> ``bit_cnt + 3'd1``)."""
    def width_of(expr):
        if isinstance(expr, ast.Number):
            return expr.width
        if isinstance(expr, ast.Ident):
            return widths.get(expr.name)
        return None

    pairs = []
    if isinstance(node.rhs, ast.Ident):
        anchor = width_of(node.lhs)
        if anchor:
            pairs.append(("rhs", node.rhs, anchor))
    if isinstance(node.lhs, ast.Ident):
        anchor = width_of(node.rhs)
        if anchor:
            pairs.append(("lhs", node.lhs, anchor))
    for side, ident, width in pairs:
        for value in (0, 1):
            number = ast.Number(value, width, 0, f"{width}'d{value}",
                                line=ident.line)

            def apply_fn(n=node, s=side, num=number):
                if s == "rhs":
                    n.rhs = num
                else:
                    n.lhs = num

            def revert_fn(n=node, s=side, i=ident):
                if s == "rhs":
                    n.rhs = i
                else:
                    n.lhs = i
            yield MutationCandidate(
                "ident_to_const", BugKind.VAR, ident.line,
                f"{ident.name} -> {width}'d{value}", apply_fn, revert_fn,
                repair_only=True)


def _signal_names(module: ast.Module) -> Set[str]:
    names = {p.name for p in module.ports}
    names.update(d.name for d in module.decls())
    return names


def _iter_expr_sites(expr: ast.Expr, setter: Callable[[ast.Expr], None],
                     peers: Set[str], boolean_pos: bool,
                     width_literals: "dict[int, Set[int]]",
                     widths: "dict[str, int]"
                     ) -> Iterator[MutationCandidate]:
    """Enumerate candidates in one expression tree.

    ``setter`` rebinds the root (needed for negation wrapping); children
    are mutated in place through node attributes.
    """
    if boolean_pos:
        yield from _negate_candidates(expr, setter)
    if isinstance(expr, ast.Binary):
        yield from _drop_term_candidates(expr, setter)
    stack: List[ast.Expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Binary):
            yield from _swap_op_candidates(node)
            yield from _ident_to_const_candidates(node, widths)
            if node.op in ("&&", "||"):
                # Polarity of either operand of a logical connective —
                # covers bugs like 'valid_in && half_full' vs
                # 'valid_in && !half_full' that root-level negation misses.
                def set_lhs(e, n=node):
                    n.lhs = e

                def set_rhs(e, n=node):
                    n.rhs = e
                yield from _negate_candidates(node.lhs, set_lhs)
                yield from _negate_candidates(node.rhs, set_rhs)
            stack.extend([node.lhs, node.rhs])
        elif isinstance(node, ast.Unary):
            stack.append(node.operand)
        elif isinstance(node, ast.Ternary):
            yield from _ternary_candidates(node)
            stack.extend([node.cond, node.then, node.other])
        elif isinstance(node, ast.Number):
            yield from _const_candidates(node)
            yield from _const_set_candidates(node, width_literals)
        elif isinstance(node, ast.Ident):
            yield from _ident_candidates(node, peers)
        elif isinstance(node, (ast.BitSelect,)):
            stack.extend([node.base, node.index])
        elif isinstance(node, ast.PartSelect):
            stack.append(node.base)
        elif isinstance(node, ast.Concat):
            yield from _concat_swap_candidates(node)
            stack.extend(node.parts)
        elif isinstance(node, ast.Repeat):
            stack.append(node.value)
        elif isinstance(node, ast.SysCall):
            stack.extend(node.args)


def _target_base_width(target: ast.Expr,
                       widths: "dict[str, int]") -> Optional[int]:
    if isinstance(target, ast.Ident):
        return widths.get(target.name)
    if isinstance(target, (ast.BitSelect,)):
        return 1
    return None


def _iter_stmt_sites(stmt: ast.Stmt, peers: Set[str],
                     width_literals: "dict[int, Set[int]]",
                     widths: "dict[str, int]"
                     ) -> Iterator[MutationCandidate]:
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _iter_stmt_sites(child, peers, width_literals, widths)
    elif isinstance(stmt, ast.Assignment):
        def set_value(e, s=stmt):
            s.value = e
        target_width = _target_base_width(stmt.target, widths)
        yield from _rhs_swap_candidates(stmt, peers, target_width)
        # A 1-bit target makes the RHS a boolean position: polarity bugs
        # like 'done <= !byte_end;' are symmetric negations there.
        yield from _iter_expr_sites(stmt.value, set_value, peers,
                                    boolean_pos=(target_width == 1),
                                    width_literals=width_literals,
                                    widths=widths)
    elif isinstance(stmt, ast.If):
        def set_cond(e, s=stmt):
            s.cond = e
        yield from _iter_expr_sites(stmt.cond, set_cond, peers,
                                    boolean_pos=True,
                                    width_literals=width_literals,
                                    widths=widths)
        yield from _iter_stmt_sites(stmt.then, peers, width_literals, widths)
        if stmt.other is not None:
            yield from _iter_stmt_sites(stmt.other, peers, width_literals,
                                        widths)
    elif isinstance(stmt, ast.Case):
        yield from _case_label_restore_candidates(stmt)
        for item in stmt.items:
            for label in item.labels:
                if isinstance(label, ast.Number):
                    yield from _const_candidates(label)
                    yield from _const_set_candidates(label, width_literals)
            yield from _iter_stmt_sites(item.body, peers, width_literals,
                                        widths)


def _case_label_restore_candidates(stmt: ast.Case
                                   ) -> Iterator[MutationCandidate]:
    """Repair-only: a duplicated constant case label is retargeted to one
    of the values missing from [0, max label] — the canonical fix for a
    mutated case label in a decoder/mux, independent of label width."""
    numbers: List[ast.Number] = []
    for item in stmt.items:
        for label in item.labels:
            if isinstance(label, ast.Number) and not label.xmask:
                numbers.append(label)
    if not numbers:
        return
    values = [n.value for n in numbers]
    value_counts = {}
    for value in values:
        value_counts[value] = value_counts.get(value, 0) + 1
    missing = [v for v in range(max(values) + 1) if v not in value_counts]
    if not missing or len(missing) > 4:
        return
    for node in numbers:
        if value_counts[node.value] < 2:
            continue
        original_value = node.value
        original_text = node.text

        def revert_fn(n=node, v=original_value, x=original_text):
            n.value = v
            n.text = x

        for target in missing:
            def apply_fn(n=node, v=target):
                width = n.width or 32
                prefix = n.text.partition("'")[0] or str(width)
                base = n.text.partition("'")[2][:1].lower() or "d"
                n.value = v
                if base == "b":
                    n.text = f"{prefix}'b{v:0{width}b}"
                elif base == "h":
                    n.text = f"{prefix}'h{v:x}"
                else:
                    n.text = f"{prefix}'d{v}"
            yield MutationCandidate(
                "case_label_restore", BugKind.VALUE, node.line,
                f"duplicate label {original_value} -> missing {target}",
                apply_fn, revert_fn, repair_only=True)


def _collect_width_literals(module: ast.Module) -> "dict[int, Set[int]]":
    """Same-width literal values appearing anywhere in the module, used as
    replacement peers for wide constants."""
    literals: "dict[int, Set[int]]" = {}
    for node in ast.walk(module):
        if isinstance(node, ast.Number) and node.width and not node.xmask:
            literals.setdefault(node.width, set()).add(node.value)
    return literals


class ModuleMutationContext:
    """Shared lookup tables for enumerating one module's mutations."""

    def __init__(self, module: ast.Module):
        self.peers = _signal_names(module)
        self.width_literals = _collect_width_literals(module)
        self.widths = _signal_widths(module)


def enumerate_item_mutations(item: ast.Item, context: ModuleMutationContext
                             ) -> List[MutationCandidate]:
    """Mutation candidates confined to one module item."""
    candidates: List[MutationCandidate] = []
    if isinstance(item, ast.ContinuousAssign):
        def set_value(e, it=item):
            it.value = e
        target_width = _target_base_width(item.target, context.widths)
        candidates.extend(_iter_expr_sites(
            item.value, set_value, context.peers,
            boolean_pos=(target_width == 1),
            width_literals=context.width_literals, widths=context.widths))
    elif isinstance(item, ast.AlwaysBlock):
        candidates.extend(_iter_stmt_sites(item.body, context.peers,
                                           context.width_literals,
                                           context.widths))
    return candidates


def enumerate_mutations(module: ast.Module) -> List[MutationCandidate]:
    """All single-node mutation candidates of ``module``'s RTL (assertions
    and property declarations are never mutated — bugs live in the design,
    matching the paper's setup)."""
    context = ModuleMutationContext(module)
    candidates: List[MutationCandidate] = []
    for item in module.items:
        candidates.extend(enumerate_item_mutations(item, context))
    return candidates


def _signal_widths(module: ast.Module) -> "dict[str, int]":
    widths: "dict[str, int]" = {}
    for port in module.ports:
        if isinstance(port.msb, int) and isinstance(port.lsb, int):
            widths[port.name] = abs(port.msb - port.lsb) + 1
    for decl in module.decls():
        if isinstance(decl.msb, int) and isinstance(decl.lsb, int):
            widths[decl.name] = abs(decl.msb - decl.lsb) + 1
    return widths


def mutated_copy(module: ast.Module, picker: Callable[[List[MutationCandidate]],
                                                      Optional[MutationCandidate]]
                 ) -> "tuple[Optional[ast.Module], Optional[MutationCandidate]]":
    """Deep-copy ``module``, enumerate candidates on the copy, apply the one
    chosen by ``picker``.  Returns (mutated_module, applied_candidate)."""
    clone = copy.deepcopy(module)
    candidates = enumerate_mutations(clone)
    if not candidates:
        return None, None
    choice = picker(candidates)
    if choice is None:
        return None, None
    choice.apply()
    return clone, choice


def random_mutation(module: ast.Module, rng: random.Random
                    ) -> "tuple[Optional[ast.Module], Optional[MutationCandidate]]":
    """Uniform random single mutation."""
    return mutated_copy(module, lambda cands: rng.choice(cands))
