"""Persistent content-addressed artifact store.

Every cache elsewhere in the system (the compile cache, the serving
result cache, stage-level memoization) is an in-memory, per-process LRU.
This package is the durable tier underneath them:

- :mod:`repro.store.base` — the :class:`ArtifactStore` contract,
  SHA-256 :func:`content_key` addressing, versioned namespaces
  (``compile/v1`` / ``serve/v1`` / ``stage/v1``), monotonic counters;
- :mod:`repro.store.memory` — :class:`MemoryStore`, the entry-budgeted
  LRU default (no persistence, no serialization);
- :mod:`repro.store.disk` — :class:`DiskStore`: atomic
  write-via-tempfile-rename blobs, digest-verified reads that quarantine
  corruption instead of raising, size-budgeted LRU eviction with an
  on-disk index; safe under concurrent writers across processes;
- :mod:`repro.store.tiered` — :class:`TieredStore`: memory front over a
  disk back (promote on hit, write through on put);
- :mod:`repro.store.config` — :class:`StoreConfig`, the knob block the
  pipeline/serve configs embed.

Because every artifact producer in the system is a pure function of its
content-addressed inputs (compile results of source text, solve
responses of request hashes, stage units of derived seeds), a store hit
is byte-identical to recomputation — which is what makes sharing entries
across runs, processes, and service instances sound.
"""

from repro.store.base import (
    NS_COMPILE,
    NS_EVAL,
    NS_SERVE,
    NS_STAGE,
    ArtifactStore,
    content_key,
    unit_memo_key,
)
from repro.store.config import StoreConfig
from repro.store.disk import DiskStore
from repro.store.memory import MemoryStore
from repro.store.tiered import TieredStore

__all__ = [
    "NS_COMPILE",
    "NS_EVAL",
    "NS_SERVE",
    "NS_STAGE",
    "ArtifactStore",
    "DiskStore",
    "MemoryStore",
    "StoreConfig",
    "TieredStore",
    "content_key",
    "unit_memo_key",
]
