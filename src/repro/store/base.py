"""Artifact-store contract and content-addressing primitives.

An :class:`ArtifactStore` maps ``(namespace, key)`` to an arbitrary
picklable Python object.  Keys are SHA-256 content hashes (see
:func:`content_key`), so a store never needs invalidation: a different
input is a different key.  Namespaces are versioned path-like strings
(``compile/v1``, ``serve/v1``, ``stage/v1``) — bumping the version when
an artifact's schema changes orphans old entries instead of corrupting
readers, and the size-budgeted eviction reclaims them.

The contract every implementation honours:

- ``get`` returns the stored object or ``None``; it **never raises** for
  a missing, partially-written, or corrupted entry (corruption counts as
  a miss and the entry is quarantined);
- ``put`` is atomic: concurrent readers observe either the complete
  previous state or the complete new value, never a torn write;
- counters (``hits`` / ``misses`` / ``writes`` / ``evictions`` /
  ``corrupt``) are monotonic, so deltas between snapshots are meaningful
  — the same convention as :class:`repro.verilog.compile.CompileCache`.

Values must be treated as immutable once stored: ``get`` may hand back a
shared object (memory tier) or a fresh unpickle (disk tier), and callers
must not be able to tell the difference.
"""

from __future__ import annotations

import hashlib
import re
import threading
import weakref
from typing import Dict, Optional

from repro.engine import metrics as engine_metrics

#: Canonical namespaces, versioned so schema changes never mix artifacts.
NS_COMPILE = "compile/v1"
NS_SERVE = "serve/v1"
NS_STAGE = "stage/v1"
NS_EVAL = "eval/v1"

_NAMESPACE_RE = re.compile(r"[a-z0-9_]+(/[a-z0-9_]+)*")
_KEY_RE = re.compile(r"[0-9a-f]{8,128}")


def content_key(*parts: str) -> str:
    """SHA-256 over length-prefixed parts (no separator collisions)."""
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        digest.update(str(len(data)).encode("ascii"))
        digest.update(b":")
        digest.update(data)
    return digest.hexdigest()


def unit_memo_key(stage_name: str, unit_id: str, config_digest: str,
                  global_seed: int, *extra: object) -> str:
    """The stage-memoization key: ``(stage, unit, config, seed)``.

    ``config_digest`` must cover every semantic knob that can change the
    unit's output (see :meth:`DatagenConfig.semantic_digest`); execution
    knobs (workers, backend, caches) stay out, so a parallel re-run hits
    the entries a serial run stored.  ``extra`` disambiguates sibling
    units that share a ``unit_id`` (e.g. stage 3's per-design ordinals).
    """
    return content_key("stage-memo", stage_name, unit_id, config_digest,
                       repr(global_seed), *[str(part) for part in extra])


def validate_namespace(namespace: str) -> str:
    if not isinstance(namespace, str) \
            or _NAMESPACE_RE.fullmatch(namespace) is None:
        raise ValueError(
            f"namespace must match {_NAMESPACE_RE.pattern!r} "
            f"(e.g. 'compile/v1'), got {namespace!r}")
    return namespace


def validate_key(key: str) -> str:
    if not isinstance(key, str) or _KEY_RE.fullmatch(key) is None:
        raise ValueError(
            f"store keys are lowercase hex digests, got {key!r}")
    return key


class ArtifactStore:
    """Base class: counter bookkeeping shared by every implementation."""

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.corrupt = 0
        self._lock = threading.RLock()
        _LIVE_STORES.add(self)

    # -- contract ------------------------------------------------------------

    def get(self, namespace: str, key: str) -> Optional[object]:
        raise NotImplementedError

    def put(self, namespace: str, key: str, value: object) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "writes": self.writes, "evictions": self.evictions,
                    "corrupt": self.corrupt}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"{type(self).__name__}({len(self)} entries, "
                f"{self.hits} hits, {self.misses} misses)")


# -- metrics provider ----------------------------------------------------------
#
# Every live store instance is tracked in a WeakSet so its counters reach
# ``/metricsz`` through the engine provider registry with zero per-call-
# site glue — constructing a store is enough.  Counters are summed per
# tier class (``disk_hits``, ``tiered_misses``, ...).  A collected store
# takes its counts with it, so across a store's death the totals are an
# upper bound on increments, same caveat as the thread backend's deltas.

_LIVE_STORES: "weakref.WeakSet[ArtifactStore]" = weakref.WeakSet()


def store_counters() -> Dict[str, int]:
    """Metrics provider: per-tier-class counter sums over live stores."""
    totals: Dict[str, int] = {}
    for store in list(_LIVE_STORES):
        prefix = type(store).__name__.lower()
        if prefix.endswith("store"):
            prefix = prefix[:-len("store")] or "store"
        for key, value in store.counters().items():
            # TieredStore nests its front/back counter dicts; those
            # stores are live (and counted) under their own prefixes.
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            name = f"{prefix}_{key}"
            totals[name] = totals.get(name, 0) + value
        name = f"{prefix}_instances"
        totals[name] = totals.get(name, 0) + 1
    return totals


engine_metrics.register_provider("store", store_counters)
