"""Two-tier store: a memory front absorbing the hot set over a disk back.

``get`` promotes disk hits into the memory tier so repeats stay cheap;
``put`` writes through to both tiers, so a memory eviction never loses
data — the disk tier refills it on the next miss.  The tiered counters
describe the *combined* view (a hit in either tier is a hit); each
tier's own counters remain available through ``front`` / ``back``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.store.base import ArtifactStore


class TieredStore(ArtifactStore):
    """Memory-over-disk composition of two :class:`ArtifactStore` tiers."""

    def __init__(self, front: ArtifactStore, back: ArtifactStore):
        super().__init__()
        self.front = front
        self.back = back

    def get(self, namespace: str, key: str) -> Optional[object]:
        value = self.front.get(namespace, key)
        if value is not None:
            with self._lock:
                self.hits += 1
            return value
        value = self.back.get(namespace, key)
        if value is not None:
            self.front.put(namespace, key, value)
            with self._lock:
                self.hits += 1
            return value
        with self._lock:
            self.misses += 1
        return None

    def put(self, namespace: str, key: str, value: object) -> None:
        self.front.put(namespace, key, value)
        self.back.put(namespace, key, value)
        with self._lock:
            self.writes += 1

    def __len__(self) -> int:
        return len(self.back)

    def counters(self) -> Dict[str, int]:
        data = super().counters()
        data["front"] = self.front.counters()
        data["back"] = self.back.counters()
        return data
