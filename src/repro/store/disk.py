"""Persistent content-addressed artifact store with crash-safe writes.

On-disk layout (one file per artifact, sharded by key prefix)::

    <root>/index.json                       eviction bookkeeping (advisory)
    <root>/<namespace>/<key[:2]>/<key>      blob files
    <root>/**/.tmp-*                        in-flight writes (never read)

Every blob is ``header + pickle payload`` where the header records the
payload's own SHA-256 and length::

    repro-store/1 <payload_sha256_hex> <payload_len>\\n

**Crash safety.**  Writes go to a tempfile in the destination directory
and land via ``os.replace`` — readers observe either the old complete
blob or the new complete blob, never a torn write, even across
processes.  A crash mid-write leaves only a ``.tmp-*`` file, which reads
ignore and eviction sweeps.

**Integrity.**  Reads verify the header digest before unpickling.  A
truncated, bit-flipped, or otherwise mangled entry is *quarantined*
(deleted) and counted as a miss plus a ``corrupt`` tick — it never
raises into the caller and is never served.

**Eviction.**  The store keeps total blob bytes under ``max_bytes`` with
least-recently-used eviction.  ``index.json`` persists the
``path -> (size, last_used)`` bookkeeping across process restarts
(rewritten atomically, throttled to every :data:`PERSIST_EVERY` puts);
it is advisory only — reads always go straight to the blob path, and
every instance reconciles the index against a directory scan at load,
so a stale or corrupt index (e.g. after concurrent writers from two
processes) can cost recent last-used times, never correctness and never
the size budget.

**Cross-process budget (compaction).**  Each long-lived instance
enforces ``max_bytes`` from its *own* index, which only sees its own
writes after load — so N fleet processes writing one directory could
combine to ~N times the budget.  :meth:`DiskStore.compact` closes this:
a directory rescan + LRU eviction + index rewrite, guarded by a lock
file (``O_CREAT|O_EXCL``; stale locks from crashed holders are broken
after :data:`COMPACT_LOCK_STALE_S`) so exactly one process pays the
walk at a time.  It runs automatically every ``compact_every`` puts,
keeping the *combined* on-disk bytes bounded no matter how many
processes share the root.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.store.base import ArtifactStore, validate_key, validate_namespace

_MAGIC = b"repro-store/1"
_INDEX_NAME = "index.json"
_TMP_PREFIX = ".tmp-"
_LOCK_NAME = ".compact-lock"

#: Default size budget: generous for test/bench corpora, small enough
#: that a long-lived store on a dev box cannot grow without bound.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Persist the advisory index at most every this many puts (plus on
#: eviction and clear): writes stay O(1) amortized instead of rewriting
#: the whole index per put, and staleness is harmless because every
#: instance reconciles against the filesystem at load.
PERSIST_EVERY = 64

#: Run a cross-process compaction pass every this many puts (0 disables
#: the automatic trigger; :meth:`DiskStore.compact` stays callable).
#: The pass is a directory walk, so it is deliberately much rarer than
#: :data:`PERSIST_EVERY`.
COMPACT_EVERY = 256

#: A compaction lock file older than this belongs to a crashed holder
#: and may be broken.  Compaction itself is a directory walk + unlinks
#: — far faster than this bound even on enormous stores.
COMPACT_LOCK_STALE_S = 300.0


def _encode(value: object) -> bytes:
    payload = pickle.dumps(value, protocol=4)
    header = b" ".join((_MAGIC,
                        hashlib.sha256(payload).hexdigest().encode("ascii"),
                        str(len(payload)).encode("ascii"))) + b"\n"
    return header + payload


def _decode(blob: bytes) -> Optional[Tuple[object]]:
    """``(value,)`` when the blob verifies and unpickles, else ``None``."""
    newline = blob.find(b"\n")
    if newline < 0:
        return None
    fields = blob[:newline].split(b" ")
    if len(fields) != 3 or fields[0] != _MAGIC:
        return None
    payload = blob[newline + 1:]
    try:
        expected_len = int(fields[2])
    except ValueError:
        return None
    if len(payload) != expected_len:
        return None
    if hashlib.sha256(payload).hexdigest().encode("ascii") != fields[1]:
        return None
    try:
        return (pickle.loads(payload),)
    except Exception:  # noqa: BLE001 - schema drift is corruption, not a crash
        return None


class DiskStore(ArtifactStore):
    """Content-addressed blob store rooted at one directory.

    Safe for concurrent use by threads sharing one instance *and* by
    independent instances (other processes, other hosts on a shared
    filesystem) pointed at the same root: blob visibility is governed
    entirely by atomic renames.
    """

    def __init__(self, root, max_bytes: int = DEFAULT_MAX_BYTES,
                 compact_every: int = COMPACT_EVERY):
        super().__init__()
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if not isinstance(compact_every, int) \
                or isinstance(compact_every, bool) or compact_every < 0:
            raise ValueError(f"compact_every must be an integer >= 0, "
                             f"got {compact_every!r}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.compact_every = compact_every
        self.write_errors = 0
        self.compactions = 0
        self.root.mkdir(parents=True, exist_ok=True)
        #: relative blob path -> [size_bytes, last_used_unix]
        self._index: Dict[str, List[float]] = {}
        self._total_bytes = 0
        self._unpersisted_puts = 0
        self._puts_since_compact = 0
        self._load_index()

    # -- paths ---------------------------------------------------------------

    def _blob_path(self, namespace: str, key: str) -> Path:
        namespace = validate_namespace(namespace)
        key = validate_key(key)
        return self.root / namespace / key[:2] / key

    def _rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    # -- contract ------------------------------------------------------------

    def get(self, namespace: str, key: str) -> Optional[object]:
        path = self._blob_path(namespace, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        decoded = _decode(blob)
        if decoded is None:
            self._quarantine(path)
            return None
        now = time.time()
        try:
            os.utime(path, (now, now))
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass
        with self._lock:
            self.hits += 1
            entry = self._index.get(self._rel(path))
            if entry is not None:
                entry[1] = now
        return decoded[0]

    def put(self, namespace: str, key: str, value: object) -> None:
        """Atomically persist ``value``; best-effort on I/O failure.

        A full disk or permission error counts in ``write_errors`` and
        leaves the store no worse than before — callers always recompute
        on a later miss, so a failed write must not take the pipeline
        down with it.
        """
        path = self._blob_path(namespace, key)
        blob = _encode(value)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(prefix=_TMP_PREFIX,
                                            dir=path.parent)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            with self._lock:
                self.write_errors += 1
            return
        compact_due = False
        with self._lock:
            self.writes += 1
            rel = self._rel(path)
            previous = self._index.get(rel)
            if previous is not None:
                self._total_bytes -= int(previous[0])
            self._index[rel] = [len(blob), time.time()]
            self._total_bytes += len(blob)
            evicted = self._evict_locked()
            self._unpersisted_puts += 1
            if evicted or self._unpersisted_puts >= PERSIST_EVERY:
                self._persist_index_locked()
                self._unpersisted_puts = 0
            if self.compact_every:
                self._puts_since_compact += 1
                compact_due = self._puts_since_compact >= self.compact_every
        if compact_due:
            self.compact()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    # -- integrity -----------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Remove a corrupt entry; it must never be served."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / unremovable
            pass
        with self._lock:
            self.misses += 1
            self.corrupt += 1
            entry = self._index.pop(self._rel(path), None)
            if entry is not None:
                self._total_bytes -= int(entry[0])

    # -- eviction ------------------------------------------------------------

    def _evict_locked(self) -> int:
        if self._total_bytes <= self.max_bytes:
            return 0
        evicted = 0
        by_age = sorted(self._index.items(), key=lambda item: item[1][1])
        for rel, (size, _) in by_age:
            if self._total_bytes <= self.max_bytes:
                break
            try:
                (self.root / rel).unlink()
            except OSError:  # pragma: no cover - another evictor won the race
                pass
            del self._index[rel]
            self._total_bytes -= int(size)
            self.evictions += 1
            evicted += 1
        return evicted

    def compact(self) -> int:
        """One cross-process budget pass; returns blobs evicted.

        Rescans the directory (so writes from *other* instances and
        processes enter this index), merges in-memory recency (a rescan
        only sees mtimes, and :meth:`get` may hold fresher last-used
        times), evicts LRU down to ``max_bytes``, and persists the
        reconciled index.  Guarded by a lock file so concurrent
        compactions from fleet processes collapse to one walker: a
        contended call returns 0 immediately — the holder is already
        doing the work.  Runs automatically every ``compact_every``
        puts; safe to call directly at any time."""
        with self._lock:
            self._puts_since_compact = 0
        if not self._acquire_compact_lock():
            return 0
        try:
            with self._lock:
                remembered = {rel: entry[1]
                              for rel, entry in self._index.items()}
                self._rescan()
                for rel, entry in self._index.items():
                    used = remembered.get(rel)
                    if used is not None and used > entry[1]:
                        entry[1] = used
                evicted = self._evict_locked()
                self._persist_index_locked()
                self._unpersisted_puts = 0
                self.compactions += 1
            return evicted
        finally:
            self._release_compact_lock()

    def _compact_lock_path(self) -> Path:
        return self.root / _LOCK_NAME

    def _acquire_compact_lock(self) -> bool:
        """``O_CREAT|O_EXCL`` lock file; breaks stale locks once."""
        lock = self._compact_lock_path()
        for attempt in (0, 1):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w") as handle:
                    handle.write(str(os.getpid()))
                return True
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    # Holder released between open and stat: the store
                    # was just compacted; this pass has nothing to add.
                    return False
                if age < COMPACT_LOCK_STALE_S or attempt:
                    return False  # live holder (or already broke once)
                try:
                    lock.unlink()  # crashed holder: break the stale lock
                except OSError:  # pragma: no cover - lost the break race
                    return False
            except OSError:  # pragma: no cover - unwritable root
                return False
        return False  # pragma: no cover - loop always returns

    def _release_compact_lock(self) -> None:
        try:
            self._compact_lock_path().unlink()
        except OSError:  # pragma: no cover - removed out from under us
            pass

    def _sweep_tmp(self) -> None:
        """Remove stale in-flight files a crashed writer left behind."""
        cutoff = time.time() - 3600.0
        for tmp in self.root.rglob(f"{_TMP_PREFIX}*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:  # pragma: no cover - raced with its writer
                pass

    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def clear(self) -> None:
        with self._lock:
            for rel in list(self._index):
                try:
                    (self.root / rel).unlink()
                except OSError:  # pragma: no cover
                    pass
            self._index.clear()
            self._total_bytes = 0
            self._persist_index_locked()

    # -- on-disk index -------------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _load_index(self) -> None:
        """Scan-then-merge: the filesystem is authoritative for *what*
        exists (another handle — this run's second tier, another process
        — may have written entries this index never saw, and trusting a
        stale index would undercount ``_total_bytes`` and silently
        disable eviction); the saved index only contributes last-used
        times more recent than the file mtimes."""
        saved: Dict[str, float] = {}
        try:
            data = json.loads(self._index_path().read_text())
            entries = data["entries"]
            assert isinstance(entries, dict)
            saved = {str(rel): float(used)
                     for rel, (_, used) in entries.items()}
        except Exception:  # noqa: BLE001 - advisory data; the scan rules
            saved = {}
        self._rescan()
        for rel, entry in self._index.items():
            used = saved.get(rel)
            if used is not None and used > entry[1]:
                entry[1] = used
        # Crash-cleanup once per handle, off the put/evict hot path: at
        # steady state (store at budget) every put evicts, and a tree
        # walk under the lock there would cost O(entries) per write.
        self._sweep_tmp()

    def _rescan(self) -> None:
        index: Dict[str, List[float]] = {}
        total = 0
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name == _INDEX_NAME \
                    or path.name == _LOCK_NAME \
                    or path.name.startswith(_TMP_PREFIX):
                continue
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with an evictor
                continue
            index[self._rel(path)] = [stat.st_size, stat.st_mtime]
            total += stat.st_size
        self._index = index
        self._total_bytes = total

    def _persist_index_locked(self) -> None:
        """Atomic best-effort rewrite; the filesystem stays authoritative."""
        payload = json.dumps({"version": 1, "entries": self._index})
        try:
            fd, tmp_name = tempfile.mkstemp(prefix=_TMP_PREFIX, dir=self.root)
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._index_path())
        except OSError:  # pragma: no cover - advisory data only
            pass

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        data = super().counters()
        with self._lock:
            data["write_errors"] = self.write_errors
            data["total_bytes"] = self._total_bytes
            data["compactions"] = self.compactions
        return data
