"""In-memory artifact store: an entry-budgeted LRU over live objects.

The default tier — no serialization, no I/O, process-local.  Used on its
own it behaves like the existing in-memory caches; in front of a
:class:`repro.store.disk.DiskStore` (see
:class:`repro.store.tiered.TieredStore`) it absorbs the hot set so the
disk tier only sees cold traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.store.base import ArtifactStore, validate_key, validate_namespace


class MemoryStore(ArtifactStore):
    """Thread-safe LRU of ``(namespace, key) -> object``."""

    def __init__(self, max_entries: int = 4096):
        super().__init__()
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()

    def get(self, namespace: str, key: str) -> Optional[object]:
        slot = (validate_namespace(namespace), validate_key(key))
        with self._lock:
            value = self._entries.get(slot)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(slot)
            return value

    def put(self, namespace: str, key: str, value: object) -> None:
        slot = (validate_namespace(namespace), validate_key(key))
        with self._lock:
            self._entries[slot] = value
            self._entries.move_to_end(slot)
            self.writes += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
