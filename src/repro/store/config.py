"""StoreConfig: the one knob block that turns persistence on.

Execution-layer configs (:class:`repro.datagen.pipeline.DatagenConfig`,
:class:`repro.serve.service.ServeConfig`,
:class:`repro.core.api.PipelineConfig`) embed an optional
``StoreConfig``; like every other execution knob it never changes
results — only whether artifacts survive the process.

- ``path=None`` (default): a process-local :class:`MemoryStore` — the
  pre-store behaviour, nothing touches disk;
- ``path=<dir>``: a :class:`DiskStore` rooted there, fronted by a
  :class:`MemoryStore` unless ``memory_entries=0`` — artifacts persist
  across runs, processes, and (on a shared filesystem) hosts;
- ``enabled=False``: no store at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.store.disk import DEFAULT_MAX_BYTES, DiskStore
from repro.store.memory import MemoryStore
from repro.store.tiered import TieredStore


@dataclass
class StoreConfig:
    """Where (and whether) artifacts persist, and how big they may grow."""

    path: Optional[Union[str, Path]] = None
    max_bytes: int = DEFAULT_MAX_BYTES
    memory_entries: int = 2048
    enabled: bool = True

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.max_bytes, int) \
                or isinstance(self.max_bytes, bool) or self.max_bytes < 1:
            raise ValueError(
                f"max_bytes must be an integer >= 1, got {self.max_bytes!r}")
        if not isinstance(self.memory_entries, int) \
                or isinstance(self.memory_entries, bool) \
                or self.memory_entries < 0:
            raise ValueError(f"memory_entries must be an integer >= 0, "
                             f"got {self.memory_entries!r}")
        if self.path is not None and not isinstance(self.path, (str, Path)):
            raise ValueError(
                f"path must be a filesystem path or None, got {self.path!r}")
        if self.path is None and self.memory_entries == 0 and self.enabled:
            raise ValueError("memory_entries=0 with no disk path leaves "
                             "nothing to store into; set a path or disable")

    def store_path(self) -> str:
        """The disk root as a plain string, ``""`` when memory-only.

        Picklable and cheap — this is what travels to process-pool
        workers (via initializer args) so each worker attaches its own
        :class:`DiskStore` handle to the shared directory.
        """
        if not self.enabled or self.path is None:
            return ""
        return str(self.path)

    def make_store(self):
        """Build the configured store (``None`` when disabled)."""
        if not self.enabled:
            return None
        if self.path is None:
            return MemoryStore(max_entries=self.memory_entries)
        disk = DiskStore(self.path, max_bytes=self.max_bytes)
        if self.memory_entries == 0:
            return disk
        return TieredStore(MemoryStore(max_entries=self.memory_entries), disk)
