"""The online serving layer: request/response assertion generation.

Where :mod:`repro.datagen` regenerates whole datasets, this package
serves one design at a time with low latency and amortizes work across
concurrent traffic:

- :mod:`repro.serve.service` — :class:`AssertService`: bounded request
  queue with backpressure, content-addressed deterministic solves,
  structured errors for malformed input;
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces
  in-flight requests into one engine map per batch window (flush on
  size or timeout), deduplicating identical designs;
- :mod:`repro.serve.cache` — :class:`ResultCache`: content-hash LRU of
  finished responses, so repeat designs skip compute entirely;
- :mod:`repro.serve.loadgen` — deterministic corpus-sampled request
  streams and a latency/throughput harness (p50/p95, req/s) feeding
  ``benchmarks/bench_serve.py``.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import ResultCache, content_key
from repro.serve.loadgen import (
    LoadReport,
    WorkloadSpec,
    build_workload,
    run_load,
)
from repro.serve.service import (
    AssertService,
    ScoredProposal,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
    ServiceStats,
    SolveOptions,
    SolveRequest,
    SolveResponse,
    solve_task,
)

__all__ = [
    "AssertService",
    "BatcherStats",
    "LoadReport",
    "MicroBatcher",
    "ResultCache",
    "ScoredProposal",
    "ServeConfig",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceStats",
    "SolveOptions",
    "SolveRequest",
    "SolveResponse",
    "WorkloadSpec",
    "build_workload",
    "content_key",
    "run_load",
    "solve_task",
]
