"""The online serving layer: request/response assertion generation.

Where :mod:`repro.datagen` regenerates whole datasets, this package
serves one design at a time with low latency and amortizes work across
concurrent traffic:

- :mod:`repro.serve.service` — :class:`AssertService`: bounded request
  queue with backpressure, content-addressed deterministic solves,
  structured errors for malformed input;
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces
  in-flight requests into one engine map per batch window (flush on
  size or timeout), deduplicating identical designs;
- :mod:`repro.serve.cache` — :class:`ResultCache`: content-hash LRU of
  finished responses, so repeat designs skip compute entirely;
- :mod:`repro.serve.loadgen` — deterministic corpus-sampled request
  streams and a latency/throughput harness (p50/p95/p99, req/s)
  feeding ``benchmarks/bench_serve.py`` and ``benchmarks/bench_http.py``;
- :mod:`repro.serve.http` — :class:`AssertHttpServer`: the stdlib
  JSON-over-HTTP transport (``POST /v1/solve``, ``POST /v1/eval``,
  ``GET /healthz`` / ``/statsz`` / ``/metricsz`` / ``/tracez``,
  ``DELETE /v1/solve/{request_id}``, graceful drain), carrying
  request traces across the wire via ``X-Repro-Trace-Id`` (see
  :mod:`repro.obs`);
- :mod:`repro.serve.codecs` — the one module owning every wire body:
  solve and eval request/response codecs plus the structured error
  envelope all three surfaces (server, client, router) share;
- :mod:`repro.serve.client` — :class:`AssertClient` /
  :class:`SolveHandle`: the wire twin of the in-process API, with
  client-initiated cancellation and ``eval()`` for pass@k runs;
- :mod:`repro.serve.router` — :class:`FleetRouter`: consistent-hash
  routing over N :class:`AssertHttpServer` backends on the same wire
  protocol (cache-affine key routing, health ejection/re-admission,
  429 spillover, fleet ``/statsz``, propagated drain).
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import ResultCache, content_key
from repro.serve.client import (
    AssertClient,
    ClientError,
    EvalFailed,
    SolveHandle,
)
from repro.serve.codecs import (
    error_body,
    eval_request_from_json,
    eval_request_to_json,
    eval_response_wire,
    request_from_json,
    request_to_json,
    response_from_json,
)
from repro.serve.http import AssertHttpServer, HttpConfig
from repro.serve.loadgen import (
    LoadReport,
    WorkloadSpec,
    build_workload,
    run_load,
)
from repro.serve.router import FleetRouter, HashRing, RouterConfig
from repro.serve.service import (
    AssertService,
    EvalRequest,
    EvalResponse,
    ScoredProposal,
    ServeConfig,
    ServiceClosed,
    ServiceOverloaded,
    ServiceStats,
    SolveOptions,
    SolveRequest,
    SolveResponse,
    solve_task,
)

__all__ = [
    "AssertClient",
    "AssertHttpServer",
    "AssertService",
    "BatcherStats",
    "ClientError",
    "EvalFailed",
    "EvalRequest",
    "EvalResponse",
    "FleetRouter",
    "HashRing",
    "HttpConfig",
    "LoadReport",
    "MicroBatcher",
    "ResultCache",
    "RouterConfig",
    "ScoredProposal",
    "ServeConfig",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceStats",
    "SolveHandle",
    "SolveOptions",
    "SolveRequest",
    "SolveResponse",
    "WorkloadSpec",
    "build_workload",
    "content_key",
    "error_body",
    "eval_request_from_json",
    "eval_request_to_json",
    "eval_response_wire",
    "request_from_json",
    "request_to_json",
    "response_from_json",
    "run_load",
    "solve_task",
]
