"""Wire codecs shared by the HTTP server, the client, and the router.

One module owns every byte that crosses the serving wire, so the three
transport surfaces cannot drift:

- The solve codecs (``request_to_json`` / ``request_from_json`` /
  ``response_from_json``) — a 200 body is **exactly**
  ``SolveResponse.to_json()``, byte-identical to the in-process
  serialization.
- The eval codecs (``eval_request_to_json`` / ``eval_request_from_json``
  / ``eval_report_from_json`` / ``eval_response_wire``) — a 200 body is
  exactly ``EvalReport.to_json()``, same guarantee.
- The structured error envelope (:func:`error_body`) every non-payload
  response uses, whether it came from a backend handler or was
  synthesized by the fleet router::

      {"code": <http status>, "detail": <human text>, "status": <tag>}

  ``status`` is the service-level status when one exists (``timeout``,
  ``cancelled``, ``unknown_model``) and ``"error"`` for transport
  refusals (400/404/413/429/500/503).

Parsers raise :class:`ValueError` on anything malformed; the handlers
map that to a 400.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.eval.cases import cases_from_json, cases_to_json
from repro.eval.config import EvalConfig
from repro.eval.report import EvalReport
from repro.serve.service import (
    EvalRequest,
    EvalResponse,
    ScoredProposal,
    SolveOptions,
    SolveRequest,
    SolveResponse,
)

__all__ = [
    "EVAL_STATUS_HTTP_CODES",
    "STATUS_HTTP_CODES",
    "error_body",
    "error_detail",
    "eval_report_from_json",
    "eval_request_from_json",
    "eval_request_to_json",
    "eval_response_wire",
    "request_from_json",
    "request_to_json",
    "response_from_json",
]

#: SolveResponse.status -> HTTP status code (the transport's one table).
STATUS_HTTP_CODES = {
    "ok": 200,
    "compile_error": 422,
    "timeout": 504,
    "cancelled": 409,
}

#: EvalResponse.status -> HTTP status code (the eval twin).
EVAL_STATUS_HTTP_CODES = {
    "ok": 200,
    "unknown_model": 404,
    "timeout": 504,
    "cancelled": 409,
}

#: SolveOptions fields a request body may set (anything else is a 400).
_OPTION_KEYS = ("hints", "mine_hints", "max_proposals", "hallucination_rate",
                "bmc_depth", "bmc_random_trials", "deadline_ms")

#: EvalConfig fields an eval request body may set.
_EVAL_CONFIG_KEYS = ("n_samples", "seed", "k_values", "semantic_check",
                     "deadline_ms")


# -- the shared error envelope -------------------------------------------------


def error_body(code: int, detail: str, status: str = "error") -> bytes:
    """The one error envelope every surface sends (router included)."""
    return json.dumps({"code": code, "detail": detail, "status": status},
                      sort_keys=True).encode("utf-8")


def error_detail(data) -> Tuple[str, str]:
    """Best-effort ``(detail, status)`` off an error body.

    Lenient by design — clients surface whatever a misbehaving proxy
    returned rather than masking it with a parse error."""
    try:
        payload = json.loads(data if isinstance(data, str)
                             else data.decode("utf-8", "replace"))
    except (json.JSONDecodeError, ValueError):
        return (data if isinstance(data, str)
                else data.decode("utf-8", "replace"), "error")
    if not isinstance(payload, dict):
        return str(payload), "error"
    detail = payload.get("detail", payload.get("error", ""))
    return str(detail), str(payload.get("status", "error"))


# -- solve codecs --------------------------------------------------------------


def request_to_json(request: SolveRequest) -> str:
    """The ``POST /v1/solve`` body for ``request`` (all options explicit)."""
    options = request.options
    return json.dumps({
        "design_source": request.design_source,
        "request_id": request.request_id,
        "options": {
            "hints": [list(h) for h in options.hints],
            "mine_hints": options.mine_hints,
            "max_proposals": options.max_proposals,
            "hallucination_rate": options.hallucination_rate,
            "bmc_depth": options.bmc_depth,
            "bmc_random_trials": options.bmc_random_trials,
            "deadline_ms": options.deadline_ms,
        },
    }, sort_keys=True)


def request_from_json(body: bytes) -> SolveRequest:
    """Parse and validate a ``POST /v1/solve`` body.

    Raises :class:`ValueError` (mapped to 400 by the handler) on
    anything malformed: bad JSON, a non-object payload, a missing or
    non-string ``design_source``, unknown option keys, or option values
    :meth:`SolveOptions.validate` rejects."""
    payload = _json_object(body)
    unknown = set(payload) - {"design_source", "request_id", "options"}
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    source = payload.get("design_source")
    if not isinstance(source, str) or not source:
        raise ValueError("design_source must be a non-empty string")
    request_id = payload.get("request_id", "")
    if not isinstance(request_id, str):
        raise ValueError(f"request_id must be a string, got {request_id!r}")

    raw_options = payload.get("options", {})
    if not isinstance(raw_options, dict):
        raise ValueError(
            f"options must be a JSON object, got {type(raw_options).__name__}")
    unknown = set(raw_options) - set(_OPTION_KEYS)
    if unknown:
        raise ValueError(f"unknown option fields: {sorted(unknown)}")
    fields = dict(raw_options)
    if "hints" in fields:
        hints = fields["hints"]
        if not isinstance(hints, list):
            raise ValueError("options.hints must be a list of 5-item lists")
        fields["hints"] = tuple(
            tuple(h) if isinstance(h, (list, tuple)) else h for h in hints)
    options = SolveOptions(**fields)
    options.validate()  # structured 400 here, never a stuck future later
    return SolveRequest(source, options, request_id=request_id)


def response_from_json(text: str) -> SolveResponse:
    """Rebuild a :class:`SolveResponse` from a transported body.

    Inverse of :meth:`SolveResponse.to_json`: re-serializing the result
    reproduces the input byte for byte, which is what lets clients (and
    tests) verify the transport never forked determinism."""
    data = json.loads(text)
    proposals = tuple(
        ScoredProposal(p["name"], p["property"], p["assertion"],
                       p["score"], p["origin"])
        for p in data["proposals"])
    return SolveResponse(data["status"], data["request_key"],
                         proposals=proposals, rejected=data["rejected"],
                         error=data["error"],
                         coverage=data.get("coverage"))


# -- eval codecs ---------------------------------------------------------------


def eval_request_to_json(request: EvalRequest) -> str:
    """The ``POST /v1/eval`` body for ``request`` (all knobs explicit)."""
    config = request.config
    return json.dumps({
        "model": request.model,
        "request_id": request.request_id,
        "config": {
            "n_samples": config.n_samples,
            "seed": config.seed,
            "k_values": list(config.k_values),
            "semantic_check": config.semantic_check,
            "deadline_ms": config.deadline_ms,
        },
        "cases": json.loads(cases_to_json(request.cases)),
    }, sort_keys=True)


def eval_request_from_json(body: bytes) -> EvalRequest:
    """Parse and validate a ``POST /v1/eval`` body (400 on ValueError)."""
    payload = _json_object(body)
    unknown = set(payload) - {"model", "request_id", "config", "cases"}
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    model = payload.get("model")
    if not isinstance(model, str) or not model:
        raise ValueError("model must be a non-empty registered model name")
    request_id = payload.get("request_id", "")
    if not isinstance(request_id, str):
        raise ValueError(f"request_id must be a string, got {request_id!r}")

    raw_config = payload.get("config", {})
    if not isinstance(raw_config, dict):
        raise ValueError(
            f"config must be a JSON object, got {type(raw_config).__name__}")
    unknown = set(raw_config) - set(_EVAL_CONFIG_KEYS)
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    fields = {name: value for name, value in raw_config.items()
              if value is not None or name != "deadline_ms"}
    try:
        config = EvalConfig(**fields)
    except TypeError as exc:
        raise ValueError(f"malformed config: {exc}") from None
    cases = cases_from_json(payload.get("cases"))
    return EvalRequest(model, cases, config, request_id=request_id)


def eval_report_from_json(text) -> EvalReport:
    """Rebuild an :class:`EvalReport` off the wire (byte-stable)."""
    return EvalReport.from_json(text)


def eval_response_wire(response: EvalResponse) -> Tuple[int, bytes]:
    """``(http code, body)`` for an in-process :class:`EvalResponse`.

    The 200 body is exactly ``report.to_json()`` — byte-identical to
    what an in-process ``run_eval`` serializes for the same content;
    every other status rides the shared error envelope with the
    service-level status tag."""
    if response.status == "ok":
        return 200, response.report.to_json().encode("utf-8")
    code = EVAL_STATUS_HTTP_CODES.get(response.status, 500)
    return code, error_body(code, response.error or response.status,
                            status=response.status)


def _json_object(body: bytes) -> Dict:
    try:
        payload = json.loads(body.decode("utf-8")
                             if isinstance(body, bytes) else body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"body must be a JSON object, got {type(payload).__name__}")
    return payload
