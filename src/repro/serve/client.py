"""Stdlib HTTP client for the :mod:`repro.serve.http` transport.

:class:`AssertClient` mirrors the in-process :class:`AssertService`
surface over the wire — ``solve`` blocks, ``submit`` returns a
:class:`SolveHandle` (the transport's stand-in for a ``Future``) with
``result()`` *and* ``cancel()``, and backpressure surfaces as the same
:class:`ServiceOverloaded` exception — so load generators and callers
swap transports without changing shape.  Responses parse back into real
:class:`SolveResponse` objects whose ``to_json()`` reproduces the wire
body byte for byte.
"""

from __future__ import annotations

import http.client
import json
import threading
import uuid
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import replace
from typing import Dict, Optional, Tuple, Union
from urllib.parse import quote

from repro.serve.codecs import (
    error_detail,
    eval_report_from_json,
    eval_request_to_json,
    request_to_json,
    response_from_json,
)
from repro.serve.service import (
    EvalRequest,
    ServiceClosed,
    ServiceOverloaded,
    SolveRequest,
    SolveResponse,
)

__all__ = ["AssertClient", "ClientError", "EvalFailed", "SolveHandle"]


def _query_suffix(**params: Optional[int]) -> str:
    parts = [f"{name}={value}" for name, value in params.items()
             if value is not None]
    return f"?{'&'.join(parts)}" if parts else ""


class ClientError(RuntimeError):
    """An HTTP outcome with no structured mapping (5xx, surprises)."""

    def __init__(self, status: int, body: str):
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class EvalFailed(RuntimeError):
    """A ``POST /v1/eval`` that resolved to a non-``ok`` service status.

    ``status`` carries the service-level tag off the error envelope
    (``unknown_model`` / ``timeout`` / ``cancelled``), ``code`` the HTTP
    status, ``detail`` the human text."""

    def __init__(self, code: int, detail: str, status: str):
        super().__init__(f"eval {status} (HTTP {code}): {detail}")
        self.code = code
        self.detail = detail
        self.status = status


class SolveHandle:
    """One in-flight HTTP solve: the wire twin of a ``Future``.

    ``result()`` joins the background request thread; ``cancel()``
    issues ``DELETE /v1/solve/{request_id}`` — a queued request is
    dropped server-side and the pending ``POST`` resolves to a
    ``status="cancelled"`` response.
    """

    def __init__(self, client: "AssertClient", request: SolveRequest):
        self._client = client
        self.request_id = request.request_id
        self._done = threading.Event()
        self._response: Optional[SolveResponse] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, args=(request,),
            name=f"solve-{self.request_id[:8]}", daemon=True)
        self._thread.start()

    def _run(self, request: SolveRequest) -> None:
        try:
            self._response = self._client.solve(request)
        except BaseException as exc:  # noqa: BLE001 - delivered by result()
            self._error = exc
        finally:
            self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> SolveResponse:
        if not self._done.wait(timeout):
            raise FutureTimeoutError(
                f"no response within {timeout}s (request still in flight)")
        if self._error is not None:
            raise self._error
        return self._response

    def cancel(self) -> int:
        """Ask the server to cancel this request; returns how many
        pending requests the tag matched (0 if already resolved)."""
        return self._client.cancel(self.request_id)


class AssertClient:
    """Talks to one :class:`repro.serve.http.AssertHttpServer`.

    Connections are opened per call — every method is safe to use from
    many threads at once (the load generator drives one client with N
    worker threads).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout_s: float = 300.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    @classmethod
    def for_server(cls, server, timeout_s: float = 300.0) -> "AssertClient":
        """A client aimed at a started :class:`AssertHttpServer`."""
        host, port = server.address
        return cls(host=host, port=port, timeout_s=timeout_s)

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 timeout: Optional[float] = None
                 ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout or self.timeout_s)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            lowered = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, lowered, data
        finally:
            conn.close()

    @staticmethod
    def _coerce(request: Union[SolveRequest, str]) -> SolveRequest:
        return SolveRequest(request) if isinstance(request, str) else request

    # -- the service surface, over the wire ----------------------------------

    def solve(self, request: Union[SolveRequest, str],
              timeout: Optional[float] = None) -> SolveResponse:
        """One blocking round trip; structured statuses come back as
        :class:`SolveResponse` objects, transport-level refusals raise
        (:class:`ServiceOverloaded` for 429, :class:`ValueError` for
        400/413, :class:`ServiceClosed` for 503).  Same signature as
        :meth:`AssertService.solve`, so synchronous callers (like the
        load generator) treat the two transports interchangeably."""
        request = self._coerce(request)
        status, headers, data = self._request(
            "POST", "/v1/solve", request_to_json(request).encode("utf-8"),
            timeout=timeout)
        if status in (200, 422, 504, 409):
            return response_from_json(data.decode("utf-8"))
        if status == 429:
            exc = ServiceOverloaded(data.decode("utf-8", "replace"))
            exc.retry_after_s = float(headers.get("retry-after", 1.0))
            raise exc
        if status in (400, 413):
            raise ValueError(f"request refused ({status}): "
                             f"{data.decode('utf-8', 'replace')}")
        if status == 503:
            raise ServiceClosed(data.decode("utf-8", "replace"))
        raise ClientError(status, data.decode("utf-8", "replace"))

    def eval(self, request: EvalRequest,
             timeout: Optional[float] = None):
        """One blocking ``POST /v1/eval`` round trip.

        A 200 parses into an :class:`repro.eval.EvalReport` whose
        ``to_json()`` reproduces the wire body byte for byte.  Service
        failures (404 unknown model, 504 timeout, 409 cancelled) raise
        :class:`EvalFailed` with the envelope's status tag; transport
        refusals map exactly as :meth:`solve`'s do."""
        status, headers, data = self._request(
            "POST", "/v1/eval", eval_request_to_json(request).encode("utf-8"),
            timeout=timeout)
        if status == 200:
            return eval_report_from_json(data)
        if status in (404, 504, 409):
            detail, service_status = error_detail(data)
            raise EvalFailed(status, detail, service_status)
        if status == 429:
            exc = ServiceOverloaded(data.decode("utf-8", "replace"))
            exc.retry_after_s = float(headers.get("retry-after", 1.0))
            raise exc
        if status in (400, 413):
            raise ValueError(f"request refused ({status}): "
                             f"{data.decode('utf-8', 'replace')}")
        if status == 503:
            raise ServiceClosed(data.decode("utf-8", "replace"))
        raise ClientError(status, data.decode("utf-8", "replace"))

    def submit(self, request: Union[SolveRequest, str]) -> SolveHandle:
        """Fire the solve on a background thread; the handle's
        ``request_id`` (auto-assigned when the request carries none) is
        the cancellation key."""
        request = self._coerce(request)
        if not request.request_id:
            request = replace(request, request_id=uuid.uuid4().hex)
        return SolveHandle(self, request)

    def cancel(self, request_id: str) -> int:
        status, _, data = self._request(
            "DELETE", f"/v1/solve/{quote(request_id, safe='')}")
        if status in (200, 404):
            return int(json.loads(data)["cancelled"])
        raise ClientError(status, data.decode("utf-8", "replace"))

    def healthz(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/healthz")
        payload = json.loads(data)
        payload["http_status"] = status
        return payload

    def statsz(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/statsz")
        if status != 200:
            raise ClientError(status, data.decode("utf-8", "replace"))
        return json.loads(data)

    def metricsz(self) -> str:
        """The server's Prometheus text exposition (``GET /metricsz``)."""
        status, _, data = self._request("GET", "/metricsz")
        if status != 200:
            raise ClientError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def tracez(self, limit: Optional[int] = None,
               slowest: Optional[int] = None) -> Dict[str, object]:
        """The server's recent + slowest traces (``GET /tracez``);
        ``limit`` / ``slowest`` become the endpoint's query params."""
        status, _, data = self._request(
            "GET", "/tracez" + _query_suffix(limit=limit, slowest=slowest))
        if status != 200:
            raise ClientError(status, data.decode("utf-8", "replace"))
        return json.loads(data)

    def covz(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The server's retained coverage reports (``GET /covz``)."""
        status, _, data = self._request(
            "GET", "/covz" + _query_suffix(limit=limit))
        if status != 200:
            raise ClientError(status, data.decode("utf-8", "replace"))
        return json.loads(data)
