"""AssertService: async request serving for assertion generation.

The batch pipeline answers "regenerate the whole paper"; this module
answers "here is one design, give me validated SVAs *now*" — the
request/response layer the ROADMAP's serving goal needs:

- :class:`SolveRequest` carries raw design source plus
  :class:`SolveOptions` (hint list, mining, hallucination rate, BMC
  budget).  Requests are content-addressed: every RNG stream the solve
  consumes derives from the request's SHA-256 key, so identical requests
  produce byte-identical responses no matter when, where, or in which
  batch they run.
- :meth:`AssertService.submit` enqueues onto a *bounded* queue and
  returns a ``Future``; a full queue raises :class:`ServiceOverloaded`
  immediately (backpressure — the caller sheds load or retries) instead
  of letting latency grow without bound.
- A :class:`repro.serve.batcher.MicroBatcher` consumer coalesces
  in-flight requests; each flush dedups them by content key, serves
  repeats from the :class:`repro.serve.cache.ResultCache`, and fans the
  remaining unique work units out over one
  :meth:`repro.engine.ExecutionEngine.map` call — workers share the
  process-wide compile cache, and each unit scores all of a design's
  proposals with one ``bounded_check_batch``-backed validation pass.
- :class:`ServiceStats` surfaces every counter an operator needs:
  queue/backpressure, batch shapes, cache hits, dedup wins, errors.

Malformed Verilog never crashes a worker: a request that does not
compile resolves to a structured ``compile_error`` response carrying the
compiler's diagnostics.
"""

from __future__ import annotations

import heapq
import itertools
import json
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import cov
from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta
from repro.engine import BACKENDS, ExecutionEngine, derive_rng
from repro.engine import metrics
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.eval.cases import cases_to_json
from repro.eval.config import EvalConfig
from repro.serve.batcher import MicroBatcher
from repro.sim.compiled import SIM_MODES
from repro.serve.cache import ResultCache, content_key
from repro.store import StoreConfig
from repro.sva.bmc import BmcConfig
from repro.sva.mine import mine_invariant_hints
from repro.verilog.compile import compile_source, configure_compile_cache

#: A hint as it travels inside a request: hashable, picklable, canonical.
#: ``(name, consequent, antecedent, delay, message)`` mirrors
#: :class:`SvaHint`'s constructor.
HintTuple = Tuple[str, str, Optional[str], int, str]


class ServiceOverloaded(RuntimeError):
    """The bounded request queue is full; retry later or shed load."""


class ServiceClosed(RuntimeError):
    """submit() after close()."""


def hint_to_tuple(hint: SvaHint) -> HintTuple:
    return (hint.name, hint.consequent, hint.antecedent, hint.delay,
            hint.message)


def hint_from_tuple(data: Sequence) -> SvaHint:
    name, consequent, antecedent, delay, message = data
    return SvaHint(name, consequent, antecedent=antecedent, delay=int(delay),
                   message=message)


@dataclass(frozen=True)
class SolveOptions:
    """Per-request knobs; part of the request's content key.

    ``hints`` feeds the oracle known-plausible properties (the loadgen
    fills it from corpus template metadata, standing in for an upstream
    LLM's raw proposals); with no hints and ``mine_hints=True`` the
    service mines candidates from the design structure instead.  Either
    way every proposal is re-validated with the bounded checker before it
    is served.
    """

    hints: Tuple[HintTuple, ...] = ()
    mine_hints: bool = True
    max_proposals: int = 8
    hallucination_rate: float = 0.0
    bmc_depth: int = 10
    bmc_random_trials: int = 24
    #: Wall-clock budget from ``submit()``; a request still unserved when
    #: it expires — waiting in the queue or sitting in a batch — resolves
    #: to a structured ``timeout`` response instead of blocking
    #: ``result()`` forever.  A QoS knob like ``request_id``, NOT part of
    #: the content key: differently-deadlined repeats still share cache
    #: entries and batch dedup, and timeout responses are never cached.
    deadline_ms: Optional[float] = None

    @classmethod
    def for_design(cls, design: DesignSeed, **overrides) -> "SolveOptions":
        """Options carrying the design's template hints."""
        hints = tuple(hint_to_tuple(h) for h in design.meta.sva_hints)
        return cls(hints=hints, **overrides)

    def validate(self) -> None:
        for hint in self.hints:
            try:
                parts = tuple(hint)
            except TypeError:
                parts = ()
            if len(parts) != 5:
                raise ValueError(f"hint tuples are (name, consequent, "
                                 f"antecedent, delay, message), got {hint!r}")
            name, consequent, antecedent, delay, message = parts
            if not (isinstance(name, str) and isinstance(consequent, str)
                    and isinstance(message, str)
                    and (antecedent is None or isinstance(antecedent, str))
                    and isinstance(delay, int)
                    and not isinstance(delay, bool)):
                raise ValueError(f"malformed hint tuple: {hint!r}")
        if not isinstance(self.max_proposals, int) \
                or isinstance(self.max_proposals, bool) \
                or self.max_proposals < 1:
            raise ValueError(f"max_proposals must be an integer >= 1, "
                             f"got {self.max_proposals!r}")
        if not 0.0 <= self.hallucination_rate <= 1.0:
            raise ValueError(f"hallucination_rate must be in [0, 1], "
                             f"got {self.hallucination_rate!r}")
        for name, minimum in (("bmc_depth", 1), ("bmc_random_trials", 0)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(
                    f"{name} must be an integer >= {minimum}, got {value!r}")
        if self.deadline_ms is not None \
                and (not isinstance(self.deadline_ms, (int, float))
                     or isinstance(self.deadline_ms, bool)
                     or self.deadline_ms <= 0):
            raise ValueError(f"deadline_ms must be a number > 0 or None, "
                             f"got {self.deadline_ms!r}")

    def canonical(self) -> str:
        """Stable text rendering, hashed into the request key.

        Deliberately excludes ``deadline_ms``: the deadline changes when
        a response is worth delivering, never what the response is."""
        return json.dumps({
            "hints": [list(h) for h in self.hints],
            "mine_hints": self.mine_hints,
            "max_proposals": self.max_proposals,
            "hallucination_rate": self.hallucination_rate,
            "bmc_depth": self.bmc_depth,
            "bmc_random_trials": self.bmc_random_trials,
        }, sort_keys=True)

    def hint_objects(self) -> List[SvaHint]:
        return [hint_from_tuple(h) for h in self.hints]


@dataclass(frozen=True)
class SolveRequest:
    """One unit of service traffic.

    ``request_id`` is a client-side tag for tracing; it is *not* part of
    the content key, so differently-tagged repeats still share cache
    entries and batch dedup.
    """

    design_source: str
    options: SolveOptions = field(default_factory=SolveOptions)
    request_id: str = ""

    def cache_key(self) -> str:
        return content_key(self.design_source, self.options.canonical())


class ScoredProposal:
    """One validated assertion, ready to insert into the design."""

    __slots__ = ("name", "property_text", "assertion_text", "score", "origin")

    def __init__(self, name: str, property_text: str, assertion_text: str,
                 score: float, origin: str):
        self.name = name
        self.property_text = property_text
        self.assertion_text = assertion_text
        self.score = score
        self.origin = origin  # "hint" | "mined"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "property": self.property_text,
                "assertion": self.assertion_text, "score": self.score,
                "origin": self.origin}

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScoredProposal({self.name}, score={self.score})"


class SolveResponse:
    """The deterministic result of one solve.

    ``status`` is ``"ok"``, ``"compile_error"``, ``"timeout"``, or
    ``"cancelled"``: a compile error carries the compiler's diagnostics
    in ``error`` (structured failure, not a crashed worker); a timeout
    means the request exceeded its ``SolveOptions.deadline_ms`` before
    being served; cancelled means the client abandoned it via
    :meth:`AssertService.cancel`.  Only the two deterministic statuses
    (``ok`` / ``compile_error``) are ever cached.
    ``request_key`` echoes the request's content
    key (design source + canonical options) so clients can correlate
    responses with submissions.  Deliberately carries no timing or host
    fields: identical requests must serialize to identical bytes
    (:meth:`to_json`), which is what makes result caching sound.

    ``coverage`` is telemetry, present only when the serving deployment
    runs with ``ServeConfig.coverage`` on: the coverage report the
    validating bounded checks produced, plus vacuity-penalized quality
    scores per served proposal.  It is a deterministic function of
    request content *given* the knob, and :meth:`to_json` omits the key
    entirely when it is absent — coverage-off deployments serialize to
    exactly the pre-coverage bytes.
    """

    __slots__ = ("status", "request_key", "proposals", "rejected", "error",
                 "coverage")

    def __init__(self, status: str, request_key: str,
                 proposals: Tuple[ScoredProposal, ...] = (),
                 rejected: int = 0, error: str = "",
                 coverage: Optional[Dict[str, object]] = None):
        self.status = status
        self.request_key = request_key
        self.proposals = proposals
        self.rejected = rejected
        self.error = error
        self.coverage = coverage

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> str:
        payload = {
            "status": self.status,
            "request_key": self.request_key,
            "proposals": [p.to_dict() for p in self.proposals],
            "rejected": self.rejected,
            "error": self.error,
        }
        if self.coverage is not None:
            payload["coverage"] = self.coverage
        return json.dumps(payload, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover
        if not self.ok:
            return f"SolveResponse({self.status})"
        return (f"SolveResponse(ok, {len(self.proposals)} proposals, "
                f"{self.rejected} rejected)")


class EvalRequest:
    """One evaluation job: a registered model name over submitted cases.

    The eval twin of :class:`SolveRequest` — same lifecycle (bounded
    queue, deadline timer, cancellation by ``request_id``), different
    payload.  ``model`` names a model previously installed with
    :meth:`AssertService.register_model`; the cases travel with the
    request, so any backend holding the model can serve it.

    Content-addressed like solves: :meth:`cache_key` hashes the model
    name, the canonical case rendering, and ``EvalConfig.canonical()``
    (which excludes ``deadline_ms``), so the fleet router sends repeats
    of one evaluation to the same backend — where the per-case memo in
    the artifact store makes the repeat cheap.
    """

    __slots__ = ("model", "cases", "config", "request_id", "_cases_json")

    def __init__(self, model: str, cases,
                 config: Optional[EvalConfig] = None, request_id: str = ""):
        if not isinstance(model, str) or not model:
            raise ValueError(
                "model must be a non-empty registered model name")
        self.model = model
        self.cases = list(cases)
        if not self.cases:
            raise ValueError("cases must be a non-empty list")
        self.config = config or EvalConfig()
        self.request_id = request_id
        self._cases_json: Optional[str] = None

    def cases_json(self) -> str:
        """Canonical case rendering (computed once, reused by the key)."""
        if self._cases_json is None:
            self._cases_json = cases_to_json(self.cases)
        return self._cases_json

    def cache_key(self) -> str:
        return content_key("eval", self.model, self.cases_json(),
                           self.config.canonical())


class EvalResponse:
    """The resolution of one :class:`EvalRequest`.

    ``status`` is ``"ok"`` (``report`` carries the
    :class:`repro.eval.EvalReport`), ``"unknown_model"`` (no registered
    model under that name), ``"timeout"``, or ``"cancelled"`` — the last
    two with the same semantics as their solve twins.
    """

    __slots__ = ("status", "request_key", "report", "error")

    def __init__(self, status: str, request_key: str, report=None,
                 error: str = ""):
        self.status = status
        self.request_key = request_key
        self.report = report
        self.error = error

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __repr__(self) -> str:  # pragma: no cover
        if not self.ok:
            return f"EvalResponse({self.status})"
        return f"EvalResponse(ok, {self.report!r})"


# -- the per-request work unit (module-level: picklable for process pools) ----


@dataclass(frozen=True)
class SolveTask:
    """Everything one worker needs to solve one unique request.

    ``sim_mode`` is deployment configuration, not request content: it
    selects the simulation tier (see :mod:`repro.sim.compiled`) and must
    never change the response, so it stays out of ``key`` — a cached
    response is valid under either mode.

    ``coverage`` is the same kind of knob: when on, the worker attaches
    the coverage report its validating checks already produced (no extra
    simulation) to the response.  Both tiers emit byte-identical
    reports, so it stays out of ``key`` too.

    ``trace_parent`` is the first waiter's inflight span context (a
    picklable ``(trace_id, span_id)`` tuple), carried so the worker's
    ``solve`` span lands in the request's trace.  Purely volatile: it
    never reaches ``key`` or the response, which stays a function of
    content alone.
    """

    key: str
    design_source: str
    options: SolveOptions
    seed: int
    sim_mode: str = "compiled"
    coverage: bool = False
    trace_parent: Optional[Tuple[str, str]] = None


def _score_hint(hint: SvaHint, design_signals: frozenset) -> float:
    """Deterministic quality proxy: signal coverage + temporal depth."""
    covered = len(set(hint.signals()) & design_signals)
    coverage = covered / max(1, len(design_signals))
    temporal = 0.2 if hint.antecedent is not None else 0.0
    return round(min(1.0, 0.2 + 0.6 * coverage + temporal), 4)


def _vacuity_scores(scored: "List[ScoredProposal]",
                    report: Dict[str, object]) -> Dict[str, float]:
    """Discount each proposal's structural score by how often its passes
    were vacuous during validation: a score of 0 means every observed
    pass held only because the antecedent never fired."""
    quality = report.get("assertions", {})
    out: Dict[str, float] = {}
    for proposal in scored:
        counters = quality.get(f"{proposal.name}_assertion")
        if not counters:
            out[proposal.name] = proposal.score
            continue
        real = counters.get("real_passes", 0)
        observed = real + counters.get("vacuous", 0)
        factor = (real / observed) if observed else 0.0
        out[proposal.name] = round(proposal.score * factor, 4)
    return out


def solve_task(task: SolveTask) -> SolveResponse:
    """Compile, propose, validate, score — one request end to end.

    Every random draw derives from ``(seed, "serve", key, ...)``, so the
    response is a pure function of the task (``trace_parent`` included —
    tracing observes, never steers): reorderable across batches, workers
    and backends, and safely cacheable by content key.
    """
    with obs_trace.span("solve", parent=task.trace_parent,
                        attrs={"key": task.key[:12]}):
        return _solve_task_inner(task)


def _solve_task_inner(task: SolveTask) -> SolveResponse:
    from repro.datagen.stage2 import validate_svas
    from repro.oracles.sva import SvaOracle

    options = task.options
    compiled = compile_source(task.design_source)
    if not compiled.ok:
        return SolveResponse("compile_error", task.key,
                             error=compiled.failure_summary())

    hints = options.hint_objects()
    origin = "hint"
    if not hints and options.mine_hints:
        hints = mine_invariant_hints(compiled.design,
                                     limit=options.max_proposals)
        origin = "mined"
    hints = hints[:options.max_proposals]
    if not hints:
        return SolveResponse("ok", task.key)

    seed_like = DesignSeed(
        "serve_design", task.design_source,
        TemplateMeta("serve", {}, "served design", [], hints))
    oracle = SvaOracle(derive_rng(task.seed, "serve", task.key, "oracle"),
                       hallucination_rate=options.hallucination_rate)
    proposals = oracle.propose(seed_like)
    bmc = BmcConfig(depth=options.bmc_depth,
                    random_trials=options.bmc_random_trials,
                    seed=task.seed, sim_mode=task.sim_mode,
                    coverage=task.coverage)
    coverage_out: Optional[dict] = {} if task.coverage else None
    valid, rejected = validate_svas(seed_like, proposals, bmc, mode="batched",
                                    coverage_out=coverage_out)

    design_signals = frozenset(compiled.design.symbols)
    scored = [ScoredProposal(p.name, p.property_text, p.assertion_text,
                             _score_hint(p.hint, design_signals), origin)
              for p in valid]
    scored.sort(key=lambda p: (-p.score, p.name))
    coverage = None
    if coverage_out:
        # The report the validating checks already produced — attaching
        # it costs no extra simulation, keeping the coverage knob off the
        # solve critical path.
        coverage = {"report": coverage_out,
                    "scores": _vacuity_scores(scored, coverage_out)}
    return SolveResponse("ok", task.key, proposals=tuple(scored),
                         rejected=rejected, coverage=coverage)


# -- configuration -------------------------------------------------------------


@dataclass
class ServeConfig:
    """Capacity and execution knobs for one :class:`AssertService`.

    Mirrors :class:`repro.datagen.pipeline.DatagenConfig`'s style: a
    validated dataclass whose execution knobs (workers, backend, caches,
    batching) never change responses — only how fast they arrive.
    """

    n_workers: int = 1
    backend: str = "auto"
    max_queue: int = 256
    max_batch: int = 16
    batch_window_ms: float = 10.0
    result_cache: bool = True
    cache_entries: int = 1024
    compile_cache: bool = True
    compile_cache_size: int = 4096
    sim_mode: str = "compiled"
    #: Collect toggle/block coverage and assertion-quality counters from
    #: every solve's validating checks.  A pure execution knob like
    #: ``sim_mode``: it never changes which proposals are served, only
    #: whether responses additionally carry a ``coverage`` block (and
    #: the ``/covz`` buffer fills).  Off by default so the serving hot
    #: path pays nothing for it.
    coverage: bool = False
    seed: int = 2025
    #: Persistent tier under the result cache (and, via the worker
    #: initializer, under every worker's compile cache).  Responses are
    #: byte-deterministic functions of request content, so a fleet of
    #: service instances pointed at one store directory safely pool
    #: responses: cached == recomputed.
    store: Optional[StoreConfig] = None

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        for name, minimum in (("n_workers", 1), ("max_queue", 1),
                              ("max_batch", 1), ("cache_entries", 1),
                              ("compile_cache_size", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise ValueError(
                    f"{name} must be an integer >= {minimum}, got {value!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.sim_mode not in SIM_MODES:
            raise ValueError(
                f"sim_mode must be one of {SIM_MODES}, got {self.sim_mode!r}")
        if not isinstance(self.coverage, bool):
            raise ValueError(
                f"coverage must be a bool, got {self.coverage!r}")
        if not isinstance(self.batch_window_ms, (int, float)) \
                or isinstance(self.batch_window_ms, bool) \
                or self.batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be a number >= 0, "
                             f"got {self.batch_window_ms!r}")
        if self.store is not None:
            if not isinstance(self.store, StoreConfig):
                raise ValueError(
                    f"store must be a StoreConfig or None, got {self.store!r}")
            self.store.validate()

    def compile_cache_settings(self) -> tuple:
        """The ``configure_compile_cache`` arguments this config implies —
        applied in worker processes (engine initializer) and, by
        :meth:`AssertService.start`, in the serving process itself, so
        the persistent compile tier also exists under the serial and
        thread backends where no initializer ever runs."""
        store_path = self.store.store_path() if self.store else ""
        store_bytes = self.store.max_bytes if store_path else 0
        return (self.compile_cache, self.compile_cache_size,
                store_path, store_bytes)

    def make_engine(self) -> ExecutionEngine:
        """Worker pool whose subprocesses inherit the compile-cache knobs."""
        return ExecutionEngine(
            n_workers=self.n_workers, backend=self.backend,
            initializer=configure_compile_cache,
            initargs=self.compile_cache_settings())


@dataclass
class ServiceStats:
    """One consistent snapshot of every service counter.

    ``queue_depth`` / ``inflight`` / ``queue_capacity`` are the
    saturation gauges: ``inflight`` counts requests accepted but not yet
    resolved (queued, batching, or computing), so operators and load
    tests can see pressure building *before* the bounded queue starts
    returning 429s.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    solved: int = 0
    deduped: int = 0
    compile_errors: int = 0
    timeouts: int = 0
    cancelled: int = 0
    evals: int = 0
    eval_cases: int = 0
    eval_memo_hits: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_store_hits: int = 0
    cache_entries: int = 0
    cache_hit_rate: float = 0.0
    store_entries: int = 0
    batches: int = 0
    batched_requests: int = 0
    mean_batch: float = 0.0
    max_batch: int = 0
    flush_size: int = 0
    flush_timeout: int = 0
    flush_drain: int = 0
    queue_depth: int = 0
    queue_capacity: int = 0
    inflight: int = 0
    backend: str = "serial"
    n_workers: int = 1

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class _Pending:
    """One accepted request in flight.

    The queue item handed to the batcher, the deadline-timer entry, and
    the cancellation registry all reference the same ``_Pending``, so
    whichever path resolves it first (flush, timer, cancel, close)
    claims it atomically under the service lock — the losers see
    ``claimed`` and back off instead of double-resolving the future.
    """

    __slots__ = ("request", "future", "expiry", "key", "claimed",
                 "created", "span", "queue_span", "batch_span")

    def __init__(self, request: SolveRequest, future: "Future",
                 expiry: Optional[float]):
        self.request = request
        self.future = future
        self.expiry = expiry  # time.monotonic() deadline, or None
        self.key = request.cache_key()
        self.claimed = False
        # Observability only, all volatile: the submit timestamp feeds
        # the latency histograms whether or not tracing is enabled; the
        # spans (inflight / queue-wait / batch-wait) are None when it is
        # not.  Whichever resolver claims the request also closes them.
        self.created = time.perf_counter()
        self.span = None
        self.queue_span = None
        self.batch_span = None


class _DeadlineTimer:
    """Monotonic-deadline timer wheel for queued requests.

    One daemon thread sleeps until the earliest registered expiry and
    fires the service's expire callback on it — so a request whose
    ``deadline_ms`` lapses *while it still waits in the queue* (or rides
    a forming batch) resolves to a structured timeout the moment it
    expires, instead of at the next batch flush.  The thread starts
    lazily on the first deadline-carrying submit and wakes whenever a
    new earliest deadline arrives.
    """

    #: Compact once at least this many resolved entries linger (and they
    #: are the majority) — keeps discard() O(1) amortized.
    COMPACT_FLOOR = 64

    def __init__(self, expire):
        self._expire = expire  # callback(_Pending)
        self._heap: List[Tuple[float, int, _Pending]] = []
        self._counter = itertools.count()
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._resolved = 0  # entries claimed elsewhere, still in the heap

    def add(self, pending: _Pending) -> None:
        with self._cond:
            if self._closed:
                return  # close() drains the queue and fails the future
            heapq.heappush(self._heap,
                           (pending.expiry, next(self._counter), pending))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="serve-deadline", daemon=True)
                self._thread.start()
            self._cond.notify()

    def _run(self) -> None:
        while True:
            pending = None
            with self._cond:
                while pending is None:
                    if self._closed:
                        return
                    if not self._heap:
                        self._cond.wait()
                        continue
                    if self._heap[0][2].claimed:
                        heapq.heappop(self._heap)  # resolved elsewhere
                        self._resolved = max(0, self._resolved - 1)
                        continue
                    delay = self._heap[0][0] - time.monotonic()
                    if delay <= 0:
                        pending = heapq.heappop(self._heap)[2]
                    else:
                        self._cond.wait(delay)
            # Fire outside the condition lock: the callback takes the
            # service lock and resolves a future.
            if not pending.claimed:
                self._expire(pending)

    def discard(self, pending: _Pending) -> None:
        """Note that ``pending`` resolved without expiring.

        Heaps cannot remove from the middle cheaply, so resolved entries
        are left in place and filtered out in bulk once they are the
        majority — otherwise a fleet of long-deadline requests that all
        resolve in milliseconds would pin their (request + response)
        payloads until each deadline lapsed."""
        with self._cond:
            self._resolved += 1
            if self._resolved >= self.COMPACT_FLOOR \
                    and self._resolved * 2 >= len(self._heap):
                self._heap = [entry for entry in self._heap
                              if not entry[2].claimed]
                heapq.heapify(self._heap)
                self._resolved = 0
                self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            thread, self._thread = self._thread, None
            self._heap.clear()
            self._cond.notify()
        if thread is not None:
            thread.join(timeout=5.0)


class AssertService:
    """Bounded-queue, micro-batched assertion service.

    Lifecycle::

        with AssertService(ServeConfig(n_workers=4)) as service:
            future = service.submit(SolveRequest(source))
            response = future.result()

    ``submit`` may be called before :meth:`start`; requests queue up (and
    exert backpressure) until the consumer starts draining.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.config.validate()
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_queue)
        self._store = (self.config.store.make_store()
                       if self.config.store is not None else None)
        self._cache = (ResultCache(self.config.cache_entries,
                                   store=self._store)
                       if self.config.result_cache else None)
        self._engine: Optional[ExecutionEngine] = None
        self._batcher: Optional[MicroBatcher] = None
        self._timer = _DeadlineTimer(self._expire_pending)
        # Per-service (not process-global) so co-located fleet backends
        # each retain only what they themselves solved — the router's
        # /covz merge then counts every report exactly once.
        self.cov_buffer = cov.CoverageBuffer()
        self._closed = False
        self._lock = threading.Lock()
        self._by_id: Dict[str, List[_Pending]] = {}
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._errors = 0
        self._solved = 0
        self._deduped = 0
        self._compile_errors = 0
        self._timeouts = 0
        self._cancelled = 0
        self._evals = 0
        self._eval_cases = 0
        self._eval_memo_hits = 0
        self._models: Dict[str, Tuple[object, str]] = {}
        self._previous_compile_cache: Optional[tuple] = None
        self.metrics = obs_metrics.MetricsRegistry()
        self._request_seconds = self.metrics.histogram(
            "repro_service_request_seconds",
            "Accepted-request latency, submit to resolution (any outcome).")
        self._queue_wait_seconds = self.metrics.histogram(
            "repro_service_queue_wait_seconds",
            "Time an accepted request waited before batch pickup.")
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose the existing counters through the metrics registry.

        Everything here is callback-backed — ``/metricsz`` reads the
        same bookkeeping ``stats()`` reports, so no number is maintained
        twice and registration costs the hot path nothing.
        """
        def reader(attr: str):
            return lambda: getattr(self, attr)

        for name in ("submitted", "completed", "rejected", "errors",
                     "solved", "deduped", "compile_errors", "timeouts",
                     "cancelled", "evals"):
            self.metrics.counter_callback(
                f"repro_service_{name}_total",
                f"Cumulative {name} requests.", reader(f"_{name}"))
        self.metrics.gauge_callback(
            "repro_service_queue_depth", "Requests waiting in the queue.",
            lambda: self._queue.qsize())
        self.metrics.gauge_callback(
            "repro_service_queue_capacity", "Bounded queue capacity.",
            lambda: self.config.max_queue)
        self.metrics.gauge_callback(
            "repro_service_inflight",
            "Accepted requests not yet resolved.",
            lambda: max(0, self._submitted - self._completed - self._errors))
        if self._cache is not None:
            self.metrics.counter_callback(
                "repro_service_cache_hits_total", "Result-cache hits.",
                lambda: self._cache.hits)
            self.metrics.counter_callback(
                "repro_service_cache_misses_total", "Result-cache misses.",
                lambda: self._cache.misses)
            self.metrics.gauge_callback(
                "repro_service_cache_entries", "Live result-cache entries.",
                lambda: len(self._cache))
        self.metrics.provider(
            "repro_engine",
            "Worker-side counter deltas accumulated by the engine.",
            self._engine_worker_totals)

    def _engine_worker_totals(self) -> Dict[str, int]:
        engine = self._engine
        if engine is None:
            return {}
        flat: Dict[str, int] = {}
        for provider, counters in engine.metric_totals().items():
            for key, value in counters.items():
                flat[f"{provider}_{key}"] = value
        return flat

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AssertService":
        if self._closed:
            raise ServiceClosed("service is closed")
        if self._batcher is not None:
            return self
        # Apply the compile-cache knobs (incl. the persistent store tier)
        # in this process too: under the serial and thread backends the
        # engine initializer never runs, and compilation happens right
        # here.  close() restores the previous settings.
        self._previous_compile_cache = configure_compile_cache(
            *self.config.compile_cache_settings())
        self._engine = self.config.make_engine()
        self._engine.warm()  # pool startup off the first request's latency
        self._batcher = MicroBatcher(
            self._queue, self._flush, max_batch=self.config.max_batch,
            window_s=self.config.batch_window_ms / 1000.0)
        self._batcher.start()
        return self

    def close(self) -> None:
        """Drain accepted requests, then release the worker pool.

        Requests the consumer never reached — enqueued before
        :meth:`start`, or racing past the ``_closed`` check behind the
        batcher's stop sentinel — get their futures failed with
        :class:`ServiceClosed` rather than left to hang a client."""
        with self._lock:
            # Flipped under the same lock submit() holds for its check:
            # once this block exits, no new request can enter the queue,
            # so the drain below is complete, not best-effort.
            if self._closed:
                return
            self._closed = True
        if self._batcher is not None:
            self._batcher.stop()
        self._timer.close()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Pending):
                self._fail(item, ServiceClosed(
                    "service closed before the request was served"))
        if self._engine is not None:
            self._engine.close()
        if self._previous_compile_cache is not None:
            configure_compile_cache(*self._previous_compile_cache)
            self._previous_compile_cache = None

    def __enter__(self) -> "AssertService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path --------------------------------------------------------

    def _coerce(self, request: Union[SolveRequest, str]) -> SolveRequest:
        if isinstance(request, str):
            request = SolveRequest(request)
        request.options.validate()
        return request

    def register_model(self, name: str, model) -> str:
        """Install ``model`` under ``name`` for ``POST /v1/eval`` traffic.

        Returns the model's content digest (the memo-key half), so
        operators can verify every fleet backend registered the same
        weights under the same name.  Re-registering a name replaces the
        model."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"model name must be a non-empty string, "
                             f"got {name!r}")
        from repro.eval.runner import model_digest

        digest = model_digest(model)
        with self._lock:
            self._models[name] = (model, digest)
        return digest

    def model_names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def submit(self, request: Union[SolveRequest, str]) -> "Future":
        """Enqueue one solve; the future resolves to a SolveResponse.

        Raises :class:`ServiceOverloaded` when the bounded queue is full
        and :class:`ServiceClosed` after :meth:`close`.
        """
        request = self._coerce(request)
        return self._submit_pending(request, request.options.deadline_ms)

    def submit_eval(self, request: EvalRequest) -> "Future":
        """Enqueue one evaluation; the future resolves to an EvalResponse.

        Same lifecycle as :meth:`submit`: bounded queue (429-style
        backpressure), deadline timer, cancellation by ``request_id``,
        batch dedup by content key."""
        if not isinstance(request, EvalRequest):
            raise ValueError(
                f"submit_eval takes an EvalRequest, "
                f"got {type(request).__name__}")
        request.config.validate()
        return self._submit_pending(request, request.config.deadline_ms)

    def _submit_pending(self, request: Union[SolveRequest, EvalRequest],
                        deadline: Optional[float]) -> "Future":
        """The shared accept path: solve and eval requests ride the same
        queue, timer, and cancellation registry."""
        future: "Future" = Future()
        expiry = (time.monotonic() + deadline / 1000.0
                  if deadline is not None else None)
        pending = _Pending(request, future, expiry)
        # Open the trace before any resolution path can see the request:
        # the inflight span roots the trace for in-process callers and
        # joins the HTTP server span's trace (the ambient context) when
        # one is active on this thread.
        if obs_trace.enabled():
            parent = obs_trace.current()
            trace_id = (parent.trace_id if parent is not None
                        else obs_trace.trace_id_for(pending.key,
                                                    request.request_id))
            attrs = ({"request_id": request.request_id}
                     if request.request_id else None)
            pending.span = obs_trace.begin(
                "request.inflight", parent=parent, trace_id=trace_id,
                root=parent is None, attrs=attrs)
            pending.queue_span = obs_trace.begin("queue.wait",
                                                 parent=pending.span)
        # Atomic closed-check + enqueue (put_nowait never blocks, so
        # holding the lock is safe): a submit can therefore never land
        # behind close()'s stop sentinel and be silently stranded.
        with self._lock:
            if self._closed:
                self._end_spans(pending, "closed")
                raise ServiceClosed("service is closed")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._rejected += 1
                self._end_spans(pending, "rejected")
                raise ServiceOverloaded(
                    f"request queue full ({self.config.max_queue} pending)"
                ) from None
            self._submitted += 1
            if request.request_id:
                self._by_id.setdefault(request.request_id, []).append(pending)
        if expiry is not None:
            self._timer.add(pending)
        return future

    def cancel(self, request_id: str) -> int:
        """Cancel every in-flight request tagged ``request_id``.

        A still-queued request is dropped — its batch slot never
        computes.  A request already riding a batch is abandoned: the
        computed response still lands in the result cache (it is a valid
        answer for future repeats) but is not delivered.  Either way the
        client's future resolves immediately to a structured
        ``status="cancelled"`` response.  Returns how many requests this
        call cancelled (0 for an unknown — or empty — tag).
        """
        if not request_id:
            return 0
        with self._lock:
            pendings = list(self._by_id.get(request_id, ()))
        cancelled = 0
        for pending in pendings:
            if self._finish(pending, self._cancelled_response_for(pending)):
                cancelled += 1
        return cancelled

    def solve(self, request: Union[SolveRequest, str],
              timeout: Optional[float] = None) -> SolveResponse:
        """Synchronous convenience: submit and wait."""
        if self._batcher is None:
            self.start()
        return self.submit(request).result(timeout)

    # -- resolution (exactly-once, any thread) -------------------------------

    def _finish(self, pending: _Pending, response: SolveResponse) -> bool:
        """Resolve ``pending`` with ``response`` if nobody else has.

        Exactly one resolver wins — flush, deadline timer, cancel, or
        close — decided by the ``claimed`` flag under the service lock.
        Counters update before the future resolves, so a client that
        wakes from ``result()`` and immediately reads ``stats()`` sees
        its own request counted."""
        with self._lock:
            if pending.claimed:
                return False
            pending.claimed = True
            self._completed += 1
            if response.status == "timeout":
                self._timeouts += 1
            elif response.status == "cancelled":
                self._cancelled += 1
            self._unregister_locked(pending)
        self._request_seconds.observe(time.perf_counter() - pending.created)
        self._end_spans(pending, response.status)
        if pending.expiry is not None and response.status != "timeout":
            self._timer.discard(pending)
        pending.future.set_result(response)
        return True

    def _fail(self, pending: _Pending, exc: BaseException) -> bool:
        """Exception twin of :meth:`_finish` (same claim discipline)."""
        with self._lock:
            if pending.claimed:
                return False
            pending.claimed = True
            self._errors += 1
            self._unregister_locked(pending)
        self._request_seconds.observe(time.perf_counter() - pending.created)
        self._end_spans(pending, "error")
        if pending.expiry is not None:
            self._timer.discard(pending)
        pending.future.set_exception(exc)
        return True

    @staticmethod
    def _end_spans(pending: _Pending, status: str) -> None:
        """Close whatever request spans are still open (end is
        idempotent, so racing with the batch-pickup close is safe)."""
        for span_obj in (pending.queue_span, pending.batch_span):
            if span_obj is not None:
                span_obj.end()
        if pending.span is not None:
            pending.span.end(status=status)

    def _unregister_locked(self, pending: _Pending) -> None:
        request_id = pending.request.request_id
        if not request_id:
            return
        waiters = self._by_id.get(request_id)
        if waiters is None:
            return
        try:
            waiters.remove(pending)
        except ValueError:
            pass
        if not waiters:
            del self._by_id[request_id]

    def _expire_pending(self, pending: _Pending) -> None:
        """Timer callback: the deadline lapsed before anything served it."""
        self._finish(pending, self._timeout_response_for(pending))

    @staticmethod
    def _timeout_response_for(
            pending: _Pending) -> Union[SolveResponse, EvalResponse]:
        """A kind-matched timeout: eval waiters get an EvalResponse."""
        error = "deadline_ms exceeded before the request was served"
        if isinstance(pending.request, EvalRequest):
            return EvalResponse("timeout", pending.key, error=error)
        return SolveResponse("timeout", pending.key, error=error)

    @staticmethod
    def _cancelled_response_for(
            pending: _Pending) -> Union[SolveResponse, EvalResponse]:
        if isinstance(pending.request, EvalRequest):
            return EvalResponse("cancelled", pending.key,
                                error="cancelled by client")
        return SolveResponse("cancelled", pending.key,
                             error="cancelled by client")

    # -- batch flush (batcher thread) ----------------------------------------

    def _flush(self, batch: List[_Pending], reason: str) -> None:
        """Serve one batch.  Must resolve every future, success or not:
        a stranded future hangs its client forever, which is worse than
        any error it could carry."""
        try:
            self._flush_inner(batch)
        except BaseException as exc:  # noqa: BLE001
            for pending in batch:
                self._fail(pending, exc)
            raise  # let the batcher count the flush error too

    def _flush_inner(self, batch: List[_Pending]) -> None:
        # Requests the deadline timer or a cancellation already resolved
        # drop out here, and a key all of whose waiters are gone is
        # never computed at all — a queued cancel or expiry saves its
        # compute entirely.
        groups: "OrderedDict[str, List[_Pending]]" = OrderedDict()
        eval_groups: "OrderedDict[str, List[_Pending]]" = OrderedDict()
        picked = time.perf_counter()
        for pending in batch:
            if pending.future.done():
                continue
            self._queue_wait_seconds.observe(picked - pending.created)
            if pending.span is not None:
                if pending.queue_span is not None:
                    pending.queue_span.end()
                pending.batch_span = obs_trace.begin("batch.wait",
                                                     parent=pending.span)
            target = (eval_groups if isinstance(pending.request, EvalRequest)
                      else groups)
            target.setdefault(pending.key, []).append(pending)

        dedup_extra = (sum(len(waiters) for waiters in groups.values())
                       + sum(len(waiters) for waiters in eval_groups.values())
                       - len(groups) - len(eval_groups))
        misses: List[str] = []
        for key, waiters in groups.items():
            cached = self._cache.get(key) if self._cache is not None else None
            if cached is not None:
                # Resolve hits now: a microsecond lookup must not wait
                # behind the batch's slowest cache-miss solve.
                for pending in waiters:
                    self._finish(pending, cached)
            else:
                misses.append(key)

        tasks = [SolveTask(key=key,
                           design_source=groups[key][0].request.design_source,
                           options=groups[key][0].request.options,
                           seed=self.config.seed,
                           sim_mode=self.config.sim_mode,
                           coverage=self.config.coverage,
                           trace_parent=(
                               groups[key][0].span.context_tuple()
                               if groups[key][0].span is not None else None))
                 for key in misses]
        with self._lock:
            self._deduped += dedup_extra
        try:
            results = (self._engine.map(solve_task, tasks, stage="serve")
                       if tasks else [])
        except BaseException as exc:  # noqa: BLE001 - fail futures, not thread
            for key in misses:
                for pending in groups[key]:
                    self._fail(pending, exc)
            return

        compile_errors = sum(1 for response in results if not response.ok)
        with self._lock:
            self._solved += len(tasks)
            self._compile_errors += compile_errors
        now = time.monotonic()
        for key, response in zip(misses, results):
            for pending in groups[key]:
                # Belt and braces: the timer normally fires first, but a
                # deadline that lapsed mid-compute must never see its
                # response delivered late just because the timer thread
                # has not been scheduled yet.
                if pending.expiry is not None and now > pending.expiry:
                    self._finish(pending, self._timeout_response_for(pending))
                else:
                    self._finish(pending, response)
        # Write-through last: a disk-backed cache put (pickle + rename +
        # index bookkeeping) must not sit on the response critical path.
        # The computed response is valid and cacheable even when its own
        # waiters timed out or were cancelled mid-batch — a later repeat
        # hits it.
        if self._cache is not None:
            for key, response in zip(misses, results):
                self._cache.put(key, response)
        # Retain coverage reports for /covz — only from fresh solves
        # (cache hits would double-count their design's counters).
        for response in results:
            if response.coverage is not None:
                report = response.coverage.get("report")
                if report:
                    self.cov_buffer.record(report)

        # Evals after solves: solves are the latency-sensitive traffic.
        # One compute per unique key serves every deduped waiter; repeats
        # across batches recompute only the aggregation — the per-case
        # outcomes come back from the store's eval/v1 memo.  Deliberately
        # NOT ResultCache'd: the response depends on which object is
        # registered under the model *name*, which a shared store cannot
        # see, whereas the per-case memo keys on the model's digest.
        for key, waiters in eval_groups.items():
            try:
                response = self._run_eval(waiters[0].request, key)
            except BaseException as exc:  # noqa: BLE001
                for pending in waiters:
                    self._fail(pending, exc)
                continue
            now = time.monotonic()
            for pending in waiters:
                if pending.expiry is not None and now > pending.expiry:
                    self._finish(pending, self._timeout_response_for(pending))
                else:
                    self._finish(pending, response)

    def _run_eval(self, request: EvalRequest, key: str) -> EvalResponse:
        """Resolve one unique eval key (batcher thread)."""
        with self._lock:
            entry = self._models.get(request.model)
        if entry is None:
            return EvalResponse(
                "unknown_model", key,
                error=f"no registered model named {request.model!r}")
        model, _digest = entry
        from repro.eval.runner import run_eval

        report = run_eval(model, request.cases, request.config,
                          engine=self._engine, store=self._store)
        with self._lock:
            self._evals += 1
            self._eval_cases += report.stats.get("cases", 0)
            self._eval_memo_hits += report.stats.get("memo_hits", 0)
        return EvalResponse("ok", key, report=report)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A point-in-time snapshot of the service counters.

        Counter fields are individually monotonic, but batcher/cache
        counters are read without pausing their writer threads, so
        derived ratios (``mean_batch``, ``cache_hit_rate``) can lag an
        in-flight request by one update."""
        stats = ServiceStats()
        with self._lock:
            stats.submitted = self._submitted
            stats.completed = self._completed
            stats.rejected = self._rejected
            stats.errors = self._errors
            stats.solved = self._solved
            stats.deduped = self._deduped
            stats.compile_errors = self._compile_errors
            stats.timeouts = self._timeouts
            stats.cancelled = self._cancelled
            stats.evals = self._evals
            stats.eval_cases = self._eval_cases
            stats.eval_memo_hits = self._eval_memo_hits
            stats.inflight = max(
                0, self._submitted - self._completed - self._errors)
        if self._cache is not None:
            stats.cache_hits = self._cache.hits
            stats.cache_misses = self._cache.misses
            stats.cache_store_hits = self._cache.store_hits
            stats.cache_entries = len(self._cache)
            stats.cache_hit_rate = round(self._cache.hit_rate, 4)
        if self._store is not None:
            stats.store_entries = len(self._store)
        if self._batcher is not None:
            snap = self._batcher.stats.snapshot()
            stats.batches = snap["batches"]
            stats.batched_requests = snap["items"]
            stats.mean_batch = snap["mean_batch"]
            stats.max_batch = snap["max_batch"]
            stats.flush_size = snap["flush_reasons"]["size"]
            stats.flush_timeout = snap["flush_reasons"]["timeout"]
            stats.flush_drain = snap["flush_reasons"]["drain"]
        stats.queue_depth = self._queue.qsize()
        stats.queue_capacity = self.config.max_queue
        if self._engine is not None:
            stats.backend = self._engine.backend
            stats.n_workers = self._engine.n_workers
        return stats

    def statsz(self) -> Dict[str, object]:
        """The operator payload behind ``GET /statsz``: the full
        :class:`ServiceStats` snapshot, the backing store's own counters
        (hit/miss/write/evict/corrupt) when one is attached, and the
        cumulative per-phase solve profile (``*_us`` wall-time counters
        for program compilation, simulation, monitoring and BMC) summed
        across worker processes when the engine pools."""
        payload: Dict[str, object] = {"service": self.stats().to_dict()}
        if self._store is not None:
            store_info = dict(self._store.counters())
            store_info["entries"] = len(self._store)
            payload["store"] = store_info
        else:
            payload["store"] = None
        profile = dict(metrics.profile_counters())
        if self._engine is not None and self._engine.backend == "process":
            for key, value in self._engine.metric_totals().get(
                    "solve_profile", {}).items():
                profile[key] = profile.get(key, 0) + value
        payload["solve_profile"] = profile
        coverage = dict(cov.coverage_counters())
        if self._engine is not None and self._engine.backend == "process":
            for key, value in self._engine.metric_totals().get(
                    "coverage", {}).items():
                coverage[key] = coverage.get(key, 0) + value
        payload["coverage"] = coverage
        return payload

    def covz(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The payload behind ``GET /covz``: this service's retained
        per-design coverage reports (most recent first), bounded like
        the trace buffer.  ``limit`` caps how many designs are
        returned."""
        return self.cov_buffer.snapshot(limit=limit)
