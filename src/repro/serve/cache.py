"""Content-hash LRU result cache for the serving layer.

Keyed exactly like :class:`repro.verilog.compile.CompileCache` — a SHA-256
content hash — but over the *request* (design source + canonical solve
options) and holding finished :class:`repro.serve.service.SolveResponse`
objects, so a repeat design is served without recompiling or re-running
the bounded checker at all.

Responses are deterministic functions of the request (every RNG stream
derives from the request's content hash), so serving a cached response is
byte-identical to recomputing it — asserted by the test suite and the
serve bench.  Cached responses are shared objects: treat them as
immutable, exactly like cached :class:`CompileResult` objects.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional


def content_key(*parts: str) -> str:
    """SHA-256 over length-prefixed parts (no separator collisions)."""
    digest = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        digest.update(str(len(data)).encode("ascii"))
        digest.update(b":")
        digest.update(data)
    return digest.hexdigest()


class ResultCache:
    """Thread-safe content-hash LRU of solve responses.

    Counters are monotonic (like :class:`CompileCache`'s) so deltas
    between snapshots are meaningful; they surface in
    :class:`repro.serve.service.ServiceStats`.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[object]:
        """The cached response for ``key``, counting a hit or a miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
            return None

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ResultCache({len(self._entries)}/{self.max_entries} "
                f"entries, {self.hits} hits, {self.misses} misses)")
