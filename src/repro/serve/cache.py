"""Content-hash LRU result cache for the serving layer.

Keyed exactly like :class:`repro.verilog.compile.CompileCache` — a SHA-256
content hash — but over the *request* (design source + canonical solve
options) and holding finished :class:`repro.serve.service.SolveResponse`
objects, so a repeat design is served without recompiling or re-running
the bounded checker at all.

Responses are deterministic functions of the request (every RNG stream
derives from the request's content hash), so serving a cached response is
byte-identical to recomputing it — asserted by the test suite and the
serve bench.  Cached responses are shared objects: treat them as
immutable, exactly like cached :class:`CompileResult` objects.

That same byte-determinism is what makes the optional persistent tier
sound: with a :class:`repro.store.DiskStore` attached (see
``ServeConfig.store``), responses spill to disk on write and refill from
it on a memory miss, letting multiple :class:`AssertService` instances —
across processes, restarts, and hosts sharing a filesystem — pool one
response set.  Cached == recomputed, so it never matters *which*
instance solved a request first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.store.base import NS_SERVE, content_key

__all__ = ["ResultCache", "content_key"]


class ResultCache:
    """Thread-safe content-hash LRU of solve responses.

    Counters are monotonic (like :class:`CompileCache`'s) so deltas
    between snapshots are meaningful; they surface in
    :class:`repro.serve.service.ServiceStats`.  With a backing ``store``,
    a memory miss consults it before reporting a miss (``store_hits``
    counts the refills — ``hits + store_hits + misses == lookups``) and
    every ``put`` writes through, so entries evicted from memory refill
    from the store instead of being lost.
    """

    def __init__(self, max_entries: int = 1024, store=None,
                 namespace: str = NS_SERVE):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def _insert_locked(self, key: str, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, key: str) -> Optional[object]:
        """The cached response for ``key``, counting a hit or a miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
        if self.store is not None:
            stored = self.store.get(self.namespace, key)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                    self._insert_locked(key, stored)
                return stored
        with self._lock:
            self.misses += 1
            return None

    def put(self, key: str, value: object) -> None:
        with self._lock:
            self._insert_locked(key, value)
        if self.store is not None:
            self.store.put(self.namespace, key, value)

    def clear(self) -> None:
        """Drop the in-memory tier (the backing store keeps its entries)."""
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "store_hits": self.store_hits}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.store_hits + self.misses
        return (self.hits + self.store_hits) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ResultCache({len(self._entries)}/{self.max_entries} "
                f"entries, {self.hits} hits, {self.misses} misses)")
