"""Fleet serving: a consistent-hash router over N :class:`AssertHttpServer`
backends, speaking the exact wire protocol of :mod:`repro.serve.http`.

A single instance (PR 5/6) is fast; the router makes N of them behave
like one bigger instance without forking the protocol or the bytes:

- **Consistent-hash routing on the request content key.**  The ring
  hashes ``SolveRequest.cache_key()`` — the same digest the service
  dedups and caches on — so repeat designs land on the backend whose
  ``ResultCache`` already holds them.  The fleet's per-instance caches
  then compose into one aggregate cache ~N times the size, which is
  where the fleet's throughput win comes from even before multi-core
  compute scaling (measured by ``benchmarks/bench_fleet.py``).
- **Health ejection with probed re-admission.**  A background probe
  hits every backend's ``/healthz``; failures eject the backend from
  *routing* but never from the *ring*, so when it is re-admitted the
  key->backend map — and therefore cache affinity — is exactly what it
  was before the blip.
- **429 spillover.**  A backend answering 429 (queue full) is healthy
  but busy: the router walks the key's ring order and offers the
  request to the next distinct backend.  Only if every backend refuses
  does the client see the final 429 (Retry-After relayed).  Spillover
  and connection-error failover are sound because responses are pure
  functions of the content key — re-executing a request elsewhere
  yields byte-identical bytes.
- **Fleet-wide ``/statsz``.**  Numeric fields of every backend's
  snapshot are summed into one fleet view (``service`` / ``store`` /
  ``solve_profile``), with per-backend snapshots and router counters
  alongside — ratios only make sense per backend, so read them there.
- **Graceful drain that propagates.**  ``close()`` stops accepting,
  lets in-flight forwards finish against still-live backends (handler
  threads are joined), and only then drains the backends themselves
  (when ``manage_backends=True``) — in-flight clients get real
  responses end to end.

The router is a pure execution layer: bodies it relays are the
backend's bytes verbatim, and bodies it must synthesize itself (400,
404, 413) reuse the single-instance handler's serialization so they
stay byte-identical too.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from bisect import bisect_right, insort
from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union
from urllib.parse import unquote, urlsplit

from repro import cov
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.codecs import eval_request_from_json, request_from_json
from repro.serve.http import (
    PROMETHEUS_CONTENT_TYPE,
    AssertHttpServer,
    _Handler,
    _query_int_params,
    _ThreadedHTTPServer,
)
from repro.serve.service import ServiceClosed

__all__ = [
    "FleetRouter",
    "HashRing",
    "RouterConfig",
]


# -- consistent-hash ring ------------------------------------------------------


class HashRing:
    """Consistent-hash ring with virtual nodes (sha256 points).

    Nodes and keys hash onto one 64-bit circle; a key is owned by the
    first node point clockwise of its own hash.  ``replicas`` virtual
    points per node keep the shares balanced, and adding or removing a
    node only moves the ~1/N of keys on the arcs it gains or cedes —
    every other key keeps its owner, which is what keeps fleet cache
    affinity stable as backends come and go (asserted by tests).
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64):
        if not isinstance(replicas, int) or isinstance(replicas, bool) \
                or replicas < 1:
            raise ValueError(f"replicas must be an integer >= 1, "
                             f"got {replicas!r}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(sha256(value.encode("utf-8")).digest()[:8],
                              "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            insort(self._points, (self._hash(f"{node}#{replica}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def candidates(self, key: str) -> Iterator[str]:
        """Every node exactly once, in ring order from ``key``'s point:
        the owner first, then the spillover/failover order."""
        if not self._points:
            return
        start = bisect_right(self._points, (self._hash(key), "\U0010ffff"))
        seen: set = set()
        total = len(self._points)
        for step in range(total):
            node = self._points[(start + step) % total][1]
            if node not in seen:
                seen.add(node)
                yield node
                if len(seen) == len(self._nodes):
                    return

    def node_for(self, key: str) -> Optional[str]:
        """The owning node for ``key`` (``None`` on an empty ring)."""
        return next(self.candidates(key), None)


# -- config --------------------------------------------------------------------


@dataclass
class RouterConfig:
    """Router knobs (per-backend knobs live in ``ServeConfig``/``HttpConfig``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral: read the bound port off the router
    #: Bodies above this are refused with 413 before being read (same
    #: default as ``HttpConfig`` so router and backend agree).
    max_body_bytes: int = 1 << 20
    #: How long one forwarded solve may take before the router gives up
    #: on that backend and fails over to the next ring candidate.
    forward_timeout_s: float = 300.0
    #: Socket budget for ``/healthz`` and ``/statsz`` probes.
    probe_timeout_s: float = 2.0
    #: Background health-probe period.  Probes are also how ejected
    #: backends get re-admitted, so this bounds the re-admission lag.
    health_interval_s: float = 1.0
    #: Virtual points per backend on the hash ring.
    ring_replicas: int = 64

    def validate(self) -> None:
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be an integer in [0, 65535], "
                             f"got {self.port!r}")
        for name in ("max_body_bytes", "ring_replicas"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be an integer >= 1, got {value!r}")
        for name in ("forward_timeout_s", "probe_timeout_s",
                     "health_interval_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                raise ValueError(
                    f"{name} must be a number > 0, got {value!r}")


# -- backend slots -------------------------------------------------------------


class _BackendSlot:
    """One routed backend: its address, health, and counters."""

    __slots__ = ("server", "host", "port", "name", "healthy", "forwarded",
                 "ejections", "readmissions", "last_error")

    def __init__(self, host: str, port: int,
                 server: Optional[AssertHttpServer] = None,
                 name: Optional[str] = None):
        self.server = server
        self.host = host
        self.port = port
        self.name = name
        self.healthy = True
        self.forwarded = 0
        self.ejections = 0
        self.readmissions = 0
        self.last_error = ""

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def node(self) -> str:
        """Ring identity: the stable name when one was given (so the
        key->backend map survives a backend restarting on a new port),
        else the address."""
        return self.name or self.address


#: Anything the router can front: a (managed or external) server object,
#: a "host:port" string, or a (host, port) tuple.
BackendSpec = Union[AssertHttpServer, str, Tuple[str, int]]


def _resolve_backend(spec: BackendSpec,
                     name: Optional[str] = None) -> _BackendSlot:
    if isinstance(spec, AssertHttpServer):
        host, port = spec.address  # raises if the server never started
        return _BackendSlot(host, port, server=spec, name=name)
    if isinstance(spec, str):
        host, _, port_text = spec.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"backend address must look like "
                             f"'host:port', got {spec!r}")
        return _BackendSlot(host, int(port_text), name=name)
    if isinstance(spec, tuple) and len(spec) == 2:
        return _BackendSlot(str(spec[0]), int(spec[1]), name=name)
    raise TypeError(f"backend must be an AssertHttpServer, 'host:port' "
                    f"string, or (host, port) tuple, got {type(spec).__name__}")


# -- handler -------------------------------------------------------------------


class _RouterHandler(_Handler):
    """Wire-compatible front door: same codes, same bodies.

    Inherits the single-instance handler's serialization helpers so any
    body the router synthesizes itself (400/404/413/503) is built by
    the very code a lone backend would use.
    """

    server_version = "repro-fleet/1"

    @property
    def ctx(self) -> "FleetRouter":  # type: ignore[override]
        return self.server.ctx

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/solve":
            parse = request_from_json
        elif self.path == "/v1/eval":
            parse = eval_request_from_json
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")
            return
        ctx = self.ctx
        if ctx.draining:
            self.close_connection = True
            self._send_error_json(503, "server is draining")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            self._send_error_json(400, "missing or invalid Content-Length")
            return
        if length > ctx.config.max_body_bytes:
            self.close_connection = True
            self._send_error_json(
                413, f"body of {length} bytes exceeds the "
                     f"{ctx.config.max_body_bytes}-byte limit")
            return
        body = self.rfile.read(length)

        # Validate locally with the backend's own parser: malformed
        # bodies get the identical 400 a lone instance would send, and
        # well-formed ones yield the content key the ring routes on —
        # eval repeats therefore land on the backend whose store memo
        # already holds their per-case outcomes.
        try:
            request = parse(body)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return

        # The router roots (or continues) the request's trace; every
        # forward below injects X-Repro-Trace-Id, so the backend's
        # server span — and everything under it — joins this trace.
        incoming_id, incoming_parent = obs_trace.parse_trace_header(
            self.headers.get(obs_trace.TRACE_HEADER, ""))
        trace_id = incoming_id or obs_trace.trace_id_for(
            request.cache_key(), request.request_id)
        with obs_trace.span("fleet.route", parent=incoming_parent,
                            trace_id=trace_id, root=True) as route_span:
            routed = ctx.route_post(self.path, request.cache_key(), body)
            if routed is None:
                self.close_connection = True
                self._send_error_json(503, "no healthy backends")
                return
            status, headers, data = routed
            if route_span is not None:
                route_span.attrs["code"] = status
            relay: Dict[str, str] = {}
            if "retry-after" in headers:
                relay["Retry-After"] = headers["retry-after"]
            # The backend's bytes, verbatim: routing never re-serializes.
            self._send_body(status, data, relay or None)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        ctx = self.ctx
        parsed = urlsplit(self.path)
        try:
            params = _query_int_params(parsed.query)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        route = parsed.path
        if route == "/healthz":
            healthy, total = ctx.health()
            fleet = {"healthy": healthy, "total": total}
            if ctx.draining:
                self.close_connection = True
                self._send_json(503, {"status": "draining",
                                      "backends": fleet})
            elif healthy == 0:
                self._send_json(503, {"status": "unavailable",
                                      "backends": fleet})
            else:
                self._send_json(200, {"status": "ok", "backends": fleet})
        elif route == "/statsz":
            self._send_json(200, ctx.statsz())
        elif route == "/metricsz":
            self._send_body(200, ctx.metricsz().encode("utf-8"),
                            content_type=PROMETHEUS_CONTENT_TYPE)
        elif route == "/tracez":
            self._send_json(200, ctx.tracez(limit=params.get("limit"),
                                            slowest=params.get("slowest")))
        elif route == "/covz":
            self._send_json(200, ctx.covz(limit=params.get("limit")))
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        for prefix in ("/v1/solve/", "/v1/eval/"):
            if self.path.startswith(prefix):
                break
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")
            return
        request_id = unquote(self.path[len(prefix):])
        if not request_id:
            self._send_error_json(400, "missing request_id")
            return
        cancelled = self.ctx.cancel_broadcast(request_id)
        self._send_json(200 if cancelled else 404,
                        {"request_id": request_id, "cancelled": cancelled})


# -- router --------------------------------------------------------------------


def _merge_numeric(total: Dict[str, float], payload: Dict[str, object]) -> None:
    """Sum ``payload``'s numeric fields into ``total`` (bools/strings skipped)."""
    for key, value in payload.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        total[key] = total.get(key, 0) + value


def _diag_query(**params: Optional[int]) -> str:
    """Rebuild the ``?limit=N&slowest=N`` suffix a fan-out forwards."""
    parts = [f"{name}={value}" for name, value in params.items()
             if value is not None]
    return f"?{'&'.join(parts)}" if parts else ""


class FleetRouter:
    """A consistent-hash HTTP router over N solve backends.

    Lifecycle::

        router = FleetRouter(backends, RouterConfig())   # or make_fleet()
        with router as r:
            client = AssertClient.for_server(r)          # same protocol
            ...
        # close(): stop accepting, finish in-flight forwards, then
        # drain the backends themselves (when manage_backends=True).

    ``backends`` may be server objects, ``"host:port"`` strings, or
    ``(host, port)`` tuples.  With ``manage_backends=True`` the router
    starts and drains the server objects with itself; address-only
    backends are always externally owned.

    ``node_names`` (optional, one per backend) fixes each backend's
    identity on the hash ring.  Without names the ring hashes the
    backend's ``host:port``; with names the key->backend map is
    independent of which (possibly ephemeral) port a backend bound, so
    cache affinity survives a backend restarting on a new address —
    ``make_fleet()`` names its backends ``backend-0..N-1``.
    """

    def __init__(self, backends: Sequence[BackendSpec],
                 config: Optional[RouterConfig] = None,
                 manage_backends: bool = False,
                 node_names: Optional[Sequence[str]] = None):
        if not backends:
            raise ValueError("FleetRouter needs at least one backend")
        if node_names is not None:
            names = list(node_names)
            if len(names) != len(backends):
                raise ValueError(
                    f"node_names must match backends: {len(names)} names "
                    f"for {len(backends)} backends")
            if any(not isinstance(name, str) or not name for name in names):
                raise ValueError("node_names must be non-empty strings")
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate node names: {names}")
            self._node_names: Optional[List[str]] = names
        else:
            self._node_names = None
        self.config = config or RouterConfig()
        self.config.validate()
        self.manage_backends = manage_backends
        self.draining = False
        self._backends: List[BackendSpec] = list(backends)
        self._slots: List[_BackendSlot] = []
        self._by_node: Dict[str, _BackendSlot] = {}
        self._ring: Optional[HashRing] = None
        self._lock = threading.Lock()
        self._routed = 0
        self._spillovers = 0
        self._failovers = 0
        self._no_backend = 0
        self._cancel_broadcasts = 0
        self._httpd: Optional[_ThreadedHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._health_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        self.metrics = obs_metrics.MetricsRegistry()
        self._http_requests = self.metrics.counter_family(
            "repro_http_requests_total", "HTTP responses sent.",
            ("handler", "code"))
        self._http_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "Request handling time, request line to body written.")
        self._forward_seconds = self.metrics.histogram(
            "repro_router_forward_seconds",
            "Solve-forward round trip to a backend (success or failure).")
        for name in ("routed", "spillovers", "failovers", "no_backend",
                     "cancel_broadcasts"):
            self.metrics.counter_callback(
                f"repro_router_{name}_total", f"Router {name} count.",
                (lambda attr: lambda: getattr(self, attr))(f"_{name}"))
        # Health-churn counters live on the slots (stats() sums them the
        # same way), so operators see ejections/readmissions next to
        # spillovers/failovers on /metricsz.
        for name in ("ejections", "readmissions"):
            self.metrics.counter_callback(
                f"repro_router_{name}_total",
                f"Backend {name} across the fleet.",
                (lambda attr: lambda: self._slot_total(attr))(name))
        self.metrics.gauge_callback(
            "repro_router_backends_healthy", "Backends currently routed to.",
            lambda: self.health()[0])
        self.metrics.gauge_callback(
            "repro_router_backends_total", "Backends on the ring.",
            lambda: self.health()[1])

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetRouter":
        if self._closed:
            raise ServiceClosed("fleet router is closed")
        if self._httpd is not None:
            return self
        if self.manage_backends:
            for spec in self._backends:
                if isinstance(spec, AssertHttpServer):
                    spec.start()
        self._slots = [
            _resolve_backend(
                spec,
                self._node_names[i] if self._node_names else None)
            for i, spec in enumerate(self._backends)]
        addresses = [slot.address for slot in self._slots]
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate backend addresses: {addresses}")
        nodes = [slot.node for slot in self._slots]
        self._by_node = {slot.node: slot for slot in self._slots}
        self._ring = HashRing(nodes, replicas=self.config.ring_replicas)
        self.probe()  # address-only backends that are down start ejected
        self._httpd = _ThreadedHTTPServer(
            (self.config.host, self.config.port), _RouterHandler)
        self._httpd.ctx = self  # type: ignore[assignment]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="fleet-router-accept",
            daemon=True)
        self._thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="fleet-router-health", daemon=True)
        self._health_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("router not started")
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def backends(self) -> List[BackendSpec]:
        return list(self._backends)

    def close(self) -> None:
        """Graceful drain, propagated: stop accepting, let in-flight
        forwards finish against still-live backends (``server_close``
        joins the non-daemon handler threads), then drain the backends
        themselves — so a client mid-solve gets its real response from
        the backend, through the router, before anything shuts down."""
        if self._closed:
            return
        self._closed = True
        self.draining = True
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=30)
            self._httpd.server_close()  # joins in-flight handler threads
        if self._health_thread is not None:
            self._health_thread.join(timeout=10)
        if self.manage_backends:
            for spec in self._backends:
                if isinstance(spec, AssertHttpServer):
                    spec.close()

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- health --------------------------------------------------------------

    def _health_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval_s):
            if self.draining:
                return
            self.probe()

    def probe(self) -> Tuple[int, int]:
        """One synchronous health round over every backend.

        Ejects backends whose ``/healthz`` fails, re-admits ones that
        answer again, and returns ``(healthy, total)``.  The background
        loop calls this every ``health_interval_s``; tests and drains
        can call it directly for a deterministic round."""
        for slot in self._slots:
            try:
                status, _, _ = self._forward(
                    slot, "GET", "/healthz", None,
                    self.config.probe_timeout_s)
                ok = status == 200
                error = "" if ok else f"healthz returned {status}"
            except (OSError, http.client.HTTPException) as exc:
                ok = False
                error = f"healthz probe failed: {type(exc).__name__}"
            if ok:
                self._readmit(slot)
            else:
                self._eject(slot, error)
        return self.health()

    def health(self) -> Tuple[int, int]:
        """``(healthy, total)`` backend counts, from current state."""
        with self._lock:
            healthy = sum(1 for slot in self._slots if slot.healthy)
            return healthy, len(self._slots)

    def _slot_total(self, attr: str) -> int:
        with self._lock:
            return sum(getattr(slot, attr) for slot in self._slots)

    def _eject(self, slot: _BackendSlot, reason: str) -> None:
        with self._lock:
            slot.last_error = reason
            if slot.healthy:
                slot.healthy = False
                slot.ejections += 1

    def _readmit(self, slot: _BackendSlot) -> None:
        with self._lock:
            if not slot.healthy:
                slot.healthy = True
                slot.readmissions += 1
                slot.last_error = ""

    # -- routing -------------------------------------------------------------

    def candidates_for(self, key: str) -> List[str]:
        """The full ring order for ``key`` — owner first, then the
        spillover order (health is applied at routing time, not here)."""
        if self._ring is None:
            raise RuntimeError("router not started")
        return list(self._ring.candidates(key))

    def _forward(self, slot: _BackendSlot, method: str, path: str,
                 body: Optional[bytes], timeout: float
                 ) -> Tuple[int, Dict[str, str], bytes]:
        conn = http.client.HTTPConnection(slot.host, slot.port,
                                          timeout=timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            # Trace continuation: when this forward happens inside a
            # request span (fleet.route / fleet.forward), tell the
            # backend the trace it belongs to.  Health and stats probes
            # run outside any span and stay headerless.
            trace_ctx = obs_trace.current()
            if trace_ctx is not None:
                headers[obs_trace.TRACE_HEADER] = \
                    obs_trace.format_trace_header(trace_ctx)
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            lowered = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, lowered, data
        finally:
            conn.close()

    def route_solve(self, key: str, body: bytes
                    ) -> Optional[Tuple[int, Dict[str, str], bytes]]:
        """Back-compat alias: route one solve body (see :meth:`route_post`)."""
        return self.route_post("/v1/solve", key, body)

    def route_post(self, path: str, key: str, body: bytes
                   ) -> Optional[Tuple[int, Dict[str, str], bytes]]:
        """Forward one POST body along ``key``'s ring order.

        Works for both wire kinds (``/v1/solve`` and ``/v1/eval``) —
        the ring hashes the request's content key either way, so solve
        repeats find their owner's ``ResultCache`` and eval repeats find
        their owner's per-case store memo.  Healthy candidates are tried
        in ring order: the owner first, then spillover on 429 and
        failover on connection errors — both sound because responses are
        pure functions of the content key.  Returns the first non-429
        backend answer, the last 429 if every backend is saturated, or
        ``None`` when no healthy backend answered at all (mapped to
        503)."""
        last_overloaded: Optional[Tuple[int, Dict[str, str], bytes]] = None
        for node in self.candidates_for(key):
            slot = self._by_node[node]
            if not slot.healthy:
                continue
            started = time.perf_counter()
            try:
                with obs_trace.span("fleet.forward",
                                    attrs={"node": slot.node}):
                    status, headers, data = self._forward(
                        slot, "POST", path, body,
                        self.config.forward_timeout_s)
            except (OSError, http.client.HTTPException) as exc:
                # Dead or wedged: eject now (the probe re-admits after
                # recovery) and re-offer the request to the next node.
                self._forward_seconds.observe(time.perf_counter() - started)
                self._eject(slot, f"forward failed: {type(exc).__name__}")
                with self._lock:
                    self._failovers += 1
                continue
            self._forward_seconds.observe(time.perf_counter() - started)
            if status == 429:
                last_overloaded = (status, headers, data)
                with self._lock:
                    self._spillovers += 1
                continue
            with self._lock:
                self._routed += 1
                slot.forwarded += 1
            return status, headers, data
        if last_overloaded is not None:
            return last_overloaded
        with self._lock:
            self._no_backend += 1
        return None

    def cancel_broadcast(self, request_id: str) -> int:
        """``DELETE`` fan-out: the router cannot recover the content key
        from a request id, so cancellation asks every backend and sums
        the ``cancelled`` counts (at most one backend holds the id)."""
        with self._lock:
            self._cancel_broadcasts += 1
        total = 0
        for slot in self._slots:
            try:
                status, _, data = self._forward(
                    slot, "DELETE", f"/v1/solve/{request_id}", None,
                    self.config.probe_timeout_s)
            except (OSError, http.client.HTTPException) as exc:
                self._eject(slot, f"cancel failed: {type(exc).__name__}")
                continue
            if status in (200, 404):
                try:
                    total += int(json.loads(data).get("cancelled", 0))
                except (ValueError, TypeError):
                    pass
        return total

    # -- observability -------------------------------------------------------

    def observe_http(self, handler: str, code: int,
                     started: Optional[float]) -> None:
        """Per-response bookkeeping, called by the handler on every send."""
        self._http_requests.labels(handler=handler, code=str(code)).inc()
        if started is not None:
            self._http_seconds.observe(time.perf_counter() - started)

    def metricsz(self) -> str:
        """The fleet-wide ``GET /metricsz`` exposition.

        Every backend's own exposition is fetched and merged — samples
        with identical ``name{labels}`` sum, so counters and histogram
        buckets aggregate fleet-wide — then the router's registry is
        appended.  The router's copy of the process-global provider
        section is left out: backends already expose their own, and in
        the single-process ``make_fleet()`` shape those are one shared
        set of counters (so, as with the summed ``/statsz`` profile,
        N co-located backends count shared state N times)."""
        texts: List[str] = []
        for slot in self._slots:
            try:
                status, _, data = self._forward(
                    slot, "GET", "/metricsz", None,
                    self.config.probe_timeout_s)
                if status == 200:
                    texts.append(data.decode("utf-8"))
            except (OSError, http.client.HTTPException) as exc:
                self._eject(slot, f"metricsz probe failed: "
                                  f"{type(exc).__name__}")
        texts.append(obs_metrics.render_prometheus(
            [self.metrics], include_providers=False))
        return obs_metrics.merge_expositions(texts)

    def tracez(self, limit: Optional[int] = None,
               slowest: Optional[int] = None) -> Dict[str, object]:
        """The fleet-wide ``GET /tracez`` payload.

        Backend trace summaries merge with the router's own buffer by
        trace id (span-deduplicated), so a routed request — one trace
        spread across the router and a backend — reads as a single
        record with the router, HTTP, service, and solve spans.
        ``limit`` / ``slowest`` cap the merged lists and are forwarded
        to every backend, bounding the fan-out payloads too."""
        local = obs_trace.buffer().snapshot()
        recent = list(local["recent"])
        slow_records = list(local["slowest"])
        reached = 0
        query = _diag_query(limit=limit, slowest=slowest)
        for slot in self._slots:
            try:
                status, _, data = self._forward(
                    slot, "GET", f"/tracez{query}", None,
                    self.config.probe_timeout_s)
                payload = json.loads(data) if status == 200 else None
            except (OSError, http.client.HTTPException) as exc:
                self._eject(slot, f"tracez probe failed: "
                                  f"{type(exc).__name__}")
                continue
            except ValueError:
                continue
            if not isinstance(payload, dict):
                continue
            reached += 1
            recent.extend(payload.get("recent") or ())
            slow_records.extend(payload.get("slowest") or ())
        merged_recent = obs_trace.merge_trace_records(recent)
        merged_slowest = obs_trace.merge_trace_records(slow_records)
        merged_slowest.sort(key=lambda r: -float(r.get("duration_ms") or 0.0))
        if limit is not None:
            merged_recent = merged_recent[:limit]
        if slowest is not None:
            merged_slowest = merged_slowest[:slowest]
        return {
            "enabled": local["enabled"],
            "backends_reached": reached,
            "recent": merged_recent,
            "slowest": merged_slowest,
        }

    def covz(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The fleet-wide ``GET /covz`` payload.

        Every backend's retained per-design reports fold into one view —
        same design on several backends merges (counts add, covered bits
        max), so fleet-wide toggle/block/vacuity counters sum exactly
        once per backend.  ``limit`` caps the merged design list and is
        forwarded on the fan-out."""
        payloads: List[Dict[str, object]] = [cov.buffer().snapshot()]
        reached = 0
        query = _diag_query(limit=limit)
        for slot in self._slots:
            try:
                status, _, data = self._forward(
                    slot, "GET", f"/covz{query}", None,
                    self.config.probe_timeout_s)
                payload = json.loads(data) if status == 200 else None
            except (OSError, http.client.HTTPException) as exc:
                self._eject(slot, f"covz probe failed: "
                                  f"{type(exc).__name__}")
                continue
            except ValueError:
                continue
            if not isinstance(payload, dict):
                continue
            reached += 1
            payloads.append(payload)
        merged = cov.merge_covz_payloads(payloads, limit=limit)
        merged["backends_reached"] = reached
        return merged

    def stats(self) -> Dict[str, object]:
        """Router-local counters (no network calls)."""
        with self._lock:
            return {
                "backends_total": len(self._slots),
                "backends_healthy": sum(
                    1 for slot in self._slots if slot.healthy),
                "routed": self._routed,
                "spillovers": self._spillovers,
                "failovers": self._failovers,
                "no_backend": self._no_backend,
                "ejections": sum(slot.ejections for slot in self._slots),
                "readmissions": sum(
                    slot.readmissions for slot in self._slots),
                "cancel_broadcasts": self._cancel_broadcasts,
            }

    def statsz(self) -> Dict[str, object]:
        """The fleet-wide ``/statsz`` payload.

        Shape mirrors a single backend's ``statsz()`` — ``service`` /
        ``store`` / ``solve_profile`` with numeric fields summed across
        backends — plus ``router`` (routing counters) and ``backends``
        (per-backend health + unsummed snapshots, where ratio fields
        like ``cache_hit_rate`` remain meaningful)."""
        service_total: Dict[str, float] = {}
        store_total: Dict[str, float] = {}
        profile_total: Dict[str, float] = {}
        store_seen = False
        backends_payload: List[Dict[str, object]] = []
        for slot in self._slots:
            snapshot = None
            try:
                status, _, data = self._forward(
                    slot, "GET", "/statsz", None,
                    self.config.probe_timeout_s)
                if status == 200:
                    snapshot = json.loads(data)
            except (OSError, http.client.HTTPException) as exc:
                self._eject(slot, f"statsz probe failed: "
                                  f"{type(exc).__name__}")
            if isinstance(snapshot, dict):
                _merge_numeric(service_total,
                               snapshot.get("service") or {})
                store = snapshot.get("store")
                if isinstance(store, dict):
                    store_seen = True
                    _merge_numeric(store_total, store)
                _merge_numeric(profile_total,
                               snapshot.get("solve_profile") or {})
            with self._lock:
                backends_payload.append({
                    "node": slot.node,
                    "address": slot.address,
                    "healthy": slot.healthy,
                    "forwarded": slot.forwarded,
                    "ejections": slot.ejections,
                    "readmissions": slot.readmissions,
                    "last_error": slot.last_error,
                    "statsz": snapshot,
                })
        return {
            "router": self.stats(),
            "service": service_total,
            "store": store_total if store_seen else None,
            "solve_profile": profile_total,
            "backends": backends_payload,
        }
