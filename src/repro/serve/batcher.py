"""Micro-batching: coalesce queued requests into engine work units.

A :class:`MicroBatcher` owns one consumer thread over the service's
bounded request queue.  It blocks for the first item, then keeps
collecting until either ``max_batch`` items are in hand (**size** flush)
or ``window_s`` seconds have passed since the batch opened (**timeout**
flush), and hands the batch to the service's flush callable — which
dedups it by content hash and runs one :meth:`ExecutionEngine.map` over
the unique work units.  Throughput therefore *rises* with concurrency
(duplicate in-flight requests collapse, unique ones fan out across the
worker pool) instead of degrading, while the window bounds the latency a
lone request pays for the chance to share a batch.

The flush callable must not raise; the batcher still guards it so a bug
in one batch cannot kill the consumer thread and deadlock every later
request.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs import trace as obs_trace

#: Flush reasons, in stats order.
FLUSH_SIZE = "size"
FLUSH_TIMEOUT = "timeout"
FLUSH_DRAIN = "drain"

_STOP = object()  # queue sentinel: drain what is queued ahead, then exit


@dataclass
class BatcherStats:
    """Consumer-thread counters (single writer; readers take snapshots)."""

    batches: int = 0
    items: int = 0
    max_batch: int = 0
    flush_errors: int = 0
    flush_reasons: dict = field(default_factory=lambda: {
        FLUSH_SIZE: 0, FLUSH_TIMEOUT: 0, FLUSH_DRAIN: 0})

    @property
    def mean_batch(self) -> float:
        return self.items / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        return {"batches": self.batches, "items": self.items,
                "max_batch": self.max_batch,
                "mean_batch": round(self.mean_batch, 3),
                "flush_errors": self.flush_errors,
                "flush_reasons": dict(self.flush_reasons)}


class MicroBatcher:
    """Queue consumer that flushes coalesced batches via a callback."""

    def __init__(self, source: "queue.Queue", flush: Callable[[List, str], None],
                 max_batch: int = 16, window_s: float = 0.010,
                 name: str = "serve-batcher"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self._source = source
        self._flush = flush
        self.max_batch = max_batch
        self.window_s = window_s
        self.stats = BatcherStats()
        self._thread: Optional[threading.Thread] = None
        self._stop_sent = False
        self._name = name

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._thread = threading.Thread(target=self._run, name=self._name,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain everything already queued, then stop the thread.

        The sentinel enters the FIFO behind every pending request, so no
        accepted request is dropped.
        """
        if self._thread is None:
            return
        if not self._stop_sent:
            self._stop_sent = True
            self._source.put(_STOP)  # blocks if full; the consumer makes room
        self._thread.join(timeout)
        if self._thread.is_alive():
            # Timed-out join: keep the handle so `running` stays truthful
            # and a later stop() can join again without re-sending the
            # sentinel.
            return
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- consumer loop -------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._source.get()
            if item is _STOP:
                return
            batch = [item]
            stopping = False
            deadline = time.monotonic() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._source.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            if stopping:
                reason = FLUSH_DRAIN
            elif len(batch) >= self.max_batch:
                reason = FLUSH_SIZE
            else:
                reason = FLUSH_TIMEOUT
            self.stats.batches += 1
            self.stats.items += len(batch)
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            self.stats.flush_reasons[reason] += 1
            # Per-flush span, parented to the first traced member's
            # inflight span (duck-typed: the batcher stays generic over
            # queue items).  Making it the consumer thread's ambient span
            # is what parents the flush's engine.map span into a trace.
            trace_parent = next(
                (span for span in (getattr(item, "span", None)
                                   for item in batch) if span is not None),
                None)
            try:
                with obs_trace.span("batch.flush", parent=trace_parent,
                                    attrs={"size": len(batch),
                                           "reason": reason}):
                    self._flush(batch, reason)
            except BaseException:  # noqa: BLE001 - must not kill the consumer
                self.stats.flush_errors += 1
            if stopping:
                return
