"""Deterministic load generation for the serving layer.

``build_workload`` replays the same request stream for a given spec on
every host and every run: the design pool comes from the corpus
generator (per-design derived seeds) and the stream's sampling RNG
derives via :func:`repro.engine.rng.derive_seed` — so benches compare
*service* behaviour, never workload noise.  Streams deliberately sample
a small unique pool with repeats, the shape real serving traffic has
(many users, few distinct hot designs).

``run_load`` drives a target with a fixed client concurrency, measures
per-request latency from ``submit()`` to ``result()``, honours
backpressure (an overloaded queue is retried with a short pause, and
counted), and reports p50/p95/p99/max latency plus requests/sec in a
:class:`LoadReport`.  The target is anything with the service surface —
an in-process :class:`AssertService` *or* an HTTP
:class:`repro.serve.client.AssertClient` — so ``benchmarks/bench_http.py``
can compare the two paths on identical request streams.  In-process
submits raise :class:`ServiceOverloaded` synchronously; over HTTP the
same exception surfaces at ``result()`` — both are retried and counted.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.generator import CorpusGenerator
from repro.engine.rng import derive_rng, derive_seed
from repro.serve.service import (
    ServiceOverloaded,
    SolveOptions,
    SolveRequest,
    SolveResponse,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a deterministic request stream."""

    n_requests: int = 64
    unique_designs: int = 8
    seed: int = 2025
    families: Optional[Tuple[str, ...]] = None
    hallucination_rate: float = 0.0
    bmc_depth: int = 10
    bmc_random_trials: int = 24

    def validate(self) -> None:
        for name in ("n_requests", "unique_designs"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be an integer >= 1, got {value!r}")


def build_workload(spec: WorkloadSpec) -> List[SolveRequest]:
    """The spec's request stream — identical for equal specs, anywhere.

    Each request carries the sampled design's template hints (standing in
    for upstream LLM proposals) so the service exercises its full
    validate-and-score path.
    """
    spec.validate()
    generator = CorpusGenerator(
        seed=derive_seed(spec.seed, "loadgen", "corpus") % (2 ** 32),
        families=spec.families)
    pool = generator.generate(spec.unique_designs)
    options = [SolveOptions.for_design(
        design,
        hallucination_rate=spec.hallucination_rate,
        bmc_depth=spec.bmc_depth,
        bmc_random_trials=spec.bmc_random_trials) for design in pool]
    stream = derive_rng(spec.seed, "loadgen", "stream")
    requests = []
    for i in range(spec.n_requests):
        pick = stream.randrange(spec.unique_designs)
        requests.append(SolveRequest(pool[pick].source, options[pick],
                                     request_id=f"req_{i:05d}"))
    return requests


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """One load run's outcome (latencies in milliseconds)."""

    label: str
    n_requests: int
    concurrency: int
    seconds: float
    req_per_sec: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    errors: int
    backpressure_retries: int
    responses: List[SolveResponse] = field(default_factory=list, repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {"label": self.label, "n_requests": self.n_requests,
                "concurrency": self.concurrency,
                "seconds": round(self.seconds, 4),
                "req_per_sec": round(self.req_per_sec, 3),
                "p50_ms": round(self.p50_ms, 3),
                "p95_ms": round(self.p95_ms, 3),
                "p99_ms": round(self.p99_ms, 3),
                "max_ms": round(self.max_ms, 3),
                "errors": self.errors,
                "backpressure_retries": self.backpressure_retries}


def _solve_with_backoff(target, request: SolveRequest, timeout_s: float,
                        retry_wait_s: float) -> Tuple[SolveResponse, int]:
    """Solve synchronously, retrying on backpressure; returns
    (response, retries).  Both transports expose the same blocking
    ``solve(request, timeout)`` and raise :class:`ServiceOverloaded` on
    a full queue — and the direct call keeps thread spawns out of the
    latency the benches measure."""
    retries = 0
    while True:
        try:
            return target.solve(request, timeout_s), retries
        except ServiceOverloaded:
            retries += 1
            time.sleep(retry_wait_s)


def run_load(service, requests: List[SolveRequest],
             concurrency: int = 1, label: str = "load",
             timeout_s: float = 300.0,
             retry_wait_s: float = 0.002) -> LoadReport:
    """Drive ``service`` (or an HTTP client) with ``concurrency``
    synchronous clients.

    ``concurrency=1`` is the sequential one-request-at-a-time baseline
    (no request ever has a batchmate); higher values model that many
    users awaiting responses at once, which is what gives the
    micro-batcher coalescing opportunities.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    start = getattr(service, "start", None)
    if callable(start):
        start()
    latencies_ms: List[float] = [0.0] * len(requests)
    responses: List[Optional[SolveResponse]] = [None] * len(requests)
    errors = 0
    total_retries = 0

    def client(index: int) -> int:
        started = time.perf_counter()
        response, retries = _solve_with_backoff(service, requests[index],
                                                timeout_s, retry_wait_s)
        latencies_ms[index] = (time.perf_counter() - started) * 1000.0
        responses[index] = response
        return retries

    run_started = time.perf_counter()
    if concurrency == 1:
        for i in range(len(requests)):
            try:
                total_retries += client(i)
            except Exception:  # noqa: BLE001 - load test records, not raises
                errors += 1
    else:
        with ThreadPoolExecutor(max_workers=concurrency,
                                thread_name_prefix=f"{label}-client") as pool:
            for outcome in pool.map(_guarded(client), range(len(requests))):
                if outcome is None:
                    errors += 1
                else:
                    total_retries += outcome
    seconds = time.perf_counter() - run_started

    ordered = sorted(lat for lat, resp in zip(latencies_ms, responses)
                     if resp is not None)
    return LoadReport(
        label=label, n_requests=len(requests), concurrency=concurrency,
        seconds=seconds,
        req_per_sec=(len(requests) / seconds) if seconds > 0 else 0.0,
        p50_ms=percentile(ordered, 0.50),
        p95_ms=percentile(ordered, 0.95),
        p99_ms=percentile(ordered, 0.99),
        max_ms=ordered[-1] if ordered else 0.0,
        errors=errors, backpressure_retries=total_retries,
        responses=list(responses))


def _guarded(fn):
    """None on exception — pool.map must outlive individual failures."""
    def wrapper(index):
        try:
            return fn(index)
        except Exception:  # noqa: BLE001
            return None
    return wrapper
