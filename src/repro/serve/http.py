"""JSON-over-HTTP transport for :class:`repro.serve.AssertService`.

The in-process API (``submit`` -> ``Future`` -> ``SolveResponse``) is
the serving contract; this module puts a network edge in front of it
using nothing but the standard library (``http.server``), so the
reproduction runs as an actual service without growing a dependency:

- ``POST /v1/solve``  — body :func:`request_to_json`; the response body
  for a solved request is **exactly** ``SolveResponse.to_json()``, so
  the bytes a client reads off the wire are identical to what the
  in-process API serializes (asserted by the test suite — the transport
  must not fork determinism).  Service statuses map onto HTTP codes:

  ================  ====  =========================================
  outcome           code  notes
  ================  ====  =========================================
  ``ok``            200
  ``compile_error`` 422   structured compiler diagnostics in body
  ``timeout``       504   ``deadline_ms`` lapsed (timer-enforced)
  ``cancelled``     409   client issued ``DELETE`` mid-flight
  queue full        429   ``Retry-After`` header (backpressure)
  malformed body    400   bad JSON / wrong types / unknown options
  oversized body    413   > ``HttpConfig.max_body_bytes``
  draining/closed   503   shutdown in progress
  ================  ====  =========================================

- ``POST /v1/eval`` — body :func:`eval_request_from_json`; runs a
  *registered* model (:meth:`AssertService.register_model`) over the
  submitted cases through the service's engine and store.  A 200 body is
  **exactly** ``EvalReport.to_json()`` (byte-identical to an in-process
  ``run_eval``); failures ride the shared error envelope with
  ``unknown_model`` -> 404, ``timeout`` -> 504, ``cancelled`` -> 409.
  Same queue, deadline, cancellation, and backpressure lifecycle as
  ``/v1/solve``.
- Every non-payload response (transport refusals included, and the
  fleet router's self-synthesized bodies) uses one structured error
  envelope: ``{"code": ..., "detail": ..., "status": ...}`` (see
  :mod:`repro.serve.codecs`).
- ``GET /healthz`` — liveness (``503`` + ``draining`` once shutdown
  starts); ``GET /statsz`` — :meth:`AssertService.statsz` (the full
  :class:`ServiceStats` snapshot incl. queue-depth/inflight gauges,
  plus backing-store counters).
- ``GET /metricsz`` — Prometheus text (HTTP edge + service registries
  plus engine provider counters); ``GET /tracez`` — JSON, the recent
  and slowest request traces (see :mod:`repro.obs`; ``?limit=N`` /
  ``?slowest=N`` cap the lists); ``GET /covz`` — JSON, the retained
  per-design coverage reports (``?limit=N``; populated when the
  service runs with ``ServeConfig.coverage`` on).  Solve requests
  carry an optional ``X-Repro-Trace-Id`` header (``trace_id`` or
  ``trace_id/parent_span_id``): the server continues that trace, which
  is how a fleet-routed request stays one coherent trace across
  router and backend.
- ``DELETE /v1/solve/{request_id}`` (alias ``/v1/eval/{request_id}``) —
  client-initiated cancellation (:meth:`AssertService.cancel`): queued
  requests are dropped, in-batch ones abandoned.
- Graceful drain: :meth:`AssertHttpServer.close` stops accepting,
  resolves every accepted request via the service's own drain, then
  joins the handler threads — in-flight clients get real responses,
  not resets.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.codecs import (
    EVAL_STATUS_HTTP_CODES,
    STATUS_HTTP_CODES,
    error_body,
    eval_request_from_json,
    eval_request_to_json,
    eval_response_wire,
    request_from_json,
    request_to_json,
    response_from_json,
)
from repro.serve.service import (
    AssertService,
    EvalRequest,
    EvalResponse,
    ServiceClosed,
    ServiceOverloaded,
    SolveRequest,
    SolveResponse,
)

__all__ = [
    "AssertHttpServer",
    "HttpConfig",
    "EVAL_STATUS_HTTP_CODES",
    "STATUS_HTTP_CODES",
    "eval_request_from_json",
    "eval_request_to_json",
    "eval_response_wire",
    "request_from_json",
    "request_to_json",
    "response_from_json",
]

#: Prometheus content type for ``GET /metricsz``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _handler_label(command: str, path: str) -> str:
    """Low-cardinality route label for the per-request metrics."""
    path = path.partition("?")[0]
    if path == "/v1/solve":
        return "solve"
    if path == "/v1/eval":
        return "eval"
    if command == "DELETE" and (path.startswith("/v1/solve/")
                                or path.startswith("/v1/eval/")):
        return "cancel"
    if path in ("/healthz", "/statsz", "/metricsz", "/tracez", "/covz"):
        return path[1:]
    return "other"


def _query_int_params(query: str) -> Dict[str, int]:
    """Parse the diagnostic-endpoint query knobs (``limit``/``slowest``).

    Unknown parameters are ignored (lenient fan-out forwarding); a
    non-integer or negative value raises :class:`ValueError`, which the
    handler maps to a 400."""
    params: Dict[str, int] = {}
    for name, values in parse_qs(query, keep_blank_values=True).items():
        if name not in ("limit", "slowest"):
            continue
        value = values[-1]
        try:
            parsed = int(value)
        except ValueError:
            raise ValueError(
                f"{name} must be an integer, got {value!r}") from None
        if parsed < 0:
            raise ValueError(f"{name} must be >= 0, got {parsed}")
        params[name] = parsed
    return params


# -- server --------------------------------------------------------------------
# (the wire codecs live in repro.serve.codecs, shared with client + router)


@dataclass
class HttpConfig:
    """Transport knobs (the service's own knobs live in ``ServeConfig``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral: read the bound port off the server
    #: Bodies above this are refused with 413 before being read.
    max_body_bytes: int = 1 << 20
    #: Server-side cap on how long one handler waits for a response when
    #: the request carries no ``deadline_ms`` of its own.
    default_timeout_s: float = 300.0
    #: Backpressure hint sent in the 429 ``Retry-After`` header.
    retry_after_s: float = 1.0
    #: How long a drain waits for in-flight responses before answering
    #: the stragglers 503.  With ``manage_service=True`` the service's
    #: own (synchronous) drain resolves every future well inside this;
    #: the bound exists so a server fronting an externally-owned service
    #: that never resolves them cannot hang ``close()`` for
    #: ``default_timeout_s`` per handler.
    drain_grace_s: float = 30.0

    def validate(self) -> None:
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be an integer in [0, 65535], "
                             f"got {self.port!r}")
        for name in ("max_body_bytes",):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be an integer >= 1, got {value!r}")
        for name in ("default_timeout_s", "retry_after_s", "drain_grace_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value <= 0:
                raise ValueError(
                    f"{name} must be a number > 0, got {value!r}")


class _DrainAbandoned(Exception):
    """Internal: a drain outlived its grace while this handler waited."""


class _ThreadedHTTPServer(ThreadingMixIn, HTTPServer):
    """One thread per connection; non-daemon so ``server_close`` joins
    them — that join is what makes the drain graceful."""

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    #: The socketserver default backlog of 5 drops SYNs under concurrent
    #: load (clients then stall a full retransmit timeout or fail);
    #: size it for a burst of every client connecting at once.
    request_queue_size = 128

    # Filled in by AssertHttpServer.start().
    ctx: "AssertHttpServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    #: Socket-read timeout: bounds how long an idle keep-alive
    #: connection can stall the drain join.
    timeout = 15

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # no stderr spam; /statsz is the observability surface

    # -- helpers -------------------------------------------------------------

    @property
    def ctx(self) -> "AssertHttpServer":
        return self.server.ctx

    def parse_request(self) -> bool:
        # Request-clock start: after the request line arrived, so idle
        # keep-alive wait never counts as handling time.
        self._obs_started = time.perf_counter()
        return super().parse_request()

    def _send_body(self, code: int, body: bytes,
                   headers: Optional[Dict[str, str]] = None,
                   content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self.ctx.observe_http(
            _handler_label(self.command, self.path), code,
            getattr(self, "_obs_started", None))

    def _send_json(self, code: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(code, body, headers)

    def _send_error_json(self, code: int, message: str,
                         headers: Optional[Dict[str, str]] = None,
                         status: str = "error") -> None:
        self._send_body(code, error_body(code, message, status=status),
                        headers)

    # -- routes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/v1/solve":
            parse, serve = request_from_json, self._solve
        elif self.path == "/v1/eval":
            parse, serve = eval_request_from_json, self._eval
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")
            return
        ctx = self.ctx
        if ctx.draining:
            self.close_connection = True
            self._send_error_json(503, "server is draining")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
            self._send_error_json(400, "missing or invalid Content-Length")
            return
        if length > ctx.config.max_body_bytes:
            # Refused unread: closing the connection is the only way to
            # not choke on the rest of an oversized upload.
            self.close_connection = True
            self._send_error_json(
                413, f"body of {length} bytes exceeds the "
                     f"{ctx.config.max_body_bytes}-byte limit")
            return
        body = self.rfile.read(length)

        try:
            request = parse(body)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        # One server span per request.  An incoming
        # X-Repro-Trace-Id (injected by the fleet router, or set by a
        # client correlating its own retries) continues that trace; an
        # absent or malformed header derives the same deterministic id
        # the service would.  root=True: this span finalizes the trace's
        # local fragment when it ends.
        incoming_id, incoming_parent = obs_trace.parse_trace_header(
            self.headers.get(obs_trace.TRACE_HEADER, ""))
        trace_id = incoming_id or obs_trace.trace_id_for(
            request.cache_key(), request.request_id)
        with obs_trace.span("http.server", parent=incoming_parent,
                            trace_id=trace_id, root=True) as server_span:
            serve(ctx, request, server_span)

    def _solve(self, ctx: "AssertHttpServer", request: SolveRequest,
               server_span) -> None:
        response = self._serve_request(
            ctx, request, ctx.service.submit,
            lambda: SolveResponse(
                "timeout", request.cache_key(),
                error=f"server wait budget of "
                      f"{ctx.config.default_timeout_s}s exceeded"))
        if response is None:
            return
        code = STATUS_HTTP_CODES.get(response.status, 500)
        if server_span is not None:
            server_span.attrs["status"] = response.status
            server_span.attrs["code"] = code
        # The body IS SolveResponse.to_json(): byte-identical to the
        # in-process serialization for the same request content hash.
        self._send_body(code, response.to_json().encode("utf-8"))

    def _eval(self, ctx: "AssertHttpServer", request: EvalRequest,
              server_span) -> None:
        response = self._serve_request(
            ctx, request, ctx.service.submit_eval,
            lambda: EvalResponse(
                "timeout", request.cache_key(),
                error=f"server wait budget of "
                      f"{ctx.config.default_timeout_s}s exceeded"))
        if response is None:
            return
        code, body = eval_response_wire(response)
        if server_span is not None:
            server_span.attrs["status"] = response.status
            server_span.attrs["code"] = code
        # A 200 body IS EvalReport.to_json(): byte-identical to the
        # in-process serialization for the same request content hash.
        self._send_body(code, body)

    def _serve_request(self, ctx: "AssertHttpServer", request, submit,
                       timeout_response):
        """Shared submit-and-await: returns the service response, or
        ``None`` after sending a transport refusal itself."""
        try:
            future = submit(request)
        except ServiceOverloaded as exc:
            retry_after = max(1, round(ctx.config.retry_after_s))
            self._send_error_json(429, str(exc),
                                  headers={"Retry-After": str(retry_after)})
            return None
        except ServiceClosed:
            self.close_connection = True
            self._send_error_json(503, "service is closed")
            return None
        except ValueError as exc:  # submit re-validates; belt and braces
            self._send_error_json(400, str(exc))
            return None

        try:
            return self._await(ctx, future, timeout_response)
        except _DrainAbandoned:
            self.close_connection = True
            self._send_error_json(503, "server drained before the request "
                                       "was served")
            return None
        except ServiceClosed:
            self.close_connection = True
            self._send_error_json(503, "service closed mid-request")
            return None
        except Exception as exc:  # noqa: BLE001 - surface, don't hang
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return None

    def _await(self, ctx: "AssertHttpServer", future, timeout_response):
        """Wait for the future in slices, so a drain can reclaim
        handlers whose futures nobody will ever resolve (an
        externally-owned, never-started service) instead of hanging
        ``close()`` for the full wait budget."""
        wait_deadline = time.monotonic() + ctx.config.default_timeout_s
        while True:
            remaining = wait_deadline - time.monotonic()
            if remaining <= 0:
                # The *server's* wait budget, not the request's
                # deadline_ms (the deadline timer resolves those to
                # status="timeout" well before this).  The future stays
                # live: a late result is still cached for repeats.
                return timeout_response()
            try:
                return future.result(timeout=min(0.25, remaining))
            except FutureTimeoutError:
                drained_for = ctx.drain_elapsed()
                if drained_for is not None \
                        and drained_for > ctx.config.drain_grace_s:
                    raise _DrainAbandoned() from None

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        ctx = self.ctx
        parsed = urlsplit(self.path)
        try:
            params = _query_int_params(parsed.query)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        route = parsed.path
        if route == "/healthz":
            if ctx.draining:
                self.close_connection = True
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ok"})
        elif route == "/statsz":
            self._send_json(200, ctx.statsz())
        elif route == "/metricsz":
            self._send_body(200, ctx.metricsz().encode("utf-8"),
                            content_type=PROMETHEUS_CONTENT_TYPE)
        elif route == "/tracez":
            self._send_json(200, ctx.tracez(limit=params.get("limit"),
                                            slowest=params.get("slowest")))
        elif route == "/covz":
            self._send_json(200, ctx.covz(limit=params.get("limit")))
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        # Cancellation is kind-agnostic service-side (one request_id
        # registry), so both prefixes route to the same cancel.
        for prefix in ("/v1/solve/", "/v1/eval/"):
            if self.path.startswith(prefix):
                break
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")
            return
        request_id = unquote(self.path[len(prefix):])
        if not request_id:
            self._send_error_json(400, "missing request_id")
            return
        cancelled = self.ctx.service.cancel(request_id)
        self._send_json(200 if cancelled else 404,
                        {"request_id": request_id, "cancelled": cancelled})


class AssertHttpServer:
    """A threaded HTTP front end over one :class:`AssertService`.

    Lifecycle::

        with AssertHttpServer(service) as server:
            print(server.url)          # http://127.0.0.1:<bound port>
            ...                        # clients talk to it
        # close(): drain accepted requests, answer in-flight clients,
        # then release sockets and threads.

    With ``manage_service=True`` (default) the server starts and closes
    the service with itself; pass ``False`` to front a service whose
    lifecycle someone else owns.
    """

    def __init__(self, service: AssertService,
                 config: Optional[HttpConfig] = None,
                 manage_service: bool = True):
        self.service = service
        self.config = config or HttpConfig()
        self.config.validate()
        self.manage_service = manage_service
        self.draining = False
        self._drain_started: Optional[float] = None
        self._httpd: Optional[_ThreadedHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.metrics = obs_metrics.MetricsRegistry()
        self._http_requests = self.metrics.counter_family(
            "repro_http_requests_total", "HTTP responses sent.",
            ("handler", "code"))
        self._http_seconds = self.metrics.histogram(
            "repro_http_request_seconds",
            "Request handling time, request line to body written.")

    # -- observability ----------------------------------------------------

    def observe_http(self, handler: str, code: int,
                     started: Optional[float]) -> None:
        """Per-response bookkeeping, called by the handler on every send."""
        self._http_requests.labels(handler=handler, code=str(code)).inc()
        if started is not None:
            self._http_seconds.observe(time.perf_counter() - started)

    def statsz(self) -> Dict[str, object]:
        """The ``GET /statsz`` payload (the service's, unchanged)."""
        return self.service.statsz()

    def metricsz(self) -> str:
        """The ``GET /metricsz`` exposition: this edge's HTTP metrics,
        the fronted service's registry, and the process-global engine
        provider counters (compile cache, stores, solve profile)."""
        return obs_metrics.render_prometheus(
            [self.metrics, self.service.metrics])

    def tracez(self, limit: Optional[int] = None,
               slowest: Optional[int] = None) -> Dict[str, object]:
        """The ``GET /tracez`` payload: recent + slowest traces.

        ``limit`` / ``slowest`` cap the two lists (``?limit=N`` /
        ``?slowest=N`` on the endpoint) — retention is unchanged, only
        the payload shrinks."""
        snapshot = obs_trace.buffer().snapshot()
        if limit is not None:
            snapshot["recent"] = snapshot["recent"][:limit]
        if slowest is not None:
            snapshot["slowest"] = snapshot["slowest"][:slowest]
        return snapshot

    def covz(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The ``GET /covz`` payload: retained per-design coverage
        reports (``?limit=N`` caps how many designs are returned)."""
        return self.service.covz(limit=limit)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AssertHttpServer":
        if self._closed:
            raise ServiceClosed("http server is closed")
        if self._httpd is not None:
            return self
        if self.manage_service:
            self.service.start()
        self._httpd = _ThreadedHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.ctx = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http-accept",
            daemon=True)
        self._thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("server not started")
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Graceful drain: stop accepting, answer what was accepted.

        Order matters — stop the accept loop first (no new work), then
        close the service (its own drain resolves every accepted future,
        so blocked handlers wake with real responses), and only then
        join the handler threads and release the socket."""
        if self._closed:
            return
        self._closed = True
        self.draining = True
        self._drain_started = time.monotonic()
        if self._httpd is not None:
            self._httpd.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=30)
        if self.manage_service:
            self.service.close()
        if self._httpd is not None:
            self._httpd.server_close()

    def drain_elapsed(self) -> Optional[float]:
        """Seconds since the drain began, or ``None`` while serving."""
        if self._drain_started is None:
            return None
        return time.monotonic() - self._drain_started

    def __enter__(self) -> "AssertHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
