"""Tokenizer for the Verilog/SVA subset.

Produces a flat list of :class:`Token`.  Comments are skipped but their line
accounting is preserved so diagnostics and bug-location bookkeeping (which
the paper's evaluation relies on: answers are judged by buggy *line*) stay
accurate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.verilog.errors import VerilogLexError

KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "logic", "integer", "parameter", "localparam", "assign", "always",
    "always_ff", "always_comb", "posedge", "negedge", "or", "begin", "end",
    "if", "else", "case", "casez", "casex", "endcase", "default", "for",
    "genvar", "generate", "endgenerate", "initial", "signed",
    # SVA keywords
    "property", "endproperty", "assert", "assume", "cover", "disable",
    "iff", "sequence", "endsequence", "not",
}

SYSTEM_TASKS = {
    "$error", "$display", "$finish", "$past", "$rose", "$fell", "$stable",
    "$countones", "$onehot", "$onehot0", "$signed", "$unsigned", "$time",
}

# Multi-character operators, longest first so maximal munch works.
MULTI_OPS = [
    "|=>", "|->", "<<<", ">>>", "===", "!==", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>", "**", "##", "+:", "-:", "::",
]

SINGLE_OPS = set("+-*/%&|^~!<>=?:;,.#@(){}[]$")


class Token:
    """One lexeme: a (kind, text, line) triple.

    ``kind`` is one of ``id``, ``kw``, ``num``, ``str``, ``sys``, ``op``,
    ``eof``.
    """

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, line={self.line})"

    def is_op(self, *texts: str) -> bool:
        return self.kind == "op" and self.text in texts

    def is_kw(self, *texts: str) -> bool:
        return self.kind == "kw" and self.text in texts


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_$"


class Lexer:
    """Single-pass scanner over a source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.tokens: List[Token] = []

    def error(self, message: str) -> VerilogLexError:
        return VerilogLexError(message, self.line)

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                self.pos += 1

    def tokenize(self) -> List[Token]:
        while self.pos < len(self.source):
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "/" and self.peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self.peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit() or (ch == "'" and self.peek(1) in "bdohBDOH"):
                self._lex_number()
            elif _is_ident_start(ch):
                self._lex_identifier()
            elif ch == "$":
                self._lex_system_task()
            elif ch == '"':
                self._lex_string()
            elif ch == "`":
                # Ignore compiler directives (`timescale etc.) to end of line.
                self._skip_line_comment()
            else:
                self._lex_operator()
        self.tokens.append(Token("eof", "", self.line))
        return self.tokens

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self.peek() != "\n":
            self.advance()

    def _skip_block_comment(self) -> None:
        self.advance(2)
        while self.pos < len(self.source):
            if self.peek() == "*" and self.peek(1) == "/":
                self.advance(2)
                return
            self.advance()
        raise self.error("unterminated block comment")

    def _lex_number(self) -> None:
        start_line = self.line
        text = []
        # Optional decimal size prefix.
        while self.peek().isdigit() or self.peek() == "_":
            text.append(self.peek())
            self.advance()
        if self.peek() == "'":
            text.append("'")
            self.advance()
            if self.peek() in "sS":
                text.append(self.peek())
                self.advance()
            base = self.peek().lower()
            if base not in "bdoh":
                raise self.error(f"bad base character {self.peek()!r} in number")
            text.append(self.peek())
            self.advance()
            digits = "0123456789abcdefABCDEFxXzZ?_"
            if not (self.peek() and self.peek() in digits):
                raise self.error("missing digits after base specifier")
            while self.peek() and self.peek() in digits:
                text.append(self.peek())
                self.advance()
        self.tokens.append(Token("num", "".join(text), start_line))

    def _lex_identifier(self) -> None:
        start_line = self.line
        text = []
        while self.peek() and _is_ident_char(self.peek()):
            text.append(self.peek())
            self.advance()
        word = "".join(text)
        kind = "kw" if word in KEYWORDS else "id"
        self.tokens.append(Token(kind, word, start_line))

    def _lex_system_task(self) -> None:
        start_line = self.line
        text = ["$"]
        self.advance()
        while self.peek() and _is_ident_char(self.peek()):
            text.append(self.peek())
            self.advance()
        word = "".join(text)
        if word == "$":
            raise self.error("stray '$'")
        self.tokens.append(Token("sys", word, start_line))

    def _lex_string(self) -> None:
        start_line = self.line
        self.advance()
        text = []
        while True:
            ch = self.peek()
            if not ch:
                raise self.error("unterminated string literal")
            if ch == '"':
                self.advance()
                break
            if ch == "\\":
                self.advance()
                text.append(self.peek())
                self.advance()
                continue
            if ch == "\n":
                raise self.error("newline in string literal")
            text.append(ch)
            self.advance()
        self.tokens.append(Token("str", "".join(text), start_line))

    def _lex_operator(self) -> None:
        start_line = self.line
        for op in MULTI_OPS:
            if self.source.startswith(op, self.pos):
                self.advance(len(op))
                self.tokens.append(Token("op", op, start_line))
                return
        ch = self.peek()
        if ch in SINGLE_OPS:
            self.advance()
            self.tokens.append(Token("op", ch, start_line))
            return
        raise self.error(f"unexpected character {ch!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the token list (ending with eof)."""
    return Lexer(source).tokenize()


def parse_number_literal(text: str) -> "tuple[Optional[int], int, int]":
    """Decode a Verilog number literal.

    Returns ``(width_or_None, value, xmask)`` where ``xmask`` has bits set
    at x/z digit positions.  Plain decimal integers return width ``None``
    (context-determined, treated as 32 by the elaborator).
    """
    text = text.replace("_", "")
    if "'" not in text:
        return None, int(text), 0
    size_part, rest = text.split("'", 1)
    width = int(size_part) if size_part else None
    if rest and rest[0] in "sS":
        rest = rest[1:]
    base_char = rest[0].lower()
    digits = rest[1:]
    base = {"b": 2, "d": 10, "o": 8, "h": 16}[base_char]
    bits_per_digit = {"b": 1, "d": 0, "o": 3, "h": 4}[base_char]
    value = 0
    xmask = 0
    if base == 10:
        if any(d in "xXzZ?" for d in digits):
            width_eff = width or 32
            return width, 0, (1 << width_eff) - 1
        value = int(digits)
    else:
        for d in digits:
            value <<= bits_per_digit
            xmask <<= bits_per_digit
            if d in "xXzZ?":
                xmask |= (1 << bits_per_digit) - 1
            else:
                value |= int(d, base)
    if width is not None:
        mask = (1 << width) - 1
        value &= mask
        xmask &= mask
    return width, value, xmask
