"""Canonical source emission (AST -> Verilog text).

All artefacts in the reproduction pipeline are kept in *canonical form*:
corpus templates are parsed and re-emitted through this writer before any
bug is injected.  The writer guarantees one statement per line with stable
formatting, so a single AST mutation changes exactly one emitted line and
``(line number, before, after)`` is a faithful golden solution — the same
bookkeeping the paper relies on when judging a model's answer by its buggy
line.
"""

from __future__ import annotations

from typing import List

from repro.verilog import ast
from repro.verilog.parser import BINARY_PRECEDENCE

_INDENT = "  "


def write_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression, adding parentheses only where precedence
    requires them."""
    if isinstance(expr, ast.Number):
        return expr.text
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Unary):
        inner = write_expr(expr.operand, parent_prec=12)
        return f"{expr.op}{inner}"
    if isinstance(expr, ast.Binary):
        prec = BINARY_PRECEDENCE.get(expr.op, 0)
        lhs = write_expr(expr.lhs, prec)
        rhs = write_expr(expr.rhs, prec + 1)
        text = f"{lhs} {expr.op} {rhs}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.Ternary):
        cond = write_expr(expr.cond, 1)
        then = write_expr(expr.then)
        other = write_expr(expr.other)
        text = f"{cond} ? {then} : {other}"
        if parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, ast.BitSelect):
        return f"{write_expr(expr.base, 12)}[{write_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return (f"{write_expr(expr.base, 12)}"
                f"[{write_expr(expr.msb)}:{write_expr(expr.lsb)}]")
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(write_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repeat):
        return "{" + write_expr(expr.count, 12) + "{" + write_expr(expr.value) + "}}"
    if isinstance(expr, ast.SysCall):
        args = ", ".join(write_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot write expression node {type(expr).__name__}")


def write_prop(prop: ast.PropExpr) -> str:
    if isinstance(prop, ast.PropBool):
        return write_expr(prop.expr)
    if isinstance(prop, ast.PropDelay):
        delay = f"##{prop.lo}" if prop.lo == prop.hi else f"##[{prop.lo}:{prop.hi}]"
        lhs = write_prop(prop.lhs) + " " if prop.lhs is not None else ""
        return f"{lhs}{delay} {write_prop(prop.rhs)}"
    if isinstance(prop, ast.PropImplication):
        op = "|->" if prop.overlapped else "|=>"
        return f"{write_prop(prop.antecedent)} {op} {write_prop(prop.consequent)}"
    if isinstance(prop, ast.PropNot):
        return f"not ({write_prop(prop.operand)})"
    raise TypeError(f"cannot write property node {type(prop).__name__}")


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(f"{_INDENT * depth}{text}" if text else "")

    # -- statements ---------------------------------------------------------

    def stmt(self, node: ast.Stmt, depth: int) -> None:
        if isinstance(node, ast.Block):
            if not node.stmts:
                self.emit(depth, ";")
                return
            self.emit(depth, "begin")
            for child in node.stmts:
                self.stmt(child, depth + 1)
            self.emit(depth, "end")
        elif isinstance(node, ast.Assignment):
            op = "=" if node.blocking else "<="
            self.emit(depth,
                      f"{write_expr(node.target)} {op} {write_expr(node.value)};")
        elif isinstance(node, ast.If):
            self.emit(depth, f"if ({write_expr(node.cond)})")
            self._branch(node.then, depth)
            if node.other is not None:
                if isinstance(node.other, ast.If):
                    # Render 'else if' chains without extra nesting.
                    self._else_if(node.other, depth)
                else:
                    self.emit(depth, "else")
                    self._branch(node.other, depth)
        elif isinstance(node, ast.Case):
            self.emit(depth, f"{node.kind} ({write_expr(node.subject)})")
            for item in node.items:
                if item.is_default:
                    self.emit(depth + 1, "default:")
                else:
                    labels = ", ".join(write_expr(lbl) for lbl in item.labels)
                    self.emit(depth + 1, f"{labels}:")
                self._branch(item.body, depth + 1)
            self.emit(depth, "endcase")
        elif isinstance(node, ast.SysTaskCall):
            args = ", ".join(write_expr(a) for a in node.args)
            self.emit(depth, f"{node.name}({args});")
        else:
            raise TypeError(f"cannot write statement node {type(node).__name__}")

    def _branch(self, node: ast.Stmt, depth: int) -> None:
        if isinstance(node, ast.Block):
            self.stmt(node, depth + 1)
        else:
            self.stmt(node, depth + 1)

    def _else_if(self, node: ast.If, depth: int) -> None:
        self.emit(depth, f"else if ({write_expr(node.cond)})")
        self._branch(node.then, depth)
        if node.other is not None:
            if isinstance(node.other, ast.If):
                self._else_if(node.other, depth)
            else:
                self.emit(depth, "else")
                self._branch(node.other, depth)

    # -- items ---------------------------------------------------------------

    def item(self, node: ast.Item, depth: int) -> None:
        if isinstance(node, ast.Decl):
            width = "" if node.width == 1 and node.kind != "integer" else \
                f" [{node.msb}:{node.lsb}]"
            if node.kind == "integer":
                width = ""
            signed = " signed" if node.signed else ""
            init = f" = {write_expr(node.init)}" if node.init is not None else ""
            self.emit(depth, f"{node.kind}{signed}{width} {node.name}{init};")
        elif isinstance(node, ast.ParamDecl):
            kw = "localparam" if node.local else "parameter"
            self.emit(depth, f"{kw} {node.name} = {write_expr(node.value)};")
        elif isinstance(node, ast.ContinuousAssign):
            self.emit(depth,
                      f"assign {write_expr(node.target)} = {write_expr(node.value)};")
        elif isinstance(node, ast.AlwaysBlock):
            if node.comb:
                self.emit(depth, "always @(*)")
            elif node.edges:
                sens = " or ".join(f"{e.edge} {e.signal}" for e in node.edges)
                self.emit(depth, f"always @({sens})")
            else:
                self.emit(depth, "initial")
            self._branch(node.body, depth)
        elif isinstance(node, ast.PropertyDecl):
            self.emit(depth, f"property {node.name};")
            spec = []
            if node.clock is not None:
                spec.append(f"@({node.clock.edge} {node.clock.signal})")
            if node.disable is not None:
                spec.append(f"disable iff ({write_expr(node.disable)})")
            spec.append(write_prop(node.body))
            self.emit(depth + 1, " ".join(spec) + ";")
            self.emit(depth, "endproperty")
        elif isinstance(node, ast.AssertionItem):
            ref = node.property_name or ""
            if node.inline is not None:
                spec = []
                if node.inline.clock is not None:
                    spec.append(f"@({node.inline.clock.edge} {node.inline.clock.signal})")
                if node.inline.disable is not None:
                    spec.append(f"disable iff ({write_expr(node.inline.disable)})")
                spec.append(write_prop(node.inline.body))
                ref = " ".join(spec)
            tail = ""
            if node.message:
                tail = f' else $error("{node.message}")'
            self.emit(depth, f"{node.label}: assert property ({ref}){tail};")
        elif isinstance(node, ast.Instance):
            conns = ", ".join(f".{p}({write_expr(e)})" for p, e in node.connections)
            self.emit(depth, f"{node.module_name} {node.instance_name} ({conns});")
        else:
            raise TypeError(f"cannot write item node {type(node).__name__}")


def write_header_lines(module: ast.Module) -> List[str]:
    """The module/port header lines of the canonical emission."""
    emitter = _Emitter()
    if module.ports:
        emitter.emit(0, f"module {module.name} (")
        for i, port in enumerate(module.ports):
            kind = " reg" if port.is_reg else ""
            signed = " signed" if port.signed else ""
            width = "" if port.width == 1 else f" [{port.msb}:{port.lsb}]"
            comma = "," if i < len(module.ports) - 1 else ""
            emitter.emit(1, f"{port.direction}{kind}{signed}{width} {port.name}{comma}")
        emitter.emit(0, ");")
    else:
        emitter.emit(0, f"module {module.name} ();")
    return emitter.lines


def write_item_lines(item: ast.Item) -> List[str]:
    """One module item's canonical lines (depth 1).

    ``write_module`` is exactly header + per-item lines + ``endmodule``;
    the repair-candidate enumerator exploits this to re-emit only the item
    a mutation touched.
    """
    emitter = _Emitter()
    emitter.item(item, 1)
    return emitter.lines


def write_module(module: ast.Module) -> str:
    """Emit ``module`` as canonical Verilog source text."""
    lines = write_header_lines(module)
    for item in module.items:
        lines = lines + write_item_lines(item)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_source(source: ast.Source) -> str:
    return "\n".join(write_module(m) for m in source.modules)
