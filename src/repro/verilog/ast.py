"""AST node definitions for the Verilog/SVA subset.

Every node records the 1-based source ``line`` it started on.  Line numbers
are load-bearing throughout the reproduction: the paper's models answer with
a *buggy line*, the bug injector records golden lines, and the evaluator
compares the two.

Expression nodes double as the boolean layer of SVA properties; the
temporal layer (implication, cycle delay, disable iff) has its own nodes at
the bottom of this module.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line

    def children(self) -> Sequence["Node"]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = []
        for slot in self.__class__.__slots__:
            if slot == "line":
                continue
            fields.append(f"{slot}={getattr(self, slot)!r}")
        return f"{self.__class__.__name__}({', '.join(fields)})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class Number(Expr):
    """A literal.  ``width`` is None for unsized decimals; ``xmask`` marks
    x/z bits."""

    __slots__ = ("width", "value", "xmask", "text")

    def __init__(self, value: int, width: Optional[int] = None, xmask: int = 0,
                 text: str = "", line: int = 0):
        super().__init__(line)
        self.value = value
        self.width = width
        self.xmask = xmask
        self.text = text or str(value)


class Ident(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """Unary operators: ~ ! - + and reductions & | ^ ~& ~| ~^."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand

    def children(self):
        return (self.operand,)


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self):
        return (self.lhs, self.rhs)


class Ternary(Expr):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other

    def children(self):
        return (self.cond, self.then, self.other)


class BitSelect(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.index = index

    def children(self):
        return (self.base, self.index)


class PartSelect(Expr):
    """``sig[msb:lsb]`` (constant bounds only, as in synthesizable RTL)."""

    __slots__ = ("base", "msb", "lsb")

    def __init__(self, base: Expr, msb: Expr, lsb: Expr, line: int = 0):
        super().__init__(line)
        self.base = base
        self.msb = msb
        self.lsb = lsb

    def children(self):
        return (self.base, self.msb, self.lsb)


class Concat(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: List[Expr], line: int = 0):
        super().__init__(line)
        self.parts = parts

    def children(self):
        return tuple(self.parts)


class Repeat(Expr):
    """``{count{expr}}`` replication."""

    __slots__ = ("count", "value")

    def __init__(self, count: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.count = count
        self.value = value

    def children(self):
        return (self.count, self.value)


class SysCall(Expr):
    """System function in expression position ($past, $rose, ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args

    def children(self):
        return tuple(self.args)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: List[Stmt], line: int = 0):
        super().__init__(line)
        self.stmts = stmts

    def children(self):
        return tuple(self.stmts)


class Assignment(Stmt):
    """Procedural assignment.  ``blocking`` distinguishes ``=`` from ``<=``."""

    __slots__ = ("target", "value", "blocking")

    def __init__(self, target: Expr, value: Expr, blocking: bool, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value
        self.blocking = blocking

    def children(self):
        return (self.target, self.value)


class If(Stmt):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Stmt, other: Optional[Stmt], line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other

    def children(self):
        kids: List[Node] = [self.cond, self.then]
        if self.other is not None:
            kids.append(self.other)
        return tuple(kids)


class CaseItem(Node):
    __slots__ = ("labels", "body", "is_default")

    def __init__(self, labels: List[Expr], body: Stmt, is_default: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.labels = labels
        self.body = body
        self.is_default = is_default

    def children(self):
        return tuple(self.labels) + (self.body,)


class Case(Stmt):
    __slots__ = ("subject", "items", "kind")

    def __init__(self, subject: Expr, items: List[CaseItem], kind: str = "case",
                 line: int = 0):
        super().__init__(line)
        self.subject = subject
        self.items = items
        self.kind = kind

    def children(self):
        return (self.subject,) + tuple(self.items)


class SysTaskCall(Stmt):
    """Statement-position system task ($display / $error / $finish)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args

    def children(self):
        return tuple(self.args)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------

class Item(Node):
    __slots__ = ()


class Port(Node):
    __slots__ = ("direction", "name", "msb", "lsb", "is_reg", "signed")

    def __init__(self, direction: str, name: str, msb: int = 0, lsb: int = 0,
                 is_reg: bool = False, signed: bool = False, line: int = 0):
        super().__init__(line)
        self.direction = direction
        self.name = name
        self.msb = msb
        self.lsb = lsb
        self.is_reg = is_reg
        self.signed = signed

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1


class Decl(Item):
    """Net/variable declaration: ``wire``/``reg``/``integer``."""

    __slots__ = ("kind", "name", "msb", "lsb", "init", "signed")

    def __init__(self, kind: str, name: str, msb: int = 0, lsb: int = 0,
                 init: Optional[Expr] = None, signed: bool = False, line: int = 0):
        super().__init__(line)
        self.kind = kind
        self.name = name
        self.msb = msb
        self.lsb = lsb
        self.init = init
        self.signed = signed

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1


class ParamDecl(Item):
    __slots__ = ("name", "value", "local")

    def __init__(self, name: str, value: Expr, local: bool = False, line: int = 0):
        super().__init__(line)
        self.name = name
        self.value = value
        self.local = local


class ContinuousAssign(Item):
    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value

    def children(self):
        return (self.target, self.value)


class EdgeSpec(Node):
    """One edge in a sensitivity list: (posedge|negedge, signal)."""

    __slots__ = ("edge", "signal")

    def __init__(self, edge: str, signal: str, line: int = 0):
        super().__init__(line)
        self.edge = edge
        self.signal = signal


class AlwaysBlock(Item):
    """``always @(...) stmt``.

    ``edges`` empty means combinational (``@*`` or a plain signal list).
    """

    __slots__ = ("edges", "body", "comb")

    def __init__(self, edges: List[EdgeSpec], body: Stmt, comb: bool = False,
                 line: int = 0):
        super().__init__(line)
        self.edges = edges
        self.body = body
        self.comb = comb

    def children(self):
        return tuple(self.edges) + (self.body,)


class Instance(Item):
    """Module instantiation with named port connections."""

    __slots__ = ("module_name", "instance_name", "connections")

    def __init__(self, module_name: str, instance_name: str,
                 connections: List[Tuple[str, Expr]], line: int = 0):
        super().__init__(line)
        self.module_name = module_name
        self.instance_name = instance_name
        self.connections = connections


# ---------------------------------------------------------------------------
# SVA items
# ---------------------------------------------------------------------------

class PropExpr(Node):
    """Base class of the temporal property layer."""

    __slots__ = ()


class PropBool(PropExpr):
    """A boolean expression used as a (single-cycle) property."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr

    def children(self):
        return (self.expr,)


class PropDelay(PropExpr):
    """``lhs ##N rhs`` (or ``##[lo:hi]``) sequence concatenation."""

    __slots__ = ("lhs", "lo", "hi", "rhs")

    def __init__(self, lhs: Optional[PropExpr], lo: int, hi: int, rhs: PropExpr,
                 line: int = 0):
        super().__init__(line)
        self.lhs = lhs
        self.lo = lo
        self.hi = hi
        self.rhs = rhs

    def children(self):
        kids: List[Node] = []
        if self.lhs is not None:
            kids.append(self.lhs)
        kids.append(self.rhs)
        return tuple(kids)


class PropImplication(PropExpr):
    """``antecedent |-> consequent`` (overlapped) or ``|=>`` (next cycle)."""

    __slots__ = ("antecedent", "consequent", "overlapped")

    def __init__(self, antecedent: PropExpr, consequent: PropExpr,
                 overlapped: bool, line: int = 0):
        super().__init__(line)
        self.antecedent = antecedent
        self.consequent = consequent
        self.overlapped = overlapped

    def children(self):
        return (self.antecedent, self.consequent)


class PropNot(PropExpr):
    __slots__ = ("operand",)

    def __init__(self, operand: PropExpr, line: int = 0):
        super().__init__(line)
        self.operand = operand

    def children(self):
        return (self.operand,)


class PropertyDecl(Item):
    """``property name; @(posedge clk) disable iff (e) body; endproperty``."""

    __slots__ = ("name", "clock", "disable", "body")

    def __init__(self, name: str, clock: Optional[EdgeSpec],
                 disable: Optional[Expr], body: PropExpr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.clock = clock
        self.disable = disable
        self.body = body

    def children(self):
        kids: List[Node] = []
        if self.disable is not None:
            kids.append(self.disable)
        kids.append(self.body)
        return tuple(kids)


class AssertionItem(Item):
    """``label: assert property (ref_or_inline) else $error("msg");``"""

    __slots__ = ("label", "property_name", "inline", "message")

    def __init__(self, label: str, property_name: Optional[str] = None,
                 inline: Optional[PropertyDecl] = None, message: str = "",
                 line: int = 0):
        super().__init__(line)
        self.label = label
        self.property_name = property_name
        self.inline = inline
        self.message = message


# ---------------------------------------------------------------------------
# Module / source
# ---------------------------------------------------------------------------

class Module(Node):
    __slots__ = ("name", "ports", "items", "end_line")

    def __init__(self, name: str, ports: List[Port], items: List[Item],
                 line: int = 0, end_line: int = 0):
        super().__init__(line)
        self.name = name
        self.ports = ports
        self.items = items
        self.end_line = end_line

    def children(self):
        return tuple(self.ports) + tuple(self.items)

    def port(self, name: str) -> Optional[Port]:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def decls(self) -> List[Decl]:
        return [item for item in self.items if isinstance(item, Decl)]

    def properties(self) -> List[PropertyDecl]:
        return [item for item in self.items if isinstance(item, PropertyDecl)]

    def assertions(self) -> List[AssertionItem]:
        return [item for item in self.items if isinstance(item, AssertionItem)]


class Source(Node):
    """A parsed source file (one or more modules)."""

    __slots__ = ("modules",)

    def __init__(self, modules: List[Module], line: int = 0):
        super().__init__(line)
        self.modules = modules

    def children(self):
        return tuple(self.modules)


def walk(node: Node):
    """Yield ``node`` and all descendants in preorder."""
    yield node
    for child in node.children():
        yield from walk(child)


def collect_idents(node: Node) -> List[str]:
    """All identifier names referenced under ``node`` (with duplicates)."""
    return [n.name for n in walk(node) if isinstance(n, Ident)]
