"""Diagnostics for the Verilog frontend.

Errors carry a source line number so the datagen pipeline can build
compiler-analysis text (the paper's Verilog-PT entries pair failing code
with an explanation of the failure).
"""

from __future__ import annotations


class VerilogError(Exception):
    """Base class for all frontend diagnostics."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.line:
            return f"line {self.line}: {self.message}"
        return self.message


class VerilogLexError(VerilogError):
    """Raised on characters or literals the lexer cannot tokenize."""


class VerilogParseError(VerilogError):
    """Raised when token stream does not match the grammar."""


class VerilogSemanticError(VerilogError):
    """Raised during elaboration (undeclared names, illegal drivers, ...)."""


class Diagnostic:
    """A non-fatal or fatal message collected during compilation."""

    ERROR = "error"
    WARNING = "warning"

    def __init__(self, severity: str, message: str, line: int = 0):
        self.severity = severity
        self.message = message
        self.line = line

    def __repr__(self) -> str:
        where = f":{self.line}" if self.line else ""
        return f"{self.severity}{where}: {self.message}"

    def is_error(self) -> bool:
        return self.severity == self.ERROR
