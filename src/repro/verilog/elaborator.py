"""Elaboration: AST -> checked design.

The elaborator resolves parameters and ranges, builds the symbol table,
performs the semantic checks a compiler would (undeclared identifiers,
illegal assignment targets, duplicate declarations, driver conflicts,
dangling property references) and classifies the module's processes for
the simulator.

The result, :class:`Design`, is the hand-off object consumed by
:mod:`repro.sim` and :mod:`repro.sva`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.verilog import ast
from repro.verilog.errors import Diagnostic, VerilogSemanticError

_BUILTIN_CONSTS: Set[str] = set()


class Symbol:
    """One named signal (port, net or variable) in a module."""

    __slots__ = ("name", "kind", "width", "signed", "direction", "line", "init")

    def __init__(self, name: str, kind: str, width: int, signed: bool = False,
                 direction: Optional[str] = None, line: int = 0,
                 init: Optional[ast.Expr] = None):
        self.name = name
        self.kind = kind          # 'wire' | 'reg' | 'integer'
        self.width = width
        self.signed = signed
        self.direction = direction  # 'input' | 'output' | 'inout' | None
        self.line = line
        self.init = init

    @property
    def is_input(self) -> bool:
        return self.direction == "input"

    @property
    def is_output(self) -> bool:
        return self.direction == "output"

    @property
    def is_state(self) -> bool:
        return self.kind in ("reg", "integer")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Symbol({self.name!r}, {self.kind}, w={self.width})"


class ResolvedAssertion:
    """An assertion bound to its (possibly inline) property declaration."""

    __slots__ = ("label", "prop", "message", "line")

    def __init__(self, label: str, prop: ast.PropertyDecl, message: str, line: int):
        self.label = label
        self.prop = prop
        self.message = message
        self.line = line


class Design:
    """Elaborated single-module design.

    Attributes
    ----------
    module:       the source AST (kept for bug injection / re-emission).
    symbols:      name -> :class:`Symbol`.
    params:       name -> int parameter value.
    assigns:      continuous assignments in source order.
    comb_blocks:  combinational always blocks.
    seq_blocks:   clocked always blocks.
    initial_blocks: ``initial`` bodies, applied once at time zero.
    assertions:   resolved assert-property items.
    clocks:       names of signals used as clocks in sequential processes.
    resets:       names of async-reset signals (negedge/posedge in
                  sensitivity lists that are not the clock).
    """

    def __init__(self, module: ast.Module):
        self.module = module
        self.symbols: Dict[str, Symbol] = {}
        self.params: Dict[str, int] = {}
        self.assigns: List[ast.ContinuousAssign] = []
        self.comb_blocks: List[ast.AlwaysBlock] = []
        self.seq_blocks: List[ast.AlwaysBlock] = []
        self.initial_blocks: List[ast.AlwaysBlock] = []
        self.assertions: List[ResolvedAssertion] = []
        self.clocks: List[str] = []
        self.resets: List[str] = []
        self.diagnostics: List[Diagnostic] = []

    @property
    def name(self) -> str:
        return self.module.name

    def inputs(self) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.is_input]

    def outputs(self) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.is_output]

    def free_inputs(self) -> List[Symbol]:
        """Inputs that are neither clock nor reset — the BMC's stimulus space."""
        special = set(self.clocks) | set(self.resets)
        return [s for s in self.inputs() if s.name not in special]

    def width_of(self, name: str) -> int:
        return self.symbols[name].width


class Elaborator:
    def __init__(self, module: ast.Module):
        self.module = module
        self.design = Design(module)

    def error(self, message: str, line: int = 0) -> None:
        self.design.diagnostics.append(Diagnostic(Diagnostic.ERROR, message, line))

    def warn(self, message: str, line: int = 0) -> None:
        self.design.diagnostics.append(Diagnostic(Diagnostic.WARNING, message, line))

    # -- main ----------------------------------------------------------------

    def elaborate(self) -> Design:
        self._collect_params()
        self._collect_symbols()
        self._classify_items()
        self._check_references()
        self._check_drivers()
        self._resolve_assertions()
        return self.design

    # -- parameters ----------------------------------------------------------

    def _collect_params(self) -> None:
        for item in self.module.items:
            if isinstance(item, ast.ParamDecl):
                value = self._fold(item.value)
                if value is None:
                    self.error(f"parameter '{item.name}' is not constant", item.line)
                    value = 0
                self.design.params[item.name] = value

    def _fold(self, expr) -> Optional[int]:
        """Fold a constant expression with parameters in scope."""
        if isinstance(expr, int):
            return expr
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident):
            return self.design.params.get(expr.name)
        if isinstance(expr, ast.Unary):
            inner = self._fold(expr.operand)
            if inner is None:
                return None
            if expr.op == "-":
                return -inner
            if expr.op == "+":
                return inner
            if expr.op == "~":
                return ~inner
            if expr.op == "!":
                return int(inner == 0)
            return None
        if isinstance(expr, ast.Binary):
            lhs = self._fold(expr.lhs)
            rhs = self._fold(expr.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return {
                    "+": lambda: lhs + rhs,
                    "-": lambda: lhs - rhs,
                    "*": lambda: lhs * rhs,
                    "/": lambda: lhs // rhs if rhs else None,
                    "%": lambda: lhs % rhs if rhs else None,
                    "<<": lambda: lhs << rhs,
                    ">>": lambda: lhs >> rhs,
                    "**": lambda: lhs ** rhs,
                }[expr.op]()
            except KeyError:
                return None
        return None

    def _resolve_bound(self, bound, line: int) -> int:
        value = self._fold(bound)
        if value is None:
            self.error("range bound is not a constant expression", line)
            return 0
        return value

    # -- symbols ---------------------------------------------------------------

    def _collect_symbols(self) -> None:
        for port in self.module.ports:
            port.msb = self._resolve_bound(port.msb, port.line)
            port.lsb = self._resolve_bound(port.lsb, port.line)
            if port.name in self.design.symbols:
                self.error(f"duplicate port '{port.name}'", port.line)
                continue
            kind = "reg" if port.is_reg else "wire"
            self.design.symbols[port.name] = Symbol(
                port.name, kind, port.width, port.signed, port.direction, port.line)
        for item in self.module.items:
            if not isinstance(item, ast.Decl):
                continue
            item.msb = self._resolve_bound(item.msb, item.line)
            item.lsb = self._resolve_bound(item.lsb, item.line)
            existing = self.design.symbols.get(item.name)
            if existing is not None:
                # 'output reg x;' style re-declaration upgrades the kind.
                if existing.direction is not None and existing.kind == "wire" \
                        and item.kind in ("reg", "integer"):
                    existing.kind = item.kind
                    if item.width != 1 and existing.width == 1:
                        existing.width = item.width
                    continue
                self.error(f"duplicate declaration of '{item.name}'", item.line)
                continue
            self.design.symbols[item.name] = Symbol(
                item.name, item.kind, item.width, item.signed, None, item.line,
                item.init)

    # -- processes ---------------------------------------------------------------

    def _classify_items(self) -> None:
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                self.design.assigns.append(item)
            elif isinstance(item, ast.AlwaysBlock):
                if item.comb:
                    self.design.comb_blocks.append(item)
                elif item.edges:
                    self.design.seq_blocks.append(item)
                    self._note_clock_reset(item)
                else:
                    self.design.initial_blocks.append(item)
            elif isinstance(item, ast.Instance):
                self.error(
                    f"hierarchical designs unsupported: instance '{item.instance_name}'",
                    item.line)

    def _note_clock_reset(self, block: ast.AlwaysBlock) -> None:
        """First posedge edge is the clock; remaining edges are async resets."""
        clock_found = False
        for edge in block.edges:
            looks_like_reset = any(tag in edge.signal.lower()
                                   for tag in ("rst", "reset", "clr", "clear"))
            if not clock_found and not looks_like_reset:
                if edge.signal not in self.design.clocks:
                    self.design.clocks.append(edge.signal)
                clock_found = True
            else:
                if edge.signal not in self.design.resets:
                    self.design.resets.append(edge.signal)
        if not clock_found and block.edges:
            # All edges look like resets; treat the first as the clock anyway.
            first = block.edges[0].signal
            if first not in self.design.clocks:
                self.design.clocks.append(first)

    # -- reference checking ---------------------------------------------------

    def _check_references(self) -> None:
        known = set(self.design.symbols) | set(self.design.params) | _BUILTIN_CONSTS
        for item in self.module.items:
            if isinstance(item, (ast.ContinuousAssign, ast.AlwaysBlock)):
                for node in ast.walk(item):
                    if isinstance(node, ast.Ident) and node.name not in known:
                        self.error(f"identifier '{node.name}' is not declared",
                                   node.line)
            elif isinstance(item, ast.PropertyDecl):
                for node in ast.walk(item):
                    if isinstance(node, ast.Ident) and node.name not in known:
                        self.error(
                            f"identifier '{node.name}' in property "
                            f"'{item.name}' is not declared", node.line)
            elif isinstance(item, ast.AssertionItem) and item.inline is not None:
                for node in ast.walk(item.inline):
                    if isinstance(node, ast.Ident) and node.name not in known:
                        self.error(f"identifier '{node.name}' is not declared",
                                   node.line)

    # -- driver checking -------------------------------------------------------

    def _check_drivers(self) -> None:
        assign_targets: Dict[str, int] = {}
        proc_targets: Dict[str, int] = {}
        for item in self.design.assigns:
            for name, line in self._target_names(item.target):
                sym = self.design.symbols.get(name)
                if sym is None:
                    continue
                if sym.is_input:
                    self.error(f"continuous assignment to input '{name}'", line)
                elif sym.is_state:
                    self.error(
                        f"continuous assignment to reg '{name}' "
                        f"(must be a wire)", line)
                if name in assign_targets:
                    self.warn(f"'{name}' has multiple continuous drivers", line)
                assign_targets[name] = line
        for block in (self.design.seq_blocks + self.design.comb_blocks
                      + self.design.initial_blocks):
            for stmt in _walk_stmts(block.body):
                if not isinstance(stmt, ast.Assignment):
                    continue
                for name, line in self._target_names(stmt.target):
                    sym = self.design.symbols.get(name)
                    if sym is None:
                        continue
                    if sym.is_input:
                        self.error(f"procedural assignment to input '{name}'", line)
                    elif not sym.is_state:
                        self.error(
                            f"procedural assignment to wire '{name}' "
                            f"(must be a reg)", line)
                    if name in assign_targets:
                        self.error(
                            f"'{name}' driven by both assign and always", line)
                    proc_targets[name] = line

    def _target_names(self, target: ast.Expr):
        if isinstance(target, ast.Ident):
            yield target.name, target.line
        elif isinstance(target, (ast.BitSelect, ast.PartSelect)):
            yield from self._target_names(target.base)
        elif isinstance(target, ast.Concat):
            for part in target.parts:
                yield from self._target_names(part)

    # -- assertions -------------------------------------------------------------

    def _resolve_assertions(self) -> None:
        props = {p.name: p for p in self.module.properties()}
        for item in self.module.assertions():
            if item.inline is not None:
                prop = item.inline
            elif item.property_name is not None:
                prop = props.get(item.property_name)
                if prop is None:
                    self.error(
                        f"assertion '{item.label}' references unknown property "
                        f"'{item.property_name}'", item.line)
                    continue
            else:
                self.error(f"assertion '{item.label}' has no property", item.line)
                continue
            if prop.clock is not None and prop.clock.signal not in self.design.symbols:
                self.error(
                    f"property '{prop.name}' clocked on undeclared signal "
                    f"'{prop.clock.signal}'", prop.line)
                continue
            self.design.assertions.append(
                ResolvedAssertion(item.label, prop, item.message, item.line))


def _walk_stmts(stmt: ast.Stmt):
    """Yield every statement node under ``stmt`` (inclusive)."""
    yield stmt
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            yield from _walk_stmts(child)
    elif isinstance(stmt, ast.If):
        yield from _walk_stmts(stmt.then)
        if stmt.other is not None:
            yield from _walk_stmts(stmt.other)
    elif isinstance(stmt, ast.Case):
        for case_item in stmt.items:
            yield from _walk_stmts(case_item.body)


def elaborate(module: ast.Module, strict: bool = True) -> Design:
    """Elaborate ``module``.

    With ``strict`` (default) a :class:`VerilogSemanticError` is raised on
    the first error-severity diagnostic, mirroring a failed compile.  With
    ``strict=False`` the design is returned with ``diagnostics`` populated
    so callers (the datagen pipeline) can harvest failure analyses.
    """
    design = Elaborator(module).elaborate()
    if strict:
        for diag in design.diagnostics:
            if diag.is_error():
                raise VerilogSemanticError(diag.message, diag.line)
    return design
