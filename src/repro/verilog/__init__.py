"""Verilog-subset compiler frontend (substitute for Icarus Verilog).

The subset covers the synthesizable constructs our corpus generator emits:
module declarations with ANSI ports, parameters, ``wire``/``reg``
declarations, continuous ``assign``, clocked and combinational ``always``
blocks, ``if``/``else``, ``case``, blocking/non-blocking assignment, the
usual expression operators, bit/part selects, concatenation and replication,
plus the SVA constructs handled by :mod:`repro.sva`.

Public API:

- :func:`repro.verilog.parser.parse_source` — source text -> AST.
- :func:`repro.verilog.elaborator.elaborate` — AST -> elaborated design
  (symbol tables, width resolution, semantic checks).
- :func:`compile_source` — the one-call "Icarus" replacement: lex, parse,
  elaborate and lint, returning a :class:`CompileResult` whose ``ok`` flag
  and diagnostics mirror a compiler's pass/fail verdict.
"""

from repro.verilog.compile import CompileResult, compile_source
from repro.verilog.errors import (
    VerilogError,
    VerilogLexError,
    VerilogParseError,
    VerilogSemanticError,
)
from repro.verilog.parser import parse_source
from repro.verilog.writer import write_module

__all__ = [
    "CompileResult",
    "compile_source",
    "parse_source",
    "write_module",
    "VerilogError",
    "VerilogLexError",
    "VerilogParseError",
    "VerilogSemanticError",
]
