"""Recursive-descent parser for the Verilog/SVA subset.

``parse_source`` is the entry point used everywhere; it raises
:class:`VerilogParseError` on the first grammar violation (matching how the
datagen pipeline uses the Icarus substitute: a thrown diagnostic == failed
compilation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.verilog import ast
from repro.verilog.errors import VerilogParseError
from repro.verilog.lexer import Token, parse_number_literal, tokenize

# Binary operator precedence (higher binds tighter).  Mirrors IEEE 1800.
BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "~^": 4, "^~": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> VerilogParseError:
        token = token or self.peek()
        seen = token.text or "<eof>"
        return VerilogParseError(f"{message} (found {seen!r})", token.line)

    def expect_op(self, text: str) -> Token:
        token = self.peek()
        if not token.is_op(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_kw(self, text: str) -> Token:
        token = self.peek()
        if not token.is_kw(text):
            raise self.error(f"expected keyword {text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "id":
            raise self.error("expected identifier")
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.peek().is_op(text):
            self.advance()
            return True
        return False

    def accept_kw(self, text: str) -> bool:
        if self.peek().is_kw(text):
            self.advance()
            return True
        return False

    # -- source / module ----------------------------------------------------

    def parse_source(self) -> ast.Source:
        modules = []
        while self.peek().kind != "eof":
            if self.peek().is_kw("module"):
                modules.append(self.parse_module())
            else:
                raise self.error("expected 'module'")
        if not modules:
            raise VerilogParseError("source contains no modules", 1)
        return ast.Source(modules, line=modules[0].line)

    def parse_module(self) -> ast.Module:
        start = self.expect_kw("module")
        name = self.expect_ident().text
        ports: List[ast.Port] = []
        if self.accept_op("("):
            ports = self.parse_port_list()
            self.expect_op(")")
        self.expect_op(";")
        items: List[ast.Item] = []
        while not self.peek().is_kw("endmodule"):
            if self.peek().kind == "eof":
                raise self.error("missing 'endmodule'")
            items.extend(self.parse_item())
        end = self.expect_kw("endmodule")
        return ast.Module(name, ports, items, line=start.line, end_line=end.line)

    def parse_port_list(self) -> List[ast.Port]:
        ports: List[ast.Port] = []
        if self.peek().is_op(")"):
            return ports
        direction = None
        is_reg = False
        signed = False
        msb = lsb = 0
        while True:
            token = self.peek()
            if token.is_kw("input", "output", "inout"):
                direction = self.advance().text
                is_reg = False
                signed = False
                msb = lsb = 0
                if self.peek().is_kw("reg", "logic", "wire"):
                    is_reg = self.advance().text in ("reg", "logic")
                if self.accept_kw("signed"):
                    signed = True
                if self.peek().is_op("["):
                    msb, lsb = self.parse_range()
            if direction is None:
                raise self.error("port missing direction (non-ANSI ports unsupported)")
            ident = self.expect_ident()
            ports.append(ast.Port(direction, ident.text, msb, lsb, is_reg,
                                  signed, line=ident.line))
            if not self.accept_op(","):
                break
        return ports

    def parse_range(self):
        """Parse ``[msb:lsb]``.  Bounds fold to ints when constant, else the
        expression is kept and resolved against parameters at elaboration."""
        self.expect_op("[")
        msb_expr = self.parse_expression()
        self.expect_op(":")
        lsb_expr = self.parse_expression()
        self.expect_op("]")
        msb = _fold_const(msb_expr)
        lsb = _fold_const(lsb_expr)
        return (msb if msb is not None else msb_expr,
                lsb if lsb is not None else lsb_expr)

    def parse_const_int(self) -> int:
        """A constant integer expression (numbers, +,-,* on numbers)."""
        expr = self.parse_expression()
        value = _fold_const(expr)
        if value is None:
            raise self.error("expected constant expression", self.peek())
        return value

    # -- items --------------------------------------------------------------

    def parse_item(self) -> List[ast.Item]:
        token = self.peek()
        if token.is_kw("wire", "reg", "logic", "integer"):
            return self.parse_decl()
        if token.is_kw("parameter", "localparam"):
            return self.parse_param()
        if token.is_kw("assign"):
            return [self.parse_continuous_assign()]
        if token.is_kw("always", "always_ff", "always_comb"):
            return [self.parse_always()]
        if token.is_kw("property"):
            return [self.parse_property()]
        if token.is_kw("assert", "assume", "cover"):
            return [self.parse_assertion(label=None)]
        if token.is_kw("initial"):
            return [self.parse_initial()]
        if token.kind == "id":
            # Either "label: assert property ..." or a module instance.
            if self.peek(1).is_op(":"):
                label = self.advance().text
                self.expect_op(":")
                return [self.parse_assertion(label=label)]
            if self.peek(1).kind == "id":
                return [self.parse_instance()]
        raise self.error("unexpected token at module level")

    def parse_decl(self) -> List[ast.Decl]:
        kind_token = self.advance()
        kind = kind_token.text
        if kind == "logic":
            kind = "reg"
        signed = self.accept_kw("signed")
        msb = lsb = 0
        if kind == "integer":
            msb, lsb = 31, 0
        if self.peek().is_op("["):
            msb, lsb = self.parse_range()
        decls = []
        while True:
            ident = self.expect_ident()
            init = None
            if self.accept_op("="):
                init = self.parse_expression()
            decls.append(ast.Decl(kind, ident.text, msb, lsb, init, signed,
                                  line=ident.line))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        return decls

    def parse_param(self) -> List[ast.ParamDecl]:
        kw = self.advance()
        local = kw.text == "localparam"
        if self.peek().is_op("["):
            self.parse_range()  # parameter ranges are accepted and ignored
        params = []
        while True:
            ident = self.expect_ident()
            self.expect_op("=")
            value = self.parse_expression()
            params.append(ast.ParamDecl(ident.text, value, local, line=ident.line))
            if not self.accept_op(","):
                break
        self.expect_op(";")
        return params

    def parse_continuous_assign(self) -> ast.ContinuousAssign:
        start = self.expect_kw("assign")
        target = self.parse_lvalue()
        self.expect_op("=")
        value = self.parse_expression()
        self.expect_op(";")
        return ast.ContinuousAssign(target, value, line=start.line)

    def parse_always(self) -> ast.AlwaysBlock:
        start = self.advance()
        comb = start.text == "always_comb"
        edges: List[ast.EdgeSpec] = []
        if not comb:
            self.expect_op("@")
            if self.accept_op("*"):
                comb = True
            else:
                self.expect_op("(")
                if self.accept_op("*"):
                    comb = True
                else:
                    comb = self._parse_sensitivity(edges)
                self.expect_op(")")
        body = self.parse_statement()
        return ast.AlwaysBlock(edges, body, comb, line=start.line)

    def _parse_sensitivity(self, edges: List[ast.EdgeSpec]) -> bool:
        """Parse the @(...) list.  Returns True when combinational."""
        comb = False
        while True:
            token = self.peek()
            if token.is_kw("posedge", "negedge"):
                edge = self.advance().text
                signal = self.expect_ident().text
                edges.append(ast.EdgeSpec(edge, signal, line=token.line))
            else:
                # Plain signal list means a combinational block.
                self.expect_ident()
                comb = True
            if self.accept_kw("or") or self.accept_op(","):
                continue
            break
        if comb:
            edges.clear()
        return comb

    def parse_initial(self) -> ast.AlwaysBlock:
        """``initial`` blocks are parsed and retained as comb-like items;
        the simulator applies them once at time zero."""
        start = self.expect_kw("initial")
        body = self.parse_statement()
        block = ast.AlwaysBlock([], body, comb=False, line=start.line)
        return block

    def parse_instance(self) -> ast.Instance:
        module_name = self.expect_ident().text
        inst = self.expect_ident()
        self.expect_op("(")
        connections: List[Tuple[str, ast.Expr]] = []
        if not self.peek().is_op(")"):
            while True:
                self.expect_op(".")
                port = self.expect_ident().text
                self.expect_op("(")
                expr = self.parse_expression()
                self.expect_op(")")
                connections.append((port, expr))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        self.expect_op(";")
        return ast.Instance(module_name, inst.text, connections, line=inst.line)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_kw("begin"):
            return self.parse_block()
        if token.is_kw("if"):
            return self.parse_if()
        if token.is_kw("case", "casez", "casex"):
            return self.parse_case()
        if token.kind == "sys":
            return self.parse_sys_task()
        if token.is_op(";"):
            self.advance()
            return ast.Block([], line=token.line)
        return self.parse_assignment_stmt()

    def parse_block(self) -> ast.Block:
        start = self.expect_kw("begin")
        if self.accept_op(":"):
            self.expect_ident()
        stmts = []
        while not self.peek().is_kw("end"):
            if self.peek().kind == "eof":
                raise self.error("missing 'end'")
            stmts.append(self.parse_statement())
        self.expect_kw("end")
        return ast.Block(stmts, line=start.line)

    def parse_if(self) -> ast.If:
        start = self.expect_kw("if")
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then = self.parse_statement()
        other = None
        if self.accept_kw("else"):
            other = self.parse_statement()
        return ast.If(cond, then, other, line=start.line)

    def parse_case(self) -> ast.Case:
        start = self.advance()
        kind = start.text
        self.expect_op("(")
        subject = self.parse_expression()
        self.expect_op(")")
        items: List[ast.CaseItem] = []
        while not self.peek().is_kw("endcase"):
            if self.peek().kind == "eof":
                raise self.error("missing 'endcase'")
            token = self.peek()
            if self.accept_kw("default"):
                self.accept_op(":")
                body = self.parse_statement()
                items.append(ast.CaseItem([], body, is_default=True, line=token.line))
            else:
                labels = [self.parse_expression()]
                while self.accept_op(","):
                    labels.append(self.parse_expression())
                self.expect_op(":")
                body = self.parse_statement()
                items.append(ast.CaseItem(labels, body, line=token.line))
        self.expect_kw("endcase")
        return ast.Case(subject, items, kind, line=start.line)

    def parse_sys_task(self) -> ast.SysTaskCall:
        token = self.advance()
        args: List[ast.Expr] = []
        if self.accept_op("("):
            if not self.peek().is_op(")"):
                while True:
                    if self.peek().kind == "str":
                        stok = self.advance()
                        args.append(ast.Number(0, text=f'"{stok.text}"', line=stok.line))
                    else:
                        args.append(self.parse_expression())
                    if not self.accept_op(","):
                        break
            self.expect_op(")")
        self.expect_op(";")
        return ast.SysTaskCall(token.text, args, line=token.line)

    def parse_assignment_stmt(self) -> ast.Assignment:
        target = self.parse_lvalue()
        token = self.peek()
        if token.is_op("<="):
            self.advance()
            blocking = False
        elif token.is_op("="):
            self.advance()
            blocking = True
        else:
            raise self.error("expected '=' or '<=' in assignment")
        value = self.parse_expression()
        self.expect_op(";")
        return ast.Assignment(target, value, blocking, line=target.line)

    def parse_lvalue(self) -> ast.Expr:
        if self.peek().is_op("{"):
            return self.parse_concat()
        ident = self.expect_ident()
        expr: ast.Expr = ast.Ident(ident.text, line=ident.line)
        while self.peek().is_op("["):
            self.advance()
            first = self.parse_expression()
            if self.accept_op(":"):
                second = self.parse_expression()
                self.expect_op("]")
                expr = ast.PartSelect(expr, first, second, line=ident.line)
            else:
                self.expect_op("]")
                expr = ast.BitSelect(expr, first, line=ident.line)
        return expr

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept_op("?"):
            then = self.parse_expression()
            self.expect_op(":")
            other = self.parse_expression()
            return ast.Ternary(cond, then, other, line=cond.line)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op":
                break
            prec = BINARY_PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                break
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in UNARY_OPS:
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.peek().is_op("["):
            self.advance()
            first = self.parse_expression()
            if self.accept_op(":"):
                second = self.parse_expression()
                self.expect_op("]")
                expr = ast.PartSelect(expr, first, second, line=expr.line)
            else:
                self.expect_op("]")
                expr = ast.BitSelect(expr, first, line=expr.line)
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            width, value, xmask = parse_number_literal(token.text)
            return ast.Number(value, width, xmask, token.text, line=token.line)
        if token.kind == "id":
            self.advance()
            return ast.Ident(token.text, line=token.line)
        if token.kind == "sys":
            self.advance()
            args: List[ast.Expr] = []
            if self.accept_op("("):
                if not self.peek().is_op(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
            return ast.SysCall(token.text, args, line=token.line)
        if token.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if token.is_op("{"):
            return self.parse_concat()
        raise self.error("expected expression")

    def parse_concat(self) -> ast.Expr:
        start = self.expect_op("{")
        first = self.parse_expression()
        if self.peek().is_op("{"):
            # Replication: {count{expr}}
            self.advance()
            value = self.parse_expression()
            self.expect_op("}")
            self.expect_op("}")
            return ast.Repeat(first, value, line=start.line)
        parts = [first]
        while self.accept_op(","):
            parts.append(self.parse_expression())
        self.expect_op("}")
        return ast.Concat(parts, line=start.line)

    # -- SVA ------------------------------------------------------------------

    def parse_property(self) -> ast.PropertyDecl:
        start = self.expect_kw("property")
        name = self.expect_ident().text
        self.expect_op(";")
        clock, disable, body = self.parse_property_spec()
        self.expect_op(";")
        self.expect_kw("endproperty")
        return ast.PropertyDecl(name, clock, disable, body, line=start.line)

    def parse_property_spec(self) -> Tuple[Optional[ast.EdgeSpec],
                                           Optional[ast.Expr], ast.PropExpr]:
        clock = None
        if self.accept_op("@"):
            self.expect_op("(")
            token = self.peek()
            edge = "posedge"
            if token.is_kw("posedge", "negedge"):
                edge = self.advance().text
            signal = self.expect_ident().text
            clock = ast.EdgeSpec(edge, signal, line=token.line)
            self.expect_op(")")
        disable = None
        if self.accept_kw("disable"):
            self.expect_kw("iff")
            self.expect_op("(")
            disable = self.parse_expression()
            self.expect_op(")")
        body = self.parse_prop_expr()
        return clock, disable, body

    def parse_prop_expr(self) -> ast.PropExpr:
        lhs = self.parse_prop_sequence()
        token = self.peek()
        if token.is_op("|->", "|=>"):
            self.advance()
            rhs = self.parse_prop_expr()
            return ast.PropImplication(lhs, rhs, overlapped=(token.text == "|->"),
                                       line=token.line)
        return lhs

    def parse_prop_sequence(self) -> ast.PropExpr:
        if self.peek().is_kw("not"):
            token = self.advance()
            operand = self.parse_prop_sequence()
            return ast.PropNot(operand, line=token.line)
        if self.peek().is_op("##"):
            # Leading delay (common after |->): '##N expr' with no LHS term.
            token = self.advance()
            lo, hi = self.parse_delay_range()
            rhs = self.parse_prop_term()
            lhs: ast.PropExpr = ast.PropDelay(None, lo, hi, rhs, line=token.line)
        else:
            lhs = self.parse_prop_term()
        while self.peek().is_op("##"):
            token = self.advance()
            lo, hi = self.parse_delay_range()
            rhs = self.parse_prop_term()
            lhs = ast.PropDelay(lhs, lo, hi, rhs, line=token.line)
        return lhs

    def parse_delay_range(self) -> Tuple[int, int]:
        if self.accept_op("["):
            lo = self.parse_const_int()
            self.expect_op(":")
            hi = self.parse_const_int()
            self.expect_op("]")
            return lo, hi
        n = self.parse_const_int()
        return n, n

    def parse_prop_term(self) -> ast.PropExpr:
        token = self.peek()
        expr = self.parse_expression()
        return ast.PropBool(expr, line=token.line)

    def parse_assertion(self, label: Optional[str]) -> ast.AssertionItem:
        start = self.expect_kw("assert")
        self.expect_kw("property")
        self.expect_op("(")
        property_name = None
        inline = None
        if (self.peek().kind == "id" and self.peek(1).is_op(")")):
            property_name = self.advance().text
        else:
            clock, disable, body = self.parse_property_spec()
            inline = ast.PropertyDecl(label or "_inline", clock, disable, body,
                                      line=start.line)
        self.expect_op(")")
        message = ""
        if self.accept_kw("else"):
            token = self.peek()
            if token.kind == "sys":
                self.advance()
                if self.accept_op("("):
                    while not self.peek().is_op(")"):
                        tok = self.advance()
                        if tok.kind == "str" and not message:
                            message = tok.text
                        if tok.kind == "eof":
                            raise self.error("unterminated $error call")
                    self.expect_op(")")
            else:
                raise self.error("expected system task after 'else'")
        self.expect_op(";")
        return ast.AssertionItem(label or f"assert_{start.line}", property_name,
                                 inline, message, line=start.line)


def _fold_const(expr: ast.Expr) -> Optional[int]:
    """Constant-fold simple integer expressions (for ranges / delays)."""
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _fold_const(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        lhs = _fold_const(expr.lhs)
        rhs = _fold_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/" and rhs != 0:
            return lhs // rhs
    return None


def parse_source(source: str) -> ast.Source:
    """Parse Verilog source text into an AST."""
    return Parser(tokenize(source)).parse_source()


def parse_module(source: str) -> ast.Module:
    """Parse source expected to contain exactly one module."""
    parsed = parse_source(source)
    if len(parsed.modules) != 1:
        raise VerilogParseError(
            f"expected exactly one module, found {len(parsed.modules)}", 1)
    return parsed.modules[0]
