"""One-call compiler frontend — the Icarus Verilog substitute.

``compile_source`` runs lex -> parse -> elaborate and returns a
:class:`CompileResult` carrying the pass/fail verdict, diagnostics, the AST
and the elaborated design.  The datagen pipeline treats ``result.ok`` like
the exit status of ``iverilog`` and ``result.failure_summary()`` like its
stderr.

Compilation is pure, so results are memoized in a process-local
:class:`CompileCache` keyed by a content hash of the source text: the same
golden source used to be recompiled by the corpus generator, Stage 1, the
SVA insertion path, the bug-mutant syntax check and the semantic
re-verification in eval.  Cached :class:`CompileResult` objects are shared
— treat them as immutable.  Hit/miss counters are exported through
:mod:`repro.engine.metrics` so worker-pool runs can aggregate them into
``DatasetBundle.stats``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.engine import metrics
from repro.verilog import ast
from repro.verilog.elaborator import Design, elaborate
from repro.verilog.errors import Diagnostic, VerilogError
from repro.verilog.parser import parse_source


class CompileResult:
    """Outcome of compiling one source string."""

    def __init__(self, source_text: str):
        self.source_text = source_text
        self.ok = False
        self.source: Optional[ast.Source] = None
        self.design: Optional[Design] = None
        self.diagnostics: List[Diagnostic] = []

    @property
    def module(self) -> Optional[ast.Module]:
        if self.source and self.source.modules:
            return self.source.modules[0]
        return None

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error()]

    def failure_summary(self) -> str:
        """Compiler-style multi-line error report (empty when ok)."""
        return "\n".join(repr(d) for d in self.errors())

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.ok else f"{len(self.errors())} error(s)"
        return f"CompileResult({status})"


class CompileCache:
    """Content-hash LRU memoization of :func:`compile_source`.

    Thread-safe; failures are cached too (a source that does not compile
    never will).  Counters are monotonic so deltas between snapshots are
    meaningful.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, CompileResult]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def key(source_text: str) -> str:
        return hashlib.sha256(source_text.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(self, source_text: str) -> CompileResult:
        key = self.key(source_text)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
        result = _compile_uncached(source_text)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CompileCache({len(self._entries)}/{self.max_entries} "
                f"entries, {self.hits} hits, {self.misses} misses)")


_DEFAULT_CACHE = CompileCache()
_CACHE_ENABLED = True


def default_compile_cache() -> CompileCache:
    return _DEFAULT_CACHE


def configure_compile_cache(enabled: Optional[bool] = None,
                            max_entries: Optional[int] = None):
    """Reconfigure the process-wide cache; returns the previous settings.

    Also used as a worker-pool initializer so subprocesses inherit the
    pipeline's cache knobs.
    """
    global _DEFAULT_CACHE, _CACHE_ENABLED
    previous = (_CACHE_ENABLED, _DEFAULT_CACHE.max_entries)
    if enabled is not None:
        _CACHE_ENABLED = bool(enabled)
    if max_entries is not None and max_entries != _DEFAULT_CACHE.max_entries:
        _DEFAULT_CACHE = CompileCache(max_entries=max_entries)
    return previous


def compile_cache_counters() -> Dict[str, int]:
    """Metrics provider: current process-local cache counters."""
    return _DEFAULT_CACHE.counters()


metrics.register_provider("compile_cache", compile_cache_counters)


def _compile_uncached(source_text: str) -> CompileResult:
    result = CompileResult(source_text)
    try:
        result.source = parse_source(source_text)
    except VerilogError as exc:
        result.diagnostics.append(Diagnostic(Diagnostic.ERROR, exc.message, exc.line))
        return result
    if len(result.source.modules) != 1:
        result.diagnostics.append(Diagnostic(
            Diagnostic.ERROR,
            f"expected exactly one module, found {len(result.source.modules)}",
            result.source.modules[0].line if result.source.modules else 1))
        # Still try to elaborate the first module for diagnostics.
    module = result.source.modules[0]
    design = elaborate(module, strict=False)
    result.design = design
    result.diagnostics.extend(design.diagnostics)
    result.ok = not any(d.is_error() for d in result.diagnostics)
    return result


def compile_source(source_text: str, use_cache: bool = True) -> CompileResult:
    """Compile Verilog source text.

    Never raises for source-level problems; syntax and semantic failures are
    reported through ``result.ok`` / ``result.diagnostics`` so the pipeline
    can harvest failing samples for the Verilog-PT dataset exactly as the
    paper keeps non-compiling code for pretraining.

    Results are memoized in the process-wide :class:`CompileCache` unless
    ``use_cache=False`` or the cache is globally disabled; cached results
    are shared objects and must not be mutated.
    """
    if use_cache and _CACHE_ENABLED:
        return _DEFAULT_CACHE.get_or_compile(source_text)
    return _compile_uncached(source_text)
