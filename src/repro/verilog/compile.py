"""One-call compiler frontend — the Icarus Verilog substitute.

``compile_source`` runs lex -> parse -> elaborate and returns a
:class:`CompileResult` carrying the pass/fail verdict, diagnostics, the AST
and the elaborated design.  The datagen pipeline treats ``result.ok`` like
the exit status of ``iverilog`` and ``result.failure_summary()`` like its
stderr.
"""

from __future__ import annotations

from typing import List, Optional

from repro.verilog import ast
from repro.verilog.elaborator import Design, elaborate
from repro.verilog.errors import Diagnostic, VerilogError
from repro.verilog.parser import parse_source


class CompileResult:
    """Outcome of compiling one source string."""

    def __init__(self, source_text: str):
        self.source_text = source_text
        self.ok = False
        self.source: Optional[ast.Source] = None
        self.design: Optional[Design] = None
        self.diagnostics: List[Diagnostic] = []

    @property
    def module(self) -> Optional[ast.Module]:
        if self.source and self.source.modules:
            return self.source.modules[0]
        return None

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error()]

    def failure_summary(self) -> str:
        """Compiler-style multi-line error report (empty when ok)."""
        return "\n".join(repr(d) for d in self.errors())

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.ok else f"{len(self.errors())} error(s)"
        return f"CompileResult({status})"


def compile_source(source_text: str) -> CompileResult:
    """Compile Verilog source text.

    Never raises for source-level problems; syntax and semantic failures are
    reported through ``result.ok`` / ``result.diagnostics`` so the pipeline
    can harvest failing samples for the Verilog-PT dataset exactly as the
    paper keeps non-compiling code for pretraining.
    """
    result = CompileResult(source_text)
    try:
        result.source = parse_source(source_text)
    except VerilogError as exc:
        result.diagnostics.append(Diagnostic(Diagnostic.ERROR, exc.message, exc.line))
        return result
    if len(result.source.modules) != 1:
        result.diagnostics.append(Diagnostic(
            Diagnostic.ERROR,
            f"expected exactly one module, found {len(result.source.modules)}",
            result.source.modules[0].line if result.source.modules else 1))
        # Still try to elaborate the first module for diagnostics.
    module = result.source.modules[0]
    design = elaborate(module, strict=False)
    result.design = design
    result.diagnostics.extend(design.diagnostics)
    result.ok = not any(d.is_error() for d in result.diagnostics)
    return result
