"""One-call compiler frontend — the Icarus Verilog substitute.

``compile_source`` runs lex -> parse -> elaborate and returns a
:class:`CompileResult` carrying the pass/fail verdict, diagnostics, the AST
and the elaborated design.  The datagen pipeline treats ``result.ok`` like
the exit status of ``iverilog`` and ``result.failure_summary()`` like its
stderr.

Compilation is pure, so results are memoized in a process-local
:class:`CompileCache` keyed by a content hash of the source text: the same
golden source used to be recompiled by the corpus generator, Stage 1, the
SVA insertion path, the bug-mutant syntax check and the semantic
re-verification in eval.  Cached :class:`CompileResult` objects are shared
— treat them as immutable.  Hit/miss counters are exported through
:mod:`repro.engine.metrics` so worker-pool runs can aggregate them into
``DatasetBundle.stats``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.engine import metrics
from repro.store.base import NS_COMPILE
from repro.store.disk import DiskStore
from repro.verilog import ast
from repro.verilog.elaborator import Design, elaborate
from repro.verilog.errors import Diagnostic, VerilogError
from repro.verilog.parser import parse_source


class CompileResult:
    """Outcome of compiling one source string.

    ``content_key`` is the SHA-256 content hash of the source — the same
    key the :class:`CompileCache` files the result under.  Downstream
    caches (notably the compiled-simulation program cache in
    :mod:`repro.sim.compiled`, which keys on the shared ``design``
    instance this result carries) use it to report which content a cached
    artifact belongs to.  Class-level default keeps results unpickled
    from older disk stores working.
    """

    content_key: Optional[str] = None

    def __init__(self, source_text: str):
        self.source_text = source_text
        self.ok = False
        self.source: Optional[ast.Source] = None
        self.design: Optional[Design] = None
        self.diagnostics: List[Diagnostic] = []
        self.content_key = CompileCache.key(source_text)

    @property
    def module(self) -> Optional[ast.Module]:
        if self.source and self.source.modules:
            return self.source.modules[0]
        return None

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error()]

    def failure_summary(self) -> str:
        """Compiler-style multi-line error report (empty when ok)."""
        return "\n".join(repr(d) for d in self.errors())

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.ok else f"{len(self.errors())} error(s)"
        return f"CompileResult({status})"


class CompileCache:
    """Content-hash LRU memoization of :func:`compile_source`.

    Thread-safe; failures are cached too (a source that does not compile
    never will).  Counters are monotonic so deltas between snapshots are
    meaningful.

    An optional ``store`` (any :class:`repro.store.ArtifactStore`) is the
    persistent backing tier: a memory miss consults it before compiling,
    and every fresh compile is written through, so compile artifacts
    survive across runs and are shared by process-pool workers pointed at
    the same store directory.  ``store_hits`` counts refills from it; the
    invariant ``hits + store_hits + misses == lookups`` holds, and when a
    store is attached its own hit/miss deltas equal ``store_hits`` plus
    ``misses`` (every memory miss consults the store exactly once).
    """

    def __init__(self, max_entries: int = 4096, store=None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.store = store
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self._entries: "OrderedDict[str, CompileResult]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def key(source_text: str) -> str:
        return hashlib.sha256(source_text.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._entries)

    def _insert_locked(self, key: str, result: CompileResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compile(self, source_text: str) -> CompileResult:
        key = self.key(source_text)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
        if self.store is not None:
            stored = self.store.get(NS_COMPILE, key)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                    self._insert_locked(key, stored)
                return stored
        with self._lock:
            self.misses += 1
        result = _compile_uncached(source_text)
        with self._lock:
            self._insert_locked(key, result)
        if self.store is not None:
            self.store.put(NS_COMPILE, key, result)
        return result

    def clear(self) -> None:
        """Drop the in-memory tier (the backing store keeps its entries)."""
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "store_hits": self.store_hits}

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without compiling (either tier)."""
        total = self.hits + self.store_hits + self.misses
        return (self.hits + self.store_hits) / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CompileCache({len(self._entries)}/{self.max_entries} "
                f"entries, {self.hits} hits, {self.misses} misses)")


_DEFAULT_CACHE = CompileCache()
_CACHE_ENABLED = True
_STORE_PATH = ""  # "" = no persistent tier
_STORE_MAX_BYTES: Optional[int] = None


def default_compile_cache() -> CompileCache:
    return _DEFAULT_CACHE


def configure_compile_cache(enabled: Optional[bool] = None,
                            max_entries: Optional[int] = None,
                            store_path: Optional[str] = None,
                            store_max_bytes: Optional[int] = None):
    """Reconfigure the process-wide cache; returns the previous settings.

    Also used as a worker-pool initializer so subprocesses inherit the
    pipeline's cache knobs — which is why every argument is a plain
    picklable value.  ``store_path`` attaches a :class:`DiskStore` at
    that directory as the cache's persistent tier (each process opens
    its own handle; atomic blob writes make sharing safe); pass ``""``
    to detach, ``None`` to leave the store settings unchanged.
    ``store_max_bytes`` follows the same shape: ``None`` leaves the
    budget unchanged and ``0`` resets it to the store default — so the
    returned settings tuple always restores exactly.
    """
    global _DEFAULT_CACHE, _CACHE_ENABLED, _STORE_PATH, _STORE_MAX_BYTES
    previous = (_CACHE_ENABLED, _DEFAULT_CACHE.max_entries, _STORE_PATH,
                _STORE_MAX_BYTES or 0)
    if enabled is not None:
        _CACHE_ENABLED = bool(enabled)
    new_path = _STORE_PATH if store_path is None else str(store_path)
    new_bytes = (_STORE_MAX_BYTES if store_max_bytes is None
                 else (store_max_bytes or None))
    new_entries = (_DEFAULT_CACHE.max_entries if max_entries is None
                   else max_entries)
    if (new_entries, new_path, new_bytes) != (
            _DEFAULT_CACHE.max_entries, _STORE_PATH, _STORE_MAX_BYTES):
        store = None
        if new_path:
            kwargs = {} if new_bytes is None else {"max_bytes": new_bytes}
            store = DiskStore(new_path, **kwargs)
        _STORE_PATH, _STORE_MAX_BYTES = new_path, new_bytes
        _DEFAULT_CACHE = CompileCache(max_entries=new_entries, store=store)
    return previous


def compile_cache_counters() -> Dict[str, int]:
    """Metrics provider: current process-local cache counters."""
    return _DEFAULT_CACHE.counters()


metrics.register_provider("compile_cache", compile_cache_counters)


def _compile_uncached(source_text: str) -> CompileResult:
    result = CompileResult(source_text)
    try:
        result.source = parse_source(source_text)
    except VerilogError as exc:
        result.diagnostics.append(Diagnostic(Diagnostic.ERROR, exc.message, exc.line))
        return result
    if len(result.source.modules) != 1:
        result.diagnostics.append(Diagnostic(
            Diagnostic.ERROR,
            f"expected exactly one module, found {len(result.source.modules)}",
            result.source.modules[0].line if result.source.modules else 1))
        # Still try to elaborate the first module for diagnostics.
    module = result.source.modules[0]
    design = elaborate(module, strict=False)
    result.design = design
    result.diagnostics.extend(design.diagnostics)
    result.ok = not any(d.is_error() for d in result.diagnostics)
    return result


def compile_source(source_text: str, use_cache: bool = True) -> CompileResult:
    """Compile Verilog source text.

    Never raises for source-level problems; syntax and semantic failures are
    reported through ``result.ok`` / ``result.diagnostics`` so the pipeline
    can harvest failing samples for the Verilog-PT dataset exactly as the
    paper keeps non-compiling code for pretraining.

    Results are memoized in the process-wide :class:`CompileCache` unless
    ``use_cache=False`` or the cache is globally disabled; cached results
    are shared objects and must not be mutated.
    """
    if use_cache and _CACHE_ENABLED:
        return _DEFAULT_CACHE.get_or_compile(source_text)
    return _compile_uncached(source_text)
