"""Structural analysis: def-use graphs and assertion cones.

Used by the CoT oracle (to narrate a signal-tracing argument), the model's
feature extractor (cone membership is the strongest localization signal)
and the bug classifier.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.verilog import ast


class DefUse:
    """Per-signal driver information for one module.

    Attributes
    ----------
    drivers:    target -> set of signals read by any statement assigning it
                (including gating conditions on the path).
    def_lines:  target -> sorted line numbers of statements assigning it.
    """

    def __init__(self, module: ast.Module):
        self.module = module
        self.drivers: Dict[str, Set[str]] = {}
        self.def_lines: Dict[str, List[int]] = {}
        self._build()

    def _build(self) -> None:
        for item in self.module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._note(item.target, item.value, [], item.line)
            elif isinstance(item, ast.AlwaysBlock):
                self._visit(item.body, [])

    def _visit(self, stmt: ast.Stmt, guards: List[ast.Expr]) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._visit(child, guards)
        elif isinstance(stmt, ast.Assignment):
            self._note(stmt.target, stmt.value, guards, stmt.line)
        elif isinstance(stmt, ast.If):
            self._visit(stmt.then, guards + [stmt.cond])
            if stmt.other is not None:
                self._visit(stmt.other, guards + [stmt.cond])
        elif isinstance(stmt, ast.Case):
            for item in stmt.items:
                self._visit(item.body, guards + [stmt.subject])

    def _note(self, target: ast.Expr, value: ast.Expr,
              guards: List[ast.Expr], line: int) -> None:
        reads: Set[str] = set(ast.collect_idents(value))
        lines = {line}
        for guard in guards:
            reads.update(ast.collect_idents(guard))
            # Guard-header lines gate the target's update, so they are
            # definition sites too: a bug on an 'if (...)' line is in the
            # cone of everything it gates.
            lines.update(n.line for n in ast.walk(guard))
        for name in _target_names(target):
            self.drivers.setdefault(name, set()).update(reads)
            self.def_lines.setdefault(name, [])
            for l in lines:
                if l not in self.def_lines[name]:
                    self.def_lines[name].append(l)
        for name in self.def_lines:
            self.def_lines[name].sort()

    def fanin_cone(self, roots: List[str], max_depth: int = 8) -> Set[str]:
        """Transitive closure of drivers starting from ``roots``."""
        cone: Set[str] = set(roots)
        frontier = set(roots)
        for _ in range(max_depth):
            new: Set[str] = set()
            for name in frontier:
                new.update(self.drivers.get(name, ()))
            new -= cone
            if not new:
                break
            cone.update(new)
            frontier = new
        return cone

    def cone_lines(self, roots: List[str], max_depth: int = 8) -> Set[int]:
        """Line numbers of every statement driving a cone member."""
        lines: Set[int] = set()
        for name in self.fanin_cone(roots, max_depth):
            lines.update(self.def_lines.get(name, ()))
        return lines


def _target_names(target: ast.Expr) -> List[str]:
    if isinstance(target, ast.Ident):
        return [target.name]
    if isinstance(target, (ast.BitSelect, ast.PartSelect)):
        return _target_names(target.base)
    if isinstance(target, ast.Concat):
        names: List[str] = []
        for part in target.parts:
            names.extend(_target_names(part))
        return names
    return []
