"""Arbiter template families with grant invariants.

The seed corpus has one fixed-priority arbiter; these add a round-robin
arbiter (rotating pointer, fairness-by-rotation) and a priority arbiter
with a per-channel enable mask — both with one-hot/causality grant
invariants for the SVA oracle.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_round_robin_arbiter(rng: random.Random) -> DesignSeed:
    """Round-robin arbiter: the pointer rotates past each served channel."""
    channels = rng.choice([2, 3])
    ptr_width = max((channels - 1).bit_length(), 1)
    name = f"rr_arbiter_{channels}ch_{design_uid(rng)}"
    # pick[c]: for each pointer value, c wins when no channel earlier in
    # the rotation (ptr, ptr+1, ...) is requesting.
    terms = {c: [] for c in range(channels)}
    for p in range(channels):
        order = [(p + k) % channels for k in range(channels)]
        for idx, c in enumerate(order):
            conds = [f"ptr == {ptr_width}'d{p}", f"req[{c}]"]
            conds += [f"!req[{j}]" for j in order[:idx]]
            terms[c].append("(" + " && ".join(conds) + ")")
    picks = "\n".join(
        f"  assign pick[{c}] = {' || '.join(terms[c])};"
        for c in range(channels))
    ptr_update = "\n".join(
        f"    else if (pick[{c}])\n"
        f"      ptr <= {ptr_width}'d{(c + 1) % channels};"
        for c in range(channels))
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{channels - 1}:0] req,
  output reg [{channels - 1}:0] gnt,
  output reg [{ptr_width - 1}:0] ptr
);
  wire [{channels - 1}:0] pick;
{picks}
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      gnt <= {channels}'d0;
    else
      gnt <= pick;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      ptr <= {ptr_width}'d0;
{ptr_update}
  end
endmodule
"""
    hints = [
        SvaHint("grant_onehot0", consequent="$onehot0(gnt)",
                message="at most one requester may hold the grant"),
        SvaHint("grant_needs_req", consequent="(gnt & ~$past(req)) == 0",
                message="a grant must answer a request from the previous cycle"),
        SvaHint("ptr_legal", consequent=f"ptr <= {ptr_width}'d{channels - 1}",
                message="the rotation pointer must name a real channel"),
        SvaHint("busy_grants",
                antecedent=f"req == {channels}'d{(1 << channels) - 1}",
                delay=1, consequent="$onehot(gnt)",
                message="with every channel requesting, exactly one wins"),
        SvaHint("serve0_rotates", antecedent="pick[0]", delay=1,
                consequent=f"gnt[0] && ptr == {ptr_width}'d{1 % channels}",
                message="serving channel 0 must rotate the pointer past it"),
    ]
    meta = TemplateMeta(
        family="round_robin_arbiter",
        params={"channels": channels},
        summary=f"A {channels}-channel round-robin arbiter whose priority "
                f"pointer rotates past each served channel.",
        behaviour=[
            "pick selects the first requester at or after the pointer",
            "gnt registers pick every clock and is one-hot or idle",
            "a served channel moves the pointer to its successor",
            "rotation gives every requester a turn under full load",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_priority_arbiter(rng: random.Random) -> DesignSeed:
    """Fixed-priority arbiter gated by a per-channel enable mask."""
    channels = rng.choice([2, 3, 4])
    name = f"prio_arbiter_{channels}ch_{design_uid(rng)}"
    picks = []
    for c in range(channels):
        conds = [f"!eff[{j}]" for j in range(c)] + [f"eff[{c}]"]
        picks.append(f"  assign pick[{c}] = {' && '.join(conds)};")
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{channels - 1}:0] req,
  input [{channels - 1}:0] en,
  output reg [{channels - 1}:0] gnt
);
  wire [{channels - 1}:0] eff;
  wire [{channels - 1}:0] pick;
  assign eff = req & en;
{chr(10).join(picks)}
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      gnt <= {channels}'d0;
    else
      gnt <= pick;
  end
endmodule
"""
    hints = [
        SvaHint("grant_onehot0", consequent="$onehot0(gnt)",
                message="at most one requester may hold the grant"),
        SvaHint("top_enabled_wins", antecedent="req[0] && en[0]", delay=1,
                consequent="gnt[0]",
                message="the top channel wins whenever it is enabled and "
                        "requesting"),
        SvaHint("masked_never_granted", consequent="(gnt & ~$past(en)) == 0",
                message="a disabled channel must never receive the grant"),
        SvaHint("grant_needs_req", consequent="(gnt & ~$past(req)) == 0",
                message="a grant must answer a request from the previous cycle"),
        SvaHint("idle_when_masked",
                antecedent=f"eff == {channels}'d0", delay=1,
                consequent=f"gnt == {channels}'d0",
                message="no enabled request means no grant"),
    ]
    meta = TemplateMeta(
        family="priority_arbiter",
        params={"channels": channels},
        summary=f"A {channels}-channel fixed-priority arbiter whose requests "
                f"are gated by a per-channel enable mask (channel 0 highest).",
        behaviour=[
            "eff masks the request vector with the enable inputs",
            "pick selects the lowest-index effective request",
            "gnt registers pick every clock and is one-hot or idle",
            "disabled channels can never be granted",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


ARBITER_TEMPLATES = {
    "round_robin_arbiter": make_round_robin_arbiter,
    "priority_arbiter": make_priority_arbiter,
}
