"""Datapath template families: ALUs, comparators, saturating counters,
gray-code counters, LFSRs, PWM generators, decoders."""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_alu(rng: random.Random) -> DesignSeed:
    """Registered-output ALU with a case-selected operation."""
    width = rng.choice([4, 8, 16])
    # AND and XOR always present (the SVA hints reference them); the rest
    # pad out the opcode space for length/variety.
    ops = [("ADD", "a + b"), ("SUB", "a - b"), ("AND", "a & b"),
           ("XOR", "a ^ b"), ("OR", "a | b"), ("SHL", "a << 1"),
           ("SHR", "a >> 1"), ("PASS", "a")]
    count = rng.choice([4, 6, 8])
    chosen = ops[:count]
    op_width = max((count - 1).bit_length(), 1)
    name = f"alu_{design_uid(rng)}"
    cases = "\n".join(
        f"      {op_width}'d{i}:\n        result <= {expr};"
        for i, (_, expr) in enumerate(chosen))
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{op_width - 1}:0] op,
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  output reg [{width - 1}:0] result,
  output wire zero
);
  assign zero = result == {width}'d0;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      result <= {width}'d0;
    else begin
      case (op)
{cases}
      default:
        result <= {width}'d0;
      endcase
    end
  end
endmodule
"""
    and_index = next(i for i, (mnemonic, _) in enumerate(chosen)
                     if mnemonic == "AND")
    xor_index = next(i for i, (mnemonic, _) in enumerate(chosen)
                     if mnemonic == "XOR")
    hints = [
        SvaHint("and_result", antecedent=f"op == {op_width}'d{and_index}",
                delay=1, consequent="result == ($past(a) & $past(b))",
                message="AND op must produce the bitwise and of the operands"),
        SvaHint("xor_result", antecedent=f"op == {op_width}'d{xor_index}",
                delay=1, consequent="result == ($past(a) ^ $past(b))",
                message="XOR op must produce the bitwise xor of the operands"),
        SvaHint("zero_flag", consequent=f"zero == (result == {width}'d0)",
                message="zero flag must mirror an all-zero result"),
    ]
    meta = TemplateMeta(
        family="alu",
        params={"width": width, "ops": count},
        summary=f"A {width}-bit ALU with {count} operations and a registered "
                f"result plus a combinational zero flag.",
        behaviour=[
            "op selects the operation applied to operands a and b",
            "result registers the selected operation every clock",
            "unknown opcodes clear the result",
            "zero is high whenever result is all zeros",
        ]
        + [f"op {i} computes {expr}" for i, (_, expr) in enumerate(chosen)],
        sva_hints=hints,
        port_notes={"op": "operation select"},
    )
    return DesignSeed(name, source, meta)


def make_comparator(rng: random.Random) -> DesignSeed:
    """Registered magnitude comparator with three flags."""
    width = rng.choice([4, 8, 12])
    name = f"cmp_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] a,
  input [{width - 1}:0] b,
  output reg gt_flag,
  output reg lt_flag,
  output reg eq_flag
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      gt_flag <= 1'b0;
      lt_flag <= 1'b0;
      eq_flag <= 1'b0;
    end
    else begin
      gt_flag <= a > b;
      lt_flag <= a < b;
      eq_flag <= a == b;
    end
  end
endmodule
"""
    hints = [
        SvaHint("gt_tracks", antecedent="a > b", delay=1, consequent="gt_flag",
                message="gt_flag must register a > b"),
        SvaHint("eq_tracks", antecedent="a == b", delay=1, consequent="eq_flag",
                message="eq_flag must register a == b"),
        SvaHint("flags_exclusive", consequent="!(gt_flag && lt_flag)",
                message="gt and lt can never both be set"),
    ]
    meta = TemplateMeta(
        family="comparator",
        params={"width": width},
        summary=f"A {width}-bit magnitude comparator with registered "
                f"greater/less/equal flags.",
        behaviour=[
            "flags register the comparison of a and b each clock",
            "exactly one of gt/lt/eq reflects the previous-cycle operands",
            "reset clears all flags",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_saturating_counter(rng: random.Random) -> DesignSeed:
    """Up/down counter saturating at [0, MAX]."""
    width = rng.choice([3, 4, 6])
    maximum = rng.randrange(3, (1 << width) - 1)
    name = f"sat_counter_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input inc,
  input dec,
  output reg [{width - 1}:0] level
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      level <= {width}'d0;
    else if (inc && !dec) begin
      if (level < {width}'d{maximum})
        level <= level + {width}'d1;
    end
    else if (dec && !inc) begin
      if (level > {width}'d0)
        level <= level - {width}'d1;
    end
  end
endmodule
"""
    hints = [
        SvaHint("level_bounded", consequent=f"level <= {width}'d{maximum}",
                message="level must never exceed the saturation maximum"),
        SvaHint("saturates_high",
                antecedent=f"inc && !dec && level == {width}'d{maximum}",
                delay=1, consequent=f"level == {width}'d{maximum}",
                message="incrementing at the maximum must hold the level"),
        SvaHint("dec_at_zero", antecedent=f"dec && !inc && level == {width}'d0",
                delay=1, consequent=f"level == {width}'d0",
                message="decrementing at zero must hold the level"),
    ]
    meta = TemplateMeta(
        family="saturating_counter",
        params={"width": width, "maximum": maximum},
        summary=f"An up/down counter saturating at 0 and {maximum}.",
        behaviour=[
            "inc raises the level by one unless already at the maximum",
            "dec lowers the level by one unless already at zero",
            "simultaneous inc and dec leave the level unchanged",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_gray_counter(rng: random.Random) -> DesignSeed:
    """Free-running binary counter with gray-coded output."""
    width = rng.choice([3, 4, 5, 6])
    name = f"gray_counter_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  output wire [{width - 1}:0] gray
);
  reg [{width - 1}:0] bin;
  assign gray = bin ^ (bin >> 1);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      bin <= {width}'d0;
    else
      bin <= bin + {width}'d1;
  end
endmodule
"""
    hints = [
        SvaHint("gray_unit_distance",
                consequent="$countones(gray ^ $past(gray)) <= 1",
                message="consecutive gray codes may differ in at most one bit"),
        SvaHint("gray_maps_bin", consequent="gray == (bin ^ (bin >> 1))",
                message="gray output must be the binary-reflected code of bin"),
    ]
    meta = TemplateMeta(
        family="gray_counter",
        params={"width": width},
        summary=f"A free-running {width}-bit counter with binary-reflected "
                f"gray-code output.",
        behaviour=[
            "bin increments every clock and wraps naturally",
            "gray is bin xor (bin >> 1)",
            "consecutive gray outputs differ in exactly one bit",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_lfsr(rng: random.Random) -> DesignSeed:
    """Fibonacci LFSR seeded nonzero by reset."""
    width = rng.choice([4, 5, 7, 8])
    tap = rng.randrange(1, width - 1)
    name = f"lfsr_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  output reg [{width - 1}:0] state,
  output wire feedback
);
  assign feedback = state[{width - 1}] ^ state[{tap}];
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      state <= {width}'d1;
    else
      state <= {{state[{width - 2}:0], feedback}};
  end
endmodule
"""
    hints = [
        SvaHint("lfsr_nonzero", consequent=f"state != {width}'d0",
                message="a properly seeded LFSR never reaches the all-zero state"),
        SvaHint("lfsr_shifts", consequent=f"state[{width - 1}:1] == "
                                          f"$past(state[{width - 2}:0])",
                message="the register must shift left by one each cycle"),
    ]
    meta = TemplateMeta(
        family="lfsr",
        params={"width": width, "tap": tap},
        summary=f"A {width}-bit Fibonacci LFSR with feedback from bits "
                f"{width - 1} and {tap}.",
        behaviour=[
            "state shifts left each clock, inserting the feedback bit",
            f"feedback is the xor of bits {width - 1} and {tap}",
            "reset seeds the register to 1, so it never reaches zero",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_pwm(rng: random.Random) -> DesignSeed:
    """PWM: free-running counter compared against a duty threshold."""
    width = rng.choice([3, 4, 6])
    name = f"pwm_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] duty,
  output wire pwm_out,
  output reg [{width - 1}:0] phase
);
  assign pwm_out = phase < duty;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      phase <= {width}'d0;
    else
      phase <= phase + {width}'d1;
  end
endmodule
"""
    hints = [
        SvaHint("pwm_zero_duty", antecedent=f"duty == {width}'d0",
                delay=0, consequent="!pwm_out",
                message="zero duty must keep the output low"),
        SvaHint("pwm_compare", consequent="pwm_out == (phase < duty)",
                message="the output must compare phase against duty"),
        SvaHint("phase_steps",
                consequent=f"phase == $past(phase + {width}'d1)",
                message="phase advances by one (mod 2^width) each cycle"),
    ]
    meta = TemplateMeta(
        family="pwm",
        params={"width": width},
        summary=f"A {width}-bit PWM generator: output high while the phase "
                f"counter is below the duty threshold.",
        behaviour=[
            "phase increments every clock and wraps naturally",
            "pwm_out is high exactly while phase < duty",
            "duty == 0 keeps the output low for the whole period",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_decoder(rng: random.Random) -> DesignSeed:
    """Registered one-hot decoder."""
    sel_width = rng.choice([2, 3])
    out_width = 1 << sel_width
    name = f"decoder_{design_uid(rng)}"
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{sel_width - 1}:0] sel,
  input en,
  output reg [{out_width - 1}:0] dec_out
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      dec_out <= {out_width}'d0;
    else if (en)
      dec_out <= {out_width}'d1 << sel;
    else
      dec_out <= {out_width}'d0;
  end
endmodule
"""
    hints = [
        SvaHint("dec_onehot0", consequent="$onehot0(dec_out)",
                message="the decoder output must be one-hot or idle"),
        SvaHint("dec_selects", antecedent="en", delay=1,
                consequent="dec_out == ($past({0}'d1 << sel))".format(out_width),
                message="the selected lane must assert one cycle later"),
        SvaHint("dec_idle", antecedent="!en", delay=1,
                consequent=f"dec_out == {out_width}'d0",
                message="disabling must clear the output"),
    ]
    meta = TemplateMeta(
        family="decoder",
        params={"sel_width": sel_width},
        summary=f"A registered {sel_width}-to-{out_width} one-hot decoder "
                f"with enable.",
        behaviour=[
            "when en is high the lane addressed by sel asserts next cycle",
            "when en is low the output clears",
            "the output is always one-hot or all zeros",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


DATAPATH_TEMPLATES = {
    "alu": make_alu,
    "comparator": make_comparator,
    "saturating_counter": make_saturating_counter,
    "gray_counter": make_gray_counter,
    "lfsr": make_lfsr,
    "pwm": make_pwm,
    "decoder": make_decoder,
}
