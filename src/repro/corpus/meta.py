"""Metadata carried by every generated design.

A template instance is a :class:`DesignSeed`: canonical source text plus a
:class:`TemplateMeta` describing what the design does (feeding the spec
oracle) and which temporal properties hold on it (feeding the SVA oracle).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


def design_uid(rng: random.Random) -> str:
    """Five-digit module-name suffix every template family draws.

    Shared so the uid space (and hence the name-collision rate that
    :func:`repro.datagen.stage1.unit_ids` disambiguates) changes in one
    place for all families at once.
    """
    return f"{rng.randrange(100000):05d}"


class SvaHint:
    """A property known to hold on the golden design.

    The SVA oracle assembles concrete ``property``/``assert`` source from
    hints; Stage 2 of the pipeline then re-validates the result with the
    bounded checker (hints may also be *distorted* to model hallucination).

    Attributes
    ----------
    name:        property identifier base.
    consequent:  boolean expression that must hold.
    antecedent:  optional trigger expression (None -> invariant).
    delay:       cycles between antecedent and consequent (0 = overlapped).
    message:     the $error message text.
    """

    __slots__ = ("name", "consequent", "antecedent", "delay", "message")

    def __init__(self, name: str, consequent: str, antecedent: Optional[str] = None,
                 delay: int = 0, message: str = ""):
        self.name = name
        self.consequent = consequent
        self.antecedent = antecedent
        self.delay = delay
        self.message = message or f"{name} violated"

    def property_source(self, clock: str = "clk", disable: str = "!rst_n") -> str:
        """Render the property declaration text."""
        if self.antecedent is None:
            body = self.consequent
        elif self.delay == 0:
            body = f"{self.antecedent} |-> {self.consequent}"
        else:
            body = f"{self.antecedent} |-> ##{self.delay} {self.consequent}"
        return (f"property {self.name};\n"
                f"  @(posedge {clock}) disable iff ({disable}) {body};\n"
                f"endproperty")

    def assertion_source(self) -> str:
        return (f"{self.name}_assertion: assert property ({self.name}) "
                f'else $error("{self.message}");')

    def signals(self) -> List[str]:
        """Identifier-ish tokens mentioned by the property (for cone
        analysis)."""
        import re
        text = f"{self.antecedent or ''} {self.consequent}"
        return sorted(set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text))
                      - {"posedge", "negedge"})


class TemplateMeta:
    """What a template instance is, for the annotation oracles."""

    __slots__ = ("family", "params", "summary", "behaviour", "port_notes",
                 "sva_hints")

    def __init__(self, family: str, params: Dict[str, int], summary: str,
                 behaviour: List[str], sva_hints: List[SvaHint],
                 port_notes: Optional[Dict[str, str]] = None):
        self.family = family
        self.params = params
        self.summary = summary
        self.behaviour = behaviour
        self.sva_hints = sva_hints
        self.port_notes = port_notes or {}


class DesignSeed:
    """One golden design: canonical source + metadata."""

    __slots__ = ("name", "source", "meta")

    def __init__(self, name: str, source: str, meta: TemplateMeta):
        self.name = name
        self.source = source
        self.meta = meta

    @property
    def line_count(self) -> int:
        return self.source.count("\n")

    def __repr__(self) -> str:  # pragma: no cover
        return f"DesignSeed({self.name!r}, {self.line_count} lines)"
