"""Wide/long template families covering the paper's upper code-length bins:
register files, mux trees, pipelines, multi-channel datapaths.

These unroll per-register / per-stage / per-channel logic, so the canonical
source comfortably reaches the (150, 200] and (200, +inf) bins of Table II.
"""

from __future__ import annotations

import random

from repro.corpus.meta import DesignSeed, SvaHint, TemplateMeta, design_uid


def make_register_file(rng: random.Random) -> DesignSeed:
    """Unrolled register file: one write port, one combinational read port."""
    count = rng.choice([4, 8, 16, 32])
    width = rng.choice([4, 8])
    addr_width = max((count - 1).bit_length(), 1)
    name = f"regfile_{count}x{width}_{design_uid(rng)}"
    decls = "\n".join(f"  reg [{width - 1}:0] r{i};" for i in range(count))
    write_blocks = []
    for i in range(count):
        write_blocks.append(f"""  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      r{i} <= {width}'d0;
    else if (we && waddr == {addr_width}'d{i})
      r{i} <= wdata;
  end""")
    read_cases = "\n".join(
        f"      {addr_width}'d{i}:\n        rdata = r{i};" for i in range(count))
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input we,
  input [{addr_width - 1}:0] waddr,
  input [{width - 1}:0] wdata,
  input [{addr_width - 1}:0] raddr,
  output reg [{width - 1}:0] rdata
);
{decls}
{chr(10).join(write_blocks)}
  always @(*) begin
    case (raddr)
{read_cases}
    default:
      rdata = {width}'d0;
    endcase
  end
endmodule
"""
    hints = [
        SvaHint("write_r0", antecedent=f"we && waddr == {addr_width}'d0",
                delay=1, consequent="r0 == $past(wdata)",
                message="a write to address 0 must land in register 0"),
        SvaHint("hold_r1",
                antecedent=f"!(we && waddr == {addr_width}'d1)", delay=1,
                consequent="r1 == $past(r1)",
                message="register 1 must hold its value without a write"),
        SvaHint("read_r0", antecedent=f"raddr == {addr_width}'d0", delay=0,
                consequent="rdata == r0",
                message="reading address 0 must return register 0"),
    ]
    meta = TemplateMeta(
        family="register_file",
        params={"count": count, "width": width},
        summary=f"A {count}x{width} register file with one registered write "
                f"port and one combinational read port.",
        behaviour=[
            "we writes wdata into the register addressed by waddr",
            "rdata continuously presents the register addressed by raddr",
            "unwritten registers hold their values",
            "reset clears every register",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_mux_tree(rng: random.Random) -> DesignSeed:
    """Wide registered multiplexer over unrolled scalar inputs."""
    lanes = rng.choice([4, 8, 16, 32])
    width = rng.choice([4, 8])
    sel_width = max((lanes - 1).bit_length(), 1)
    name = f"mux_{lanes}to1_{design_uid(rng)}"
    ports = ",\n".join(f"  input [{width - 1}:0] in{i}" for i in range(lanes))
    cases = "\n".join(
        f"      {sel_width}'d{i}:\n        mux_out <= in{i};" for i in range(lanes))
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{sel_width - 1}:0] sel,
{ports},
  output reg [{width - 1}:0] mux_out
);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      mux_out <= {width}'d0;
    else begin
      case (sel)
{cases}
      default:
        mux_out <= {width}'d0;
      endcase
    end
  end
endmodule
"""
    hints = [
        SvaHint("selects_lane0", antecedent=f"sel == {sel_width}'d0", delay=1,
                consequent="mux_out == $past(in0)",
                message="lane 0 must reach the output when selected"),
        SvaHint("selects_last", antecedent=f"sel == {sel_width}'d{lanes - 1}",
                delay=1, consequent=f"mux_out == $past(in{lanes - 1})",
                message="the last lane must reach the output when selected"),
    ]
    meta = TemplateMeta(
        family="mux_tree",
        params={"lanes": lanes, "width": width},
        summary=f"A registered {lanes}-to-1 multiplexer over {width}-bit lanes.",
        behaviour=[
            "sel picks one input lane each cycle",
            "the selected lane is registered into mux_out",
            "out-of-range selects clear the output",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_pipeline(rng: random.Random) -> DesignSeed:
    """N-stage valid/data pipeline."""
    stages = rng.choice([3, 4, 6, 8, 12, 16])
    width = rng.choice([4, 8])
    name = f"pipe_{stages}s_{design_uid(rng)}"
    decls = "\n".join(
        f"  reg [{width - 1}:0] d{i};\n  reg v{i};" for i in range(stages))
    blocks = []
    for i in range(stages):
        src_d = "din" if i == 0 else f"d{i - 1}"
        src_v = "valid_in" if i == 0 else f"v{i - 1}"
        blocks.append(f"""  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      d{i} <= {width}'d0;
      v{i} <= 1'b0;
    end
    else begin
      d{i} <= {src_d};
      v{i} <= {src_v};
    end
  end""")
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input valid_in,
  input [{width - 1}:0] din,
  output wire valid_out,
  output wire [{width - 1}:0] dout
);
{decls}
{chr(10).join(blocks)}
  assign valid_out = v{stages - 1};
  assign dout = d{stages - 1};
endmodule
"""
    hints = [
        SvaHint("latency_valid", antecedent="valid_in", delay=stages,
                consequent="valid_out",
                message=f"valid must emerge after exactly {stages} stages"),
        SvaHint("latency_data", consequent=f"dout == $past(din, {stages})",
                message=f"data must traverse the pipeline in {stages} cycles"),
        SvaHint("stage1_tracks", consequent="v0 == $past(valid_in)",
                message="the first stage must register the input qualifier"),
    ]
    meta = TemplateMeta(
        family="pipeline",
        params={"stages": stages, "width": width},
        summary=f"A {stages}-stage always-advancing pipeline for {width}-bit "
                f"data with a valid qualifier.",
        behaviour=[
            "every clock advances data and valid by one stage",
            f"outputs emerge {stages} cycles after the inputs",
            "reset clears every stage",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


def make_multichannel_accumulator(rng: random.Random) -> DesignSeed:
    """K independent accumulators with per-channel clear."""
    channels = rng.choice([2, 3, 4])
    width = rng.choice([4, 8])
    acc_width = width + 4
    name = f"multi_acc_{channels}ch_{design_uid(rng)}"
    port_lines = []
    for i in range(channels):
        port_lines.append(f"  input en{i},")
        port_lines.append(f"  input clr{i},")
        port_lines.append(f"  output reg [{acc_width - 1}:0] acc{i},")
    port_lines.append("  output wire any_active,")
    port_lines.append("  output reg active_q")
    blocks = []
    for i in range(channels):
        blocks.append(f"""  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      acc{i} <= {acc_width}'d0;
    else if (clr{i})
      acc{i} <= {acc_width}'d0;
    else if (en{i})
      acc{i} <= acc{i} + {{{acc_width - width}'d0, data_in}};
  end""")
    any_expr = " || ".join(f"en{i}" for i in range(channels))
    source = f"""
module {name} (
  input clk,
  input rst_n,
  input [{width - 1}:0] data_in,
{chr(10).join(port_lines)}
);
  assign any_active = {any_expr};
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      active_q <= 1'b0;
    else
      active_q <= any_active;
  end
{chr(10).join(blocks)}
endmodule
"""
    hints = [
        SvaHint("clr0_clears", antecedent="clr0", delay=1,
                consequent=f"acc0 == {acc_width}'d0",
                message="clearing channel 0 must zero its accumulator"),
        SvaHint("hold0", antecedent="!clr0 && !en0", delay=1,
                consequent="acc0 == $past(acc0)",
                message="an idle channel must hold its sum"),
        SvaHint("active_mirrors", consequent="active_q == $past(any_active)",
                message="the activity flag must register the OR of enables"),
    ]
    meta = TemplateMeta(
        family="multichannel",
        params={"channels": channels, "width": width},
        summary=f"{channels} independent accumulators sharing one data input, "
                f"each with enable and clear controls.",
        behaviour=[
            "each channel adds data_in to its sum when enabled",
            "clr has priority over en and zeroes the channel",
            "any_active ORs the channel enables; active_q registers it",
        ],
        sva_hints=hints,
    )
    return DesignSeed(name, source, meta)


WIDE_TEMPLATES = {
    "register_file": make_register_file,
    "mux_tree": make_mux_tree,
    "pipeline": make_pipeline,
    "multichannel": make_multichannel_accumulator,
}
