"""Syntax/semantic corruption of golden designs.

The paper's Stage 1 keeps code that *fails* compilation and pairs it with a
failure analysis for the Verilog-PT pretraining dataset.  This module
produces that failing code on demand: each breaker applies one realistic
corruption family (missing endmodule, dropped semicolon, undeclared
identifier, duplicate declaration, unbalanced begin/end, bad literal) whose
diagnosis our compiler substitute then reports.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Dict, List, Optional, Tuple


def _drop_endmodule(source: str, rng: random.Random) -> Optional[str]:
    if "endmodule" not in source:
        return None
    return source.replace("endmodule", "", 1)


def _drop_semicolon(source: str, rng: random.Random) -> Optional[str]:
    lines = source.splitlines()
    candidates = [i for i, line in enumerate(lines)
                  if line.rstrip().endswith(";") and "assign" in line]
    if not candidates:
        candidates = [i for i, line in enumerate(lines)
                      if line.rstrip().endswith(";")]
    if not candidates:
        return None
    index = rng.choice(candidates)
    lines[index] = lines[index].rstrip()[:-1]
    return "\n".join(lines) + "\n"


def _undeclared_identifier(source: str, rng: random.Random) -> Optional[str]:
    matches = list(re.finditer(r"<= ([a-z][a-z0-9_]*)", source))
    if not matches:
        return None
    match = rng.choice(matches)
    ghost = match.group(1) + "_undeclared"
    start, end = match.span(1)
    return source[:start] + ghost + source[end:]


def _duplicate_declaration(source: str, rng: random.Random) -> Optional[str]:
    matches = list(re.finditer(r"^(\s*(?:reg|wire)[^;]*;)$", source, re.M))
    if not matches:
        return None
    match = rng.choice(matches)
    return source[:match.end()] + "\n" + match.group(1) + source[match.end():]


def _drop_begin(source: str, rng: random.Random) -> Optional[str]:
    index = source.find("begin")
    if index < 0:
        return None
    return source[:index] + source[index + len("begin"):]


def _bad_literal(source: str, rng: random.Random) -> Optional[str]:
    matches = list(re.finditer(r"\d+'d\d+", source))
    if not matches:
        return None
    match = rng.choice(matches)
    broken = match.group(0).split("'")[0] + "'q" + match.group(0).split("d")[-1]
    return source[:match.start()] + broken + source[match.end():]


def _assign_to_input(source: str, rng: random.Random) -> Optional[str]:
    port = re.search(r"input (\w+),", source)
    if port is None:
        return None
    name = port.group(1)
    if name in ("clk", "rst_n"):
        # Still fine: driving a clock is exactly the kind of error we want.
        pass
    return source.replace("endmodule", f"  assign {name} = 1'b0;\nendmodule", 1)


BREAKERS: Dict[str, Callable[[str, random.Random], Optional[str]]] = {
    "missing_endmodule": _drop_endmodule,
    "missing_semicolon": _drop_semicolon,
    "undeclared_identifier": _undeclared_identifier,
    "duplicate_declaration": _duplicate_declaration,
    "unbalanced_begin": _drop_begin,
    "bad_literal": _bad_literal,
    "illegal_input_driver": _assign_to_input,
}


def break_syntax(source: str, rng: random.Random,
                 kind: Optional[str] = None) -> Optional[Tuple[str, str]]:
    """Apply one corruption.  Returns (kind, broken_source) or None when the
    chosen breaker does not apply to this source."""
    kinds: List[str] = [kind] if kind else list(BREAKERS)
    rng.shuffle(kinds)
    for chosen in kinds:
        broken = BREAKERS[chosen](source, rng)
        if broken is not None and broken != source:
            return chosen, broken
    return None
