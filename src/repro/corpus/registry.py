"""Template family registry.

Maps family name -> template function.  The generator samples from this
table; tests iterate it to validate every family's golden design against
its own SVA hints.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.corpus.meta import DesignSeed
from repro.corpus.templates_arbiter import ARBITER_TEMPLATES
from repro.corpus.templates_basic import BASIC_TEMPLATES
from repro.corpus.templates_control import CONTROL_TEMPLATES
from repro.corpus.templates_datapath import DATAPATH_TEMPLATES
from repro.corpus.templates_fsm import FSM_TEMPLATES
from repro.corpus.templates_idioms import IDIOM_TEMPLATES
from repro.corpus.templates_memory import MEMORY_TEMPLATES
from repro.corpus.templates_wide import WIDE_TEMPLATES

TemplateFn = Callable[[random.Random], DesignSeed]

TEMPLATE_FAMILIES: Dict[str, TemplateFn] = {}
TEMPLATE_FAMILIES.update(BASIC_TEMPLATES)
TEMPLATE_FAMILIES.update(DATAPATH_TEMPLATES)
TEMPLATE_FAMILIES.update(CONTROL_TEMPLATES)
TEMPLATE_FAMILIES.update(WIDE_TEMPLATES)
TEMPLATE_FAMILIES.update(IDIOM_TEMPLATES)
TEMPLATE_FAMILIES.update(FSM_TEMPLATES)
TEMPLATE_FAMILIES.update(MEMORY_TEMPLATES)
TEMPLATE_FAMILIES.update(ARBITER_TEMPLATES)

#: Families added after the seed corpus (PR 2): control-heavy scenario
#: coverage.  Tests and docs reference this to distinguish them from the
#: seed template set.
SCENARIO_FAMILIES = (tuple(sorted(FSM_TEMPLATES))
                     + tuple(sorted(MEMORY_TEMPLATES))
                     + tuple(sorted(ARBITER_TEMPLATES)))


def template_names() -> List[str]:
    return sorted(TEMPLATE_FAMILIES)


def make_instance(family: str, rng: random.Random) -> DesignSeed:
    try:
        template = TEMPLATE_FAMILIES[family]
    except KeyError:
        raise KeyError(f"unknown template family {family!r}; "
                       f"known: {', '.join(template_names())}") from None
    return template(rng)
